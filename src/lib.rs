//! # podium
//!
//! Facade crate for the **Podium** framework — a Rust reproduction of
//! *"Diverse User Selection for Opinion Procurement"* (EDBT 2020).
//!
//! This crate re-exports the four library crates of the workspace so that a
//! downstream user needs a single dependency:
//!
//! * [`core`] — the diversification model and algorithms (profiles, buckets,
//!   groups, greedy/lazy/exact selection, explanations, customization);
//! * [`data`] — dataset substrate: JSON profile I/O, taxonomy and inference
//!   rules, synthetic TripAdvisor/Yelp-like population generators with
//!   ground-truth opinions;
//! * [`baselines`] — comparator selectors (random, k-means clustering,
//!   distance-based S-Model, exhaustive optimal, stratified sampling, MMR);
//! * [`metrics`] — the paper's evaluation metrics (CD-sim, coverage metrics,
//!   opinion-diversity metrics);
//! * [`service`] — the concurrent serving layer: versioned repository
//!   snapshots, a bounded worker pool, sessions, and a line-delimited JSON
//!   protocol over stdin/stdout or a Unix socket.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough of the paper's
//! running example and `DESIGN.md` for the full system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use podium_baselines as baselines;
pub use podium_core as core;
pub use podium_data as data;
pub use podium_metrics as metrics;
pub use podium_service as service;
pub use podium_sim as sim;

pub mod cli;
pub mod service_cli;
pub mod sim_cli;

/// One-stop prelude: the core prelude plus the most-used items of the other
/// crates.
pub mod prelude {
    pub use podium_baselines::prelude::*;
    pub use podium_core::prelude::*;
    pub use podium_data::prelude::*;
    pub use podium_metrics::prelude::*;
}
