//! Implementation of the `podium-cli` binary: diverse user selection over
//! JSON profile files (the §7 prototype input format), from the command
//! line.
//!
//! Subcommands:
//!
//! * `stats`  — repository statistics;
//! * `groups` — list the materialized groups with labels and sizes;
//! * `select` — run (customized) diverse selection and print the selected
//!   users with explanations.
//!
//! The argument grammar is deliberately tiny and dependency-free; see
//! [`USAGE`].

use podium_core::bucket::{BucketStrategy, BucketingConfig};
use podium_core::customize::Feedback;
use podium_core::pipeline::Podium;
use podium_core::weights::{CovScheme, WeightScheme};

/// CLI usage text for the classic subcommands; the binary appends
/// [`crate::service_cli::SERVICE_USAGE`] for `serve`, `bench-serve`, and
/// `quarantine`.
pub const USAGE: &str = "\
usage: podium-cli <stats|groups|select> --profiles FILE [options]
       podium-cli <serve|bench-serve|quarantine> [options]

options (groups/select):
  --strategy paper|equal-width|quantile|jenks|kmeans|kde|em   bucketing (default quantile)
  --buckets K                 buckets per property (default 3)

options (select):
  --budget N                  number of users to select (default 8)
  --weights lbs|iden          weight scheme (default lbs)
  --cov single|prop           coverage scheme (default single)
  --must-have PROPERTY        selected users must hold PROPERTY (repeatable)
  --must-not PROPERTY         selected users must not hold PROPERTY (repeatable)
  --priority PROPERTY         prioritize covering PROPERTY's groups (repeatable)
  --explain                   print the explanation report
  --top-k N                   groups in the explanation report (default 20)
  --seed S                    randomize tie-breaking with seed S
  --json                      emit machine-readable JSON instead of text
  --config FILE               apply a named diversification configuration
                              (JSON; §7 administrator presets). Flags given
                              alongside override the configuration.
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Subcommand: `stats`, `groups`, or `select`.
    pub command: String,
    /// Path to the JSON profiles file.
    pub profiles: String,
    /// Bucketing strategy name.
    pub strategy: String,
    /// Buckets per property.
    pub buckets: usize,
    /// Selection budget.
    pub budget: usize,
    /// Weight scheme name.
    pub weights: String,
    /// Coverage scheme name.
    pub cov: String,
    /// Must-have property labels.
    pub must_have: Vec<String>,
    /// Must-not property labels.
    pub must_not: Vec<String>,
    /// Priority property labels.
    pub priority: Vec<String>,
    /// Whether to print the explanation report.
    pub explain: bool,
    /// Explanation report size.
    pub top_k: usize,
    /// Optional tie-breaking seed.
    pub seed: Option<u64>,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Optional path to a named configuration file.
    pub config: Option<String>,
    /// Property-prefix scope injected by an applied configuration
    /// (internal; not a flag).
    pub config_scope: Vec<String>,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            command: String::new(),
            profiles: String::new(),
            strategy: "quantile".into(),
            buckets: 3,
            budget: 8,
            weights: "lbs".into(),
            cov: "single".into(),
            must_have: Vec::new(),
            must_not: Vec::new(),
            priority: Vec::new(),
            explain: false,
            top_k: 20,
            seed: None,
            json: false,
            config: None,
            config_scope: Vec::new(),
        }
    }
}

/// Parses an argument vector (without the program name).
pub fn parse_args(argv: &[String]) -> Result<CliArgs, String> {
    let mut args = CliArgs::default();
    let mut it = argv.iter();
    args.command = it
        .next()
        .ok_or_else(|| "missing subcommand".to_owned())?
        .clone();
    if !matches!(args.command.as_str(), "stats" | "groups" | "select") {
        return Err(format!("unknown subcommand '{}'", args.command));
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--profiles" => args.profiles = value("--profiles")?,
            "--strategy" => args.strategy = value("--strategy")?,
            "--buckets" => {
                args.buckets = value("--buckets")?
                    .parse()
                    .map_err(|_| "--buckets needs an integer".to_owned())?
            }
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget needs an integer".to_owned())?
            }
            "--weights" => args.weights = value("--weights")?,
            "--cov" => args.cov = value("--cov")?,
            "--must-have" => args.must_have.push(value("--must-have")?),
            "--must-not" => args.must_not.push(value("--must-not")?),
            "--priority" => args.priority.push(value("--priority")?),
            "--explain" => args.explain = true,
            "--json" => args.json = true,
            "--config" => args.config = Some(value("--config")?),
            "--top-k" => {
                args.top_k = value("--top-k")?
                    .parse()
                    .map_err(|_| "--top-k needs an integer".to_owned())?
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an integer".to_owned())?,
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.profiles.is_empty() {
        return Err("--profiles is required".to_owned());
    }
    Ok(args)
}

/// Resolves the bucketing configuration from CLI names.
pub fn bucketing_of(args: &CliArgs) -> Result<BucketingConfig, String> {
    bucketing_from(&args.strategy, args.buckets)
}

/// Resolves a bucketing configuration from a strategy name and bucket
/// count (shared with the `serve` subcommand).
pub fn bucketing_from(strategy: &str, buckets: usize) -> Result<BucketingConfig, String> {
    let strategy = match strategy {
        "paper" => return Ok(BucketingConfig::paper_default()),
        "equal-width" => BucketStrategy::EqualWidth,
        "quantile" => BucketStrategy::Quantile,
        "jenks" => BucketStrategy::Jenks,
        "kmeans" => BucketStrategy::KMeans1D,
        "kde" => BucketStrategy::Kde,
        "em" => BucketStrategy::Em,
        other => return Err(format!("unknown strategy '{other}'")),
    };
    Ok(BucketingConfig {
        strategy,
        buckets_per_property: buckets,
        detect_boolean: true,
    })
}

/// Runs the CLI against already-loaded profile JSON (and, optionally, a
/// named-configuration JSON for `--config`); returns the textual output.
/// Factored out of the binary for testability.
pub fn run(
    args: &CliArgs,
    profiles_json: &str,
    config_json: Option<&str>,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let repo = podium_data::json::profiles_from_json(profiles_json)
        .map_err(|e| format!("cannot parse profiles: {e}"))?;
    let bucketing = bucketing_of(args)?;
    let mut out = String::new();

    match args.command.as_str() {
        "stats" => {
            let _ = writeln!(out, "users:              {}", repo.user_count());
            let _ = writeln!(out, "properties:         {}", repo.property_count());
            let _ = writeln!(out, "mean profile size:  {:.2}", repo.mean_profile_size());
            let _ = writeln!(out, "max profile size:   {}", repo.max_profile_size());
            let fitted = Podium::new().bucketing(bucketing).fit(&repo);
            let _ = writeln!(out, "groups:             {}", fitted.groups().len());
            let _ = writeln!(
                out,
                "max group size:     {}",
                fitted.groups().max_group_size()
            );
            let _ = writeln!(
                out,
                "max groups/user:    {}",
                fitted.groups().max_groups_per_user()
            );
        }
        "groups" => {
            let fitted = Podium::new().bucketing(bucketing).fit(&repo);
            let mut rows: Vec<(usize, String)> = fitted
                .groups()
                .iter()
                .map(|(gid, g)| (g.size(), fitted.groups().label(gid, &repo)))
                .collect();
            rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for (size, label) in rows {
                let _ = writeln!(out, "{size:>6}  {label}");
            }
        }
        "select" => {
            // Merge a named configuration (§7) under the CLI flags: a flag
            // that differs from its default overrides the configuration.
            let mut eff = args.clone();
            if let Some(text) = config_json {
                let cfg = podium_data::config::SelectionConfig::from_json(text)?;
                let defaults = CliArgs::default();
                if eff.weights == defaults.weights {
                    eff.weights = cfg.weights.clone();
                }
                if eff.cov == defaults.cov {
                    eff.cov = cfg.cov.clone();
                }
                if eff.budget == defaults.budget {
                    eff.budget = cfg.budget;
                }
                eff.must_have.extend(cfg.must_have.iter().cloned());
                eff.must_not.extend(cfg.must_not.iter().cloned());
                eff.priority.extend(cfg.priority.iter().cloned());
                let _ = writeln!(
                    out,
                    "configuration: {} — {}",
                    cfg.title,
                    if cfg.description.is_empty() {
                        "(no description)"
                    } else {
                        &cfg.description
                    }
                );
                if !cfg.include_properties.is_empty() {
                    let _ = writeln!(out, "property scope: {}", cfg.include_properties.join(", "));
                }
                eff.config_scope = cfg.include_properties.clone();
            }
            let args = &eff;
            let weight = match args.weights.as_str() {
                "lbs" => WeightScheme::LinearBySize,
                "iden" => WeightScheme::Identical,
                other => return Err(format!("unknown weight scheme '{other}'")),
            };
            let cov = match args.cov.as_str() {
                "single" => CovScheme::Single,
                "prop" => CovScheme::Proportional,
                other => return Err(format!("unknown coverage scheme '{other}'")),
            };
            let mut pipeline = Podium::new()
                .bucketing(bucketing)
                .weights(weight)
                .coverage(cov);
            if let Some(seed) = args.seed {
                pipeline = pipeline.random_ties(seed);
            }
            // Apply the configuration's property scope, if any.
            let scope = args.config_scope.clone();
            let fitted = if scope.is_empty() {
                pipeline.fit(&repo)
            } else {
                pipeline.fit_scoped(&repo, &|p| {
                    repo.property_label(p)
                        .map(|l| scope.iter().any(|pre| l.starts_with(pre.as_str())))
                        .unwrap_or(false)
                })
            };

            let resolve = |labels: &[String]| -> Result<Vec<podium_core::ids::GroupId>, String> {
                let mut groups = Vec::new();
                for label in labels {
                    let p = repo
                        .property_id(label)
                        .ok_or_else(|| format!("unknown property '{label}'"))?;
                    let gs = fitted.groups().groups_of_property(p);
                    if gs.is_empty() {
                        return Err(format!(
                            "property '{label}' has no groups in the active scope"
                        ));
                    }
                    groups.extend(gs);
                }
                Ok(groups)
            };
            let feedback = Feedback {
                must_have: resolve(&args.must_have)?,
                must_not: resolve(&args.must_not)?,
                priority: resolve(&args.priority)?,
                standard: None,
            };
            let custom = feedback != Feedback::none();

            if args.json && !custom {
                let sel = fitted.select(args.budget);
                let report = fitted.explain(args.budget, &sel, args.top_k);
                #[derive(serde::Serialize)]
                struct JsonSelection<'a> {
                    users: Vec<&'a str>,
                    score: f64,
                    top_weight_coverage: f64,
                    report: &'a podium_core::explain::SelectionReport,
                }
                let payload = JsonSelection {
                    users: sel
                        .users
                        .iter()
                        .map(|&u| repo.user_name(u).unwrap_or("<unknown>"))
                        .collect(),
                    score: sel.score,
                    top_weight_coverage: report.top_weight_coverage,
                    report: &report,
                };
                let _ = writeln!(
                    out,
                    "{}",
                    serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?
                );
                return Ok(out);
            }

            let (users, score_line) = if custom {
                let sel = fitted
                    .select_with_feedback(args.budget, &feedback)
                    .map_err(|e| e.to_string())?;
                let line = format!(
                    "priority score {:.2}, standard score {:.2}, pool {} users, feedback coverage {:.1}%",
                    sel.priority_score(),
                    sel.standard_score(),
                    sel.pool_size,
                    sel.feedback_group_coverage * 100.0
                );
                (sel.users().to_vec(), line)
            } else {
                let sel = fitted.select(args.budget);
                let line = format!("total score {:.2}", sel.score);
                let users = sel.users.clone();
                if args.explain {
                    let report = fitted.explain(args.budget, &sel, args.top_k);
                    let _ = write!(out, "{}", report.render());
                }
                (users, line)
            };
            let _ = writeln!(out, "selected {} users ({score_line}):", users.len());
            for u in users {
                let _ = writeln!(
                    out,
                    "  {} ({} properties)",
                    repo.user_name(u).map_err(|e| e.to_string())?,
                    repo.profile(u).map_err(|e| e.to_string())?.len()
                );
            }
        }
        // podium-lint: allow(unreachable) — the subcommand string was validated in parse_args
        _ => unreachable!("validated in parse_args"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    const SAMPLE: &str = r#"{
        "users": [
            { "name": "Alice", "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } },
            { "name": "Bob",   "properties": { "livesIn NYC": 1.0,   "avgRating Mexican": 0.3 } },
            { "name": "Carol", "properties": { "livesIn Bali": 1.0 } }
        ]
    }"#;

    #[test]
    fn parse_select_flags() {
        let a = parse_args(&argv(
            "select --profiles p.json --budget 3 --weights iden --cov prop \
             --must-have x --must-not y --priority z --explain --seed 4",
        ))
        .unwrap();
        assert_eq!(a.command, "select");
        assert_eq!(a.budget, 3);
        assert_eq!(a.weights, "iden");
        assert_eq!(a.cov, "prop");
        assert_eq!(a.must_have, vec!["x"]);
        assert_eq!(a.must_not, vec!["y"]);
        assert_eq!(a.priority, vec!["z"]);
        assert!(a.explain);
        assert_eq!(a.seed, Some(4));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("frobnicate --profiles x")).is_err());
        assert!(parse_args(&argv("stats")).is_err(), "--profiles required");
        assert!(parse_args(&argv("stats --profiles f --budget nan")).is_err());
        assert!(parse_args(&argv("stats --profiles f --wat 1")).is_err());
    }

    #[test]
    fn stats_output() {
        let a = parse_args(&argv("stats --profiles x.json")).unwrap();
        let out = run(&a, SAMPLE, None).unwrap();
        assert!(out.contains("users:              3"));
        assert!(out.contains("groups:"));
    }

    #[test]
    fn groups_output_sorted_by_size() {
        let a = parse_args(&argv("groups --profiles x.json --strategy paper")).unwrap();
        let out = run(&a, SAMPLE, None).unwrap();
        // 5 non-empty groups: 3 livesIn + high/low avgRating Mexican.
        assert_eq!(out.lines().count(), 5, "{out}");
        assert!(out.contains("livesIn Tokyo"));
        assert!(out.contains("high avgRating Mexican"));
        let sizes: Vec<usize> = out
            .lines()
            .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sorted: {sizes:?}");
    }

    #[test]
    fn select_runs_and_explains() {
        let a = parse_args(&argv(
            "select --profiles x.json --strategy paper --budget 2 --explain",
        ))
        .unwrap();
        let out = run(&a, SAMPLE, None).unwrap();
        assert!(out.contains("selected 2 users"));
        assert!(out.contains("covered"), "explanation present");
    }

    #[test]
    fn select_with_feedback() {
        let a = parse_args(&argv(
            "select --profiles x.json --strategy paper --budget 2 \
             --must-have \"avgRating Mexican\"",
        ));
        // Quoted labels with spaces cannot come through split_whitespace;
        // build args manually instead.
        drop(a);
        let mut args = CliArgs {
            command: "select".into(),
            profiles: "x.json".into(),
            strategy: "paper".into(),
            budget: 2,
            ..CliArgs::default()
        };
        args.must_have.push("avgRating Mexican".into());
        let out = run(&args, SAMPLE, None).unwrap();
        assert!(out.contains("pool 2 users"), "Carol filtered: {out}");
    }

    #[test]
    fn unknown_property_is_reported() {
        let mut args = CliArgs {
            command: "select".into(),
            profiles: "x.json".into(),
            ..CliArgs::default()
        };
        args.priority.push("no such property".into());
        let err = run(&args, SAMPLE, None).unwrap_err();
        assert!(err.contains("unknown property"));
    }

    #[test]
    fn json_output_is_parseable() {
        let a = parse_args(&argv(
            "select --profiles x.json --strategy paper --budget 2 --json",
        ))
        .unwrap();
        assert!(a.json);
        let out = run(&a, SAMPLE, None).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["users"].as_array().unwrap().len(), 2);
        assert!(v["score"].as_f64().unwrap() > 0.0);
        assert!(v["report"]["groups"].is_array());
    }

    #[test]
    fn named_configuration_applies() {
        let config = r#"{
            "title": "Mexican focus",
            "description": "Mexican-cuisine opinions only",
            "include_properties": ["avgRating Mexican"],
            "budget": 2,
            "must_have": ["avgRating Mexican"]
        }"#;
        let a = parse_args(&argv(
            "select --profiles x.json --strategy paper --config c.json",
        ))
        .unwrap();
        assert_eq!(a.config.as_deref(), Some("c.json"));
        let out = run(&a, SAMPLE, Some(config)).unwrap();
        assert!(out.contains("configuration: Mexican focus"), "{out}");
        assert!(out.contains("property scope: avgRating Mexican"));
        // Carol (never rated Mexican) filtered: pool 2.
        assert!(out.contains("pool 2 users"), "{out}");
    }

    #[test]
    fn config_flags_override() {
        let config = r#"{ "title": "t", "budget": 2 }"#;
        let a = parse_args(&argv(
            "select --profiles x.json --strategy paper --config c.json --budget 1",
        ))
        .unwrap();
        let out = run(&a, SAMPLE, Some(config)).unwrap();
        assert!(out.contains("selected 1 users"), "flag beats config: {out}");
    }

    #[test]
    fn bucketing_names_resolve() {
        for s in [
            "paper",
            "equal-width",
            "quantile",
            "jenks",
            "kmeans",
            "kde",
            "em",
        ] {
            let args = CliArgs {
                command: "stats".into(),
                profiles: "x".into(),
                strategy: s.into(),
                ..CliArgs::default()
            };
            assert!(bucketing_of(&args).is_ok(), "{s}");
        }
        let bad = CliArgs {
            strategy: "zzz".into(),
            ..CliArgs::default()
        };
        assert!(bucketing_of(&bad).is_err());
    }
}
