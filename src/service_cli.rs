//! The serving-side subcommands of `podium-cli`: `serve`, `bench-serve`,
//! and the `quarantine` tool family.
//!
//! The classic subcommands (`stats`, `groups`, `select`) live in
//! [`crate::cli`]; this module hosts the front-end for the
//! [`podium_service`] subsystem plus the quarantine-report workflow of
//! `podium_data::report`:
//!
//! * `serve` — load a profile file, build a [`PodiumService`], and serve
//!   the line-delimited JSON protocol over stdin/stdout or a Unix socket;
//! * `bench-serve` — closed-loop load generator against an in-process
//!   service, reporting throughput and latency percentiles as one JSONL
//!   row;
//! * `quarantine scan` — lenient-load a document and persist its
//!   quarantine report;
//! * `quarantine inspect` — pretty-print a persisted report;
//! * `quarantine replay` — re-attempt loading the quarantined records of
//!   an (edited) document and classify each as fixed or still defective.
//!
//! Parsing and rendering are factored apart from file/socket I/O so the
//! logic is testable on in-memory strings, mirroring [`crate::cli::run`].

use std::time::Duration;

use podium_data::report::{load_report, replay, save_report, ReplayFormat, ReplayStatus};
use podium_service::bench::{run_bench, BenchConfig, BenchTransport};
use podium_service::snapshot::PublishMode;
use podium_service::{PodiumService, ServiceConfig, TcpServerConfig};

use crate::cli::bucketing_from;

/// Usage text for the serving-side subcommands (appended to
/// [`crate::cli::USAGE`] by the binary).
pub const SERVICE_USAGE: &str = "\
serving subcommands:
  serve --profiles FILE [--strategy S] [--buckets K] [--socket PATH]
        [--tcp ADDR] [--max-conns N] [--idle-timeout-ms MS]
        [--session-lag N] [--workers N] [--queue N] [--deadline-ms MS]
      serve the line-delimited JSON protocol (select/explain/refine/
      update-profile/stats) over stdin/stdout, over a Unix domain
      socket when --socket is given, or over TCP when --tcp is given
      (e.g. --tcp 127.0.0.1:7474; --max-conns and --idle-timeout-ms
      bound the TCP listener).
  bench-serve [--transport inproc|tcp] [--users N] [--properties N]
        [--scores-per-user N] [--budget B] [--clients N] [--workers N]
        [--queue N] [--duration-s SECS] [--update-hz HZ]
        [--drift-hz HZ] [--publish-mode incremental|full-rebuild]
        [--deadline-ms MS] [--seed S] [--out FILE]
      closed-loop load generator over a synthetic repository, either
      in-process or through a loopback TCP server with the resilient
      client; appends one JSONL row to --out
      (default target/bench-serve.jsonl). --drift-hz is the profile-
      drift alias of --update-hz; with --publish-mode it compares
      incremental CSR patching against full epoch rebuilds.
  quarantine scan <document> [--format F] [--report FILE]
      lenient-load the document, print its quarantine, and (with
      --report) persist the report JSON for later replay.
  quarantine inspect <report.json>
      pretty-print a persisted quarantine report.
  quarantine replay <report.json> <document>
      re-attempt loading just the quarantined records against the
      (edited) document; exits non-zero unless every defect is fixed
      and no new ones appeared.

  formats F: json-profiles | csv-profiles | taxonomy | rules
";

/// Parsed `serve` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Path to the JSON profiles file.
    pub profiles: String,
    /// Bucketing strategy name (same vocabulary as `select`).
    pub strategy: String,
    /// Buckets per property.
    pub buckets: usize,
    /// Unix-socket path; `None` serves stdin/stdout.
    pub socket: Option<String>,
    /// TCP listen address (e.g. `127.0.0.1:7474`); takes precedence over
    /// `socket` when both are given.
    pub tcp: Option<String>,
    /// TCP listener sizing (connection limit, idle timeout).
    pub tcp_config: TcpServerConfig,
    /// Service sizing.
    pub config: ServiceConfig,
}

/// Parses `serve` arguments (everything after the subcommand word).
pub fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        profiles: String::new(),
        strategy: "quantile".into(),
        buckets: 3,
        socket: None,
        tcp: None,
        tcp_config: TcpServerConfig::default(),
        config: ServiceConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--profiles" => args.profiles = value("--profiles")?,
            "--strategy" => args.strategy = value("--strategy")?,
            "--buckets" => args.buckets = parse_num(&value("--buckets")?, "--buckets")?,
            "--socket" => args.socket = Some(value("--socket")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--max-conns" => {
                args.tcp_config.max_connections = parse_num(&value("--max-conns")?, "--max-conns")?
            }
            "--idle-timeout-ms" => {
                args.tcp_config.idle_timeout = Duration::from_millis(parse_num(
                    &value("--idle-timeout-ms")?,
                    "--idle-timeout-ms",
                )?)
            }
            "--session-lag" => {
                args.config.max_session_lag = parse_num(&value("--session-lag")?, "--session-lag")?
            }
            "--workers" => args.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => args.config.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--deadline-ms" => {
                args.config.default_deadline_ms =
                    parse_num(&value("--deadline-ms")?, "--deadline-ms")?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.profiles.is_empty() {
        return Err("--profiles is required".to_owned());
    }
    if args.config.workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }
    if args.tcp_config.max_connections == 0 {
        return Err("--max-conns must be at least 1".to_owned());
    }
    Ok(args)
}

/// Builds the service from already-loaded profile JSON: parse, bucketize
/// with the requested strategy, then stand up the worker pool.
pub fn build_service(profiles_json: &str, args: &ServeArgs) -> Result<PodiumService, String> {
    let repo = podium_data::json::profiles_from_json(profiles_json)
        .map_err(|e| format!("cannot parse profiles: {e}"))?;
    let bucketing = bucketing_from(&args.strategy, args.buckets)?;
    let buckets = bucketing.bucketize(&repo);
    Ok(PodiumService::new(repo, &buckets, args.config))
}

/// Parsed `bench-serve` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchServeArgs {
    /// Load-generator knobs.
    pub config: BenchConfig,
    /// JSONL output path the binary appends the report row to.
    pub out: String,
}

/// Parses `bench-serve` arguments (everything after the subcommand word).
pub fn parse_bench_serve_args(argv: &[String]) -> Result<BenchServeArgs, String> {
    let mut config = BenchConfig::default();
    let mut out = "target/bench-serve.jsonl".to_owned();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--transport" => {
                config.transport = match value("--transport")?.as_str() {
                    "inproc" | "in-process" => BenchTransport::InProcess,
                    "tcp" => BenchTransport::Tcp,
                    other => return Err(format!("unknown transport '{other}' (inproc | tcp)")),
                }
            }
            "--users" => config.users = parse_num(&value("--users")?, "--users")?,
            "--properties" => {
                config.properties = parse_num(&value("--properties")?, "--properties")?
            }
            "--scores-per-user" => {
                config.scores_per_user =
                    parse_num(&value("--scores-per-user")?, "--scores-per-user")?
            }
            "--budget" => config.budget = parse_num(&value("--budget")?, "--budget")?,
            "--clients" => config.clients = parse_num(&value("--clients")?, "--clients")?,
            "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => config.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--duration-s" => {
                let secs: f64 = value("--duration-s")?
                    .parse()
                    .map_err(|_| "--duration-s needs a number".to_owned())?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--duration-s must be positive".to_owned());
                }
                config.duration = Duration::from_secs_f64(secs);
            }
            "--update-hz" => config.update_hz = parse_num(&value("--update-hz")?, "--update-hz")?,
            "--drift-hz" => config.update_hz = parse_num(&value("--drift-hz")?, "--drift-hz")?,
            "--publish-mode" => {
                config.publish_mode = match value("--publish-mode")?.as_str() {
                    "incremental" => PublishMode::Incremental,
                    "full-rebuild" | "full_rebuild" => PublishMode::FullRebuild,
                    other => {
                        return Err(format!(
                            "unknown publish mode '{other}' (incremental | full-rebuild)"
                        ))
                    }
                }
            }
            "--deadline-ms" => {
                config.deadline_ms = parse_num(&value("--deadline-ms")?, "--deadline-ms")?
            }
            "--seed" => config.seed = parse_num(&value("--seed")?, "--seed")?,
            "--out" => out = value("--out")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if config.users == 0 || config.budget == 0 || config.clients == 0 || config.workers == 0 {
        return Err("--users/--budget/--clients/--workers must be at least 1".to_owned());
    }
    Ok(BenchServeArgs { config, out })
}

/// Runs the load generator; returns the human-readable summary and the
/// JSONL row the binary appends to `args.out`.
pub fn run_bench_serve(args: &BenchServeArgs) -> (String, String) {
    use std::fmt::Write as _;
    let report = run_bench(&args.config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-serve: {} users, budget {}, {} clients / {} workers, updates {} Hz",
        report.users, report.budget, report.clients, report.workers, report.update_hz
    );
    let _ = writeln!(
        out,
        "served {} requests in {:.2} s ({:.1} req/s) over {}",
        report.served, report.duration_s, report.throughput_rps, report.transport
    );
    let _ = writeln!(
        out,
        "latency us: p50 {}  p90 {}  p99 {}  max {}",
        report.p50_us, report.p90_us, report.p99_us, report.max_us
    );
    let _ = writeln!(
        out,
        "failed {} (deadline {}, transport {}, other {}), overloaded {}, inconsistent {}",
        report.failed,
        report.failed_deadline,
        report.failed_transport,
        report.failed_other,
        report.overloaded,
        report.inconsistent,
    );
    let _ = writeln!(
        out,
        "{} updates applied (final epoch {}); cache {} hits / {} misses; max queue depth {}",
        report.updates_applied,
        report.final_epoch,
        report.cache_hits,
        report.cache_misses,
        report.queue_depth_max
    );
    (out, report.to_json())
}

/// Parsed `quarantine` command line.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineCmd {
    /// Lenient-load a document and report (optionally persist) its
    /// quarantine.
    Scan {
        /// Path of the document to scan.
        input: String,
        /// Loader format.
        format: ReplayFormat,
        /// Where to persist the report JSON, if anywhere.
        report_out: Option<String>,
    },
    /// Pretty-print a persisted report.
    Inspect {
        /// Path of the report JSON.
        report: String,
    },
    /// Replay a persisted report against an (edited) document.
    Replay {
        /// Path of the report JSON.
        report: String,
        /// Path of the edited document.
        input: String,
    },
}

/// Parses `quarantine` arguments (everything after the `quarantine` word).
pub fn parse_quarantine_args(argv: &[String]) -> Result<QuarantineCmd, String> {
    let (mode, rest) = argv
        .split_first()
        .ok_or_else(|| "quarantine needs a mode: scan | inspect | replay".to_owned())?;
    match mode.as_str() {
        "scan" => {
            let mut input = None;
            let mut format = ReplayFormat::JsonProfiles;
            let mut report_out = None;
            let mut it = rest.iter();
            while let Some(word) = it.next() {
                match word.as_str() {
                    "--format" => {
                        let tag = it
                            .next()
                            .ok_or_else(|| "--format needs a value".to_owned())?;
                        format = ReplayFormat::from_tag(tag)
                            .ok_or_else(|| format!("unknown format '{tag}'"))?;
                    }
                    "--report" => {
                        report_out = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| "--report needs a value".to_owned())?,
                        )
                    }
                    flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
                    path if input.is_none() => input = Some(path.to_owned()),
                    extra => return Err(format!("unexpected argument '{extra}'")),
                }
            }
            Ok(QuarantineCmd::Scan {
                input: input.ok_or_else(|| "quarantine scan needs a document path".to_owned())?,
                format,
                report_out,
            })
        }
        "inspect" => match rest {
            [report] => Ok(QuarantineCmd::Inspect {
                report: report.clone(),
            }),
            _ => Err("usage: quarantine inspect <report.json>".to_owned()),
        },
        "replay" => match rest {
            [report, input] => Ok(QuarantineCmd::Replay {
                report: report.clone(),
                input: input.clone(),
            }),
            _ => Err("usage: quarantine replay <report.json> <document>".to_owned()),
        },
        other => Err(format!("unknown quarantine mode '{other}'")),
    }
}

/// Lenient-loads `document` and renders its quarantine; returns the human
/// summary and the persistable report JSON.
pub fn quarantine_scan(document: &str, format: ReplayFormat) -> Result<(String, String), String> {
    let report = format
        .lenient_report(document)
        .map_err(|e| format!("cannot load document: {e}"))?;
    let json = save_report(&report, format);
    // Round-trip through the persisted form so the rendering below is
    // exactly what `inspect` will show later.
    let human = quarantine_inspect(&json)?;
    Ok((human, json))
}

/// Pretty-prints a persisted quarantine report.
pub fn quarantine_inspect(report_json: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let saved = load_report(report_json).map_err(|e| format!("cannot parse report: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "format {}: {} accepted, {} quarantined",
        saved.format.tag(),
        saved.accepted,
        saved.entries.len()
    );
    for entry in &saved.entries {
        let _ = writeln!(out, "  {}", entry.describe());
        if !entry.snippet.is_empty() {
            let _ = writeln!(out, "      {}", entry.snippet);
        }
    }
    Ok(out)
}

/// Replays a persisted report against `document`; returns the human
/// summary and whether the replay came back clean.
pub fn quarantine_replay(report_json: &str, document: &str) -> Result<(String, bool), String> {
    use std::fmt::Write as _;
    let saved = load_report(report_json).map_err(|e| format!("cannot parse report: {e}"))?;
    let outcome = replay(&saved, document).map_err(|e| format!("cannot re-load document: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {} quarantined records against {} format: {} fixed, {} still defective, {} new",
        saved.entries.len(),
        saved.format.tag(),
        outcome.fixed(),
        outcome.still_defective(),
        outcome.new_defects.len()
    );
    for entry in &outcome.entries {
        match &entry.status {
            ReplayStatus::Fixed => {
                let _ = writeln!(out, "  fixed: {}", entry.saved.describe());
            }
            ReplayStatus::StillDefective { kind, message } => {
                let _ = writeln!(out, "  still defective [{kind}]: {message}");
            }
        }
    }
    for fresh in &outcome.new_defects {
        let _ = writeln!(out, "  new defect: {}", fresh.describe());
    }
    let _ = writeln!(out, "accepted {} records", outcome.accepted);
    Ok((out, outcome.is_clean()))
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag} needs an integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_data::fault::{FaultInjector, FaultKind};
    use podium_data::json::profiles_to_json;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    const SAMPLE: &str = r#"{
        "users": [
            { "name": "Alice", "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } },
            { "name": "Bob",   "properties": { "livesIn NYC": 1.0,   "avgRating Mexican": 0.3 } },
            { "name": "Carol", "properties": { "livesIn Bali": 1.0 } }
        ]
    }"#;

    #[test]
    fn parse_serve_flags() {
        let a = parse_serve_args(&argv(
            "--profiles p.json --strategy paper --socket /tmp/s.sock \
             --workers 2 --queue 16 --deadline-ms 500",
        ))
        .unwrap();
        assert_eq!(a.profiles, "p.json");
        assert_eq!(a.strategy, "paper");
        assert_eq!(a.socket.as_deref(), Some("/tmp/s.sock"));
        assert_eq!(a.tcp, None);
        assert_eq!(a.config.workers, 2);
        assert_eq!(a.config.queue_capacity, 16);
        assert_eq!(a.config.default_deadline_ms, 500);

        assert!(parse_serve_args(&argv("")).is_err(), "--profiles required");
        assert!(parse_serve_args(&argv("--profiles p --workers 0")).is_err());
        assert!(parse_serve_args(&argv("--profiles p --wat 1")).is_err());
    }

    #[test]
    fn parse_serve_tcp_flags() {
        let a = parse_serve_args(&argv(
            "--profiles p.json --tcp 127.0.0.1:7474 --max-conns 32 \
             --idle-timeout-ms 5000 --session-lag 16",
        ))
        .unwrap();
        assert_eq!(a.tcp.as_deref(), Some("127.0.0.1:7474"));
        assert_eq!(a.tcp_config.max_connections, 32);
        assert_eq!(a.tcp_config.idle_timeout, Duration::from_secs(5));
        assert_eq!(a.config.max_session_lag, 16);

        assert!(parse_serve_args(&argv("--profiles p --max-conns 0")).is_err());
        assert!(parse_serve_args(&argv("--profiles p --tcp")).is_err());
    }

    #[test]
    fn built_service_answers_the_protocol() {
        let a = parse_serve_args(&argv("--profiles p.json --strategy paper --workers 1")).unwrap();
        let service = build_service(SAMPLE, &a).unwrap();
        let response = service.handle_line(r#"{"op":"select","budget":2}"#);
        assert!(response.contains(r#""ok":true"#), "{response}");
        assert!(
            response.contains("Alice") || response.contains("Bob"),
            "{response}"
        );
    }

    #[test]
    fn parse_bench_serve_flags() {
        let a = parse_bench_serve_args(&argv(
            "--users 500 --budget 8 --clients 2 --workers 2 --duration-s 0.25 \
             --update-hz 5 --seed 7 --out /tmp/x.jsonl",
        ))
        .unwrap();
        assert_eq!(a.config.users, 500);
        assert_eq!(a.config.budget, 8);
        assert_eq!(a.config.duration, Duration::from_millis(250));
        assert_eq!(a.config.update_hz, 5);
        assert_eq!(a.config.seed, 7);
        assert_eq!(a.config.transport, BenchTransport::InProcess);
        assert_eq!(a.out, "/tmp/x.jsonl");

        let a = parse_bench_serve_args(&argv("--transport tcp")).unwrap();
        assert_eq!(a.config.transport, BenchTransport::Tcp);

        assert!(parse_bench_serve_args(&argv("--users 0")).is_err());
        assert!(parse_bench_serve_args(&argv("--duration-s -1")).is_err());
        assert!(parse_bench_serve_args(&argv("--transport carrier-pigeon")).is_err());
    }

    #[test]
    fn parse_bench_serve_drift_flags() {
        let a =
            parse_bench_serve_args(&argv("--drift-hz 500 --publish-mode full-rebuild")).unwrap();
        assert_eq!(a.config.update_hz, 500, "--drift-hz aliases --update-hz");
        assert_eq!(a.config.publish_mode, PublishMode::FullRebuild);
        let a = parse_bench_serve_args(&argv("--publish-mode incremental")).unwrap();
        assert_eq!(a.config.publish_mode, PublishMode::Incremental);
        assert!(parse_bench_serve_args(&argv("--publish-mode sometimes")).is_err());
        assert!(parse_bench_serve_args(&argv("--drift-hz")).is_err());
    }

    #[test]
    fn bench_serve_summary_and_row_agree() {
        let args = BenchServeArgs {
            config: BenchConfig {
                users: 150,
                properties: 8,
                scores_per_user: 3,
                budget: 4,
                clients: 2,
                workers: 2,
                queue_capacity: 32,
                duration: Duration::from_millis(150),
                update_hz: 20,
                deadline_ms: 1_000,
                seed: 11,
                transport: BenchTransport::InProcess,
                publish_mode: PublishMode::Incremental,
            },
            out: "unused".into(),
        };
        let (human, row) = run_bench_serve(&args);
        assert!(human.contains("bench-serve: 150 users"), "{human}");
        assert!(
            human.contains("failed 0 (deadline 0, transport 0, other 0)"),
            "{human}"
        );
        let v: serde_json::Value = serde_json::from_str(&row).unwrap();
        assert_eq!(v["bench"].as_str(), Some("serve"));
        assert_eq!(v["transport"].as_str(), Some("inproc"));
        assert_eq!(v["failed"].as_u64(), Some(0));
        assert_eq!(v["inconsistent"].as_u64(), Some(0));
        assert!(v["served"].as_u64().unwrap() > 0);
        assert_eq!(
            v["failed"].as_u64().unwrap(),
            v["failed_deadline"].as_u64().unwrap()
                + v["failed_transport"].as_u64().unwrap()
                + v["failed_other"].as_u64().unwrap()
        );
    }

    #[test]
    fn parse_quarantine_modes() {
        assert_eq!(
            parse_quarantine_args(&argv("scan d.json --format taxonomy --report r.json")).unwrap(),
            QuarantineCmd::Scan {
                input: "d.json".into(),
                format: ReplayFormat::Taxonomy,
                report_out: Some("r.json".into()),
            }
        );
        assert_eq!(
            parse_quarantine_args(&argv("inspect r.json")).unwrap(),
            QuarantineCmd::Inspect {
                report: "r.json".into()
            }
        );
        assert_eq!(
            parse_quarantine_args(&argv("replay r.json d.json")).unwrap(),
            QuarantineCmd::Replay {
                report: "r.json".into(),
                input: "d.json".into(),
            }
        );
        assert!(parse_quarantine_args(&argv("")).is_err());
        assert!(parse_quarantine_args(&argv("scan")).is_err());
        assert!(parse_quarantine_args(&argv("scan d --format wat")).is_err());
        assert!(parse_quarantine_args(&argv("inspect a b")).is_err());
        assert!(parse_quarantine_args(&argv("frobnicate x")).is_err());
    }

    /// End-to-end scan → inspect → replay over an actually corrupted
    /// document, through the same string-level entry points the binary
    /// uses.
    #[test]
    fn quarantine_workflow_round_trips() {
        let mut repo = podium_core::profile::UserRepository::new();
        for i in 0..6 {
            let u = repo.add_user(format!("u{i}"));
            let p = repo.intern_property("p0");
            repo.set_score(u, p, 0.1 + 0.1 * i as f64).unwrap();
        }
        let clean = profiles_to_json(&repo).unwrap();
        let corrupted = FaultInjector::new(3)
            .corrupt_json(
                &clean,
                &[FaultKind::OutOfRangeScore, FaultKind::MissingField],
            )
            .unwrap();

        let (human, report_json) = quarantine_scan(&corrupted, ReplayFormat::JsonProfiles).unwrap();
        assert!(human.contains("4 accepted, 2 quarantined"), "{human}");

        let inspected = quarantine_inspect(&report_json).unwrap();
        assert_eq!(inspected, human, "scan shows what inspect will show");

        // Replaying the still-broken document: nothing fixed, nothing new.
        let (summary, clean_replay) = quarantine_replay(&report_json, &corrupted).unwrap();
        assert!(!clean_replay);
        assert!(
            summary.contains("0 fixed, 2 still defective, 0 new"),
            "{summary}"
        );

        // Replaying the original clean document: everything fixed.
        let (summary, clean_replay) = quarantine_replay(&report_json, &clean).unwrap();
        assert!(clean_replay, "{summary}");
        assert!(
            summary.contains("2 fixed, 0 still defective, 0 new"),
            "{summary}"
        );
        assert!(summary.contains("accepted 6 records"), "{summary}");
    }

    #[test]
    fn quarantine_errors_are_reported_not_panicked() {
        assert!(quarantine_inspect("not json").is_err());
        assert!(quarantine_scan("not json", ReplayFormat::JsonProfiles).is_err());
        assert!(quarantine_replay("not json", "{}").is_err());
    }
}
