//! The serving-side subcommands of `podium-cli`: `serve`, `bench-serve`,
//! and the `quarantine` tool family.
//!
//! The classic subcommands (`stats`, `groups`, `select`) live in
//! [`crate::cli`]; this module hosts the front-end for the
//! [`podium_service`] subsystem plus the quarantine-report workflow of
//! `podium_data::report`:
//!
//! * `serve` — load a profile file, build a [`PodiumService`], and serve
//!   the line-delimited JSON protocol over stdin/stdout or a Unix socket;
//! * `bench-serve` — closed-loop load generator against an in-process
//!   service, reporting throughput and latency percentiles as one JSONL
//!   row;
//! * `quarantine scan` — lenient-load a document and persist its
//!   quarantine report;
//! * `quarantine inspect` — pretty-print a persisted report;
//! * `quarantine replay` — re-attempt loading the quarantined records of
//!   an (edited) document and classify each as fixed or still defective.
//!
//! Parsing and rendering are factored apart from file/socket I/O so the
//! logic is testable on in-memory strings, mirroring [`crate::cli::run`].

use std::time::Duration;

use podium_data::report::{load_report, replay, save_report, ReplayFormat, ReplayStatus};
use podium_service::bench::{next_row_seq, run_bench_with, BenchConfig, BenchTransport};
use podium_service::snapshot::PublishMode;
use podium_service::{
    DurabilityOptions, FsyncPolicy, PodiumService, RecoveryReport, ServiceConfig, TcpServerConfig,
};

use crate::cli::bucketing_from;

/// Usage text for the serving-side subcommands (appended to
/// [`crate::cli::USAGE`] by the binary).
pub const SERVICE_USAGE: &str = "\
serving subcommands:
  serve --profiles FILE [--strategy S] [--buckets K] [--socket PATH]
        [--tcp ADDR] [--max-conns N] [--idle-timeout-ms MS]
        [--session-lag N] [--workers N] [--queue N] [--deadline-ms MS]
        [--data-dir DIR] [--fsync always|batch|off]
        [--checkpoint-every N]
      serve the line-delimited JSON protocol (select/explain/refine/
      update-profile/stats) over stdin/stdout, over a Unix domain
      socket when --socket is given, or over TCP when --tcp is given
      (e.g. --tcp 127.0.0.1:7474; --max-conns and --idle-timeout-ms
      bound the TCP listener). With --data-dir, accepted updates are
      written to a checksummed WAL in DIR before acknowledgement and
      recovered on restart; --fsync picks the durability/latency
      trade-off and --checkpoint-every the frames between checkpoints
      (0 disables checkpoints).
  bench-serve [--transport inproc|tcp] [--users N] [--properties N]
        [--scores-per-user N] [--budget B] [--clients N] [--workers N]
        [--queue N] [--duration-s SECS] [--update-hz HZ]
        [--drift-hz HZ] [--publish-mode incremental|full-rebuild]
        [--deadline-ms MS] [--seed S] [--out FILE] [--data-dir DIR]
        [--fsync always|batch|off] [--checkpoint-every N]
      closed-loop load generator over a synthetic repository, either
      in-process or through a loopback TCP server with the resilient
      client; appends one JSONL row to --out
      (default target/bench-serve.jsonl). --drift-hz is the profile-
      drift alias of --update-hz; with --publish-mode it compares
      incremental CSR patching against full epoch rebuilds. With
      --data-dir the run is durable and the row additionally reports
      wal_bytes, last_checkpoint_epoch, and how long a cold recovery
      of the data directory takes (recovery_ms / recovered_epoch).
  quarantine scan <document> [--format F] [--report FILE]
      lenient-load the document, print its quarantine, and (with
      --report) persist the report JSON for later replay.
  quarantine inspect <report.json>
      pretty-print a persisted quarantine report.
  quarantine replay <report.json> <document> [--max-attempts N]
        [--backoff-base-ms MS] [--backoff-cap-ms MS] [--seed S]
      re-attempt loading just the quarantined records against the
      (edited) document; exits non-zero unless every defect is fixed
      and no new ones appeared. With --max-attempts > 1 the replay is
      retried until clean, re-reading the document before each attempt
      and sleeping a seeded, jittered exponential backoff (capped at
      --backoff-cap-ms) between attempts.

  formats F: json-profiles | csv-profiles | taxonomy | rules
";

/// Parsed `serve` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Path to the JSON profiles file.
    pub profiles: String,
    /// Bucketing strategy name (same vocabulary as `select`).
    pub strategy: String,
    /// Buckets per property.
    pub buckets: usize,
    /// Unix-socket path; `None` serves stdin/stdout.
    pub socket: Option<String>,
    /// TCP listen address (e.g. `127.0.0.1:7474`); takes precedence over
    /// `socket` when both are given.
    pub tcp: Option<String>,
    /// TCP listener sizing (connection limit, idle timeout).
    pub tcp_config: TcpServerConfig,
    /// Service sizing.
    pub config: ServiceConfig,
    /// Durable-mode options; `None` serves purely in memory.
    pub durability: Option<DurabilityOptions>,
}

/// Parses `serve` arguments (everything after the subcommand word).
pub fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        profiles: String::new(),
        strategy: "quantile".into(),
        buckets: 3,
        socket: None,
        tcp: None,
        tcp_config: TcpServerConfig::default(),
        config: ServiceConfig::default(),
        durability: None,
    };
    let mut durable = DurabilityFlags::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--profiles" => args.profiles = value("--profiles")?,
            "--strategy" => args.strategy = value("--strategy")?,
            "--buckets" => args.buckets = parse_num(&value("--buckets")?, "--buckets")?,
            "--socket" => args.socket = Some(value("--socket")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--max-conns" => {
                args.tcp_config.max_connections = parse_num(&value("--max-conns")?, "--max-conns")?
            }
            "--idle-timeout-ms" => {
                args.tcp_config.idle_timeout = Duration::from_millis(parse_num(
                    &value("--idle-timeout-ms")?,
                    "--idle-timeout-ms",
                )?)
            }
            "--session-lag" => {
                args.config.max_session_lag = parse_num(&value("--session-lag")?, "--session-lag")?
            }
            "--workers" => args.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => args.config.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--deadline-ms" => {
                args.config.default_deadline_ms =
                    parse_num(&value("--deadline-ms")?, "--deadline-ms")?
            }
            "--data-dir" => durable.data_dir = Some(value("--data-dir")?),
            "--fsync" => durable.fsync = Some(parse_fsync(&value("--fsync")?)?),
            "--checkpoint-every" => {
                durable.checkpoint_every = Some(parse_num(
                    &value("--checkpoint-every")?,
                    "--checkpoint-every",
                )?)
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.profiles.is_empty() {
        return Err("--profiles is required".to_owned());
    }
    if args.config.workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }
    if args.tcp_config.max_connections == 0 {
        return Err("--max-conns must be at least 1".to_owned());
    }
    args.durability = durable.assemble()?;
    Ok(args)
}

/// Raw `--data-dir` / `--fsync` / `--checkpoint-every` flags, shared by
/// `serve` and `bench-serve` parsing.
#[derive(Debug, Default)]
struct DurabilityFlags {
    data_dir: Option<String>,
    fsync: Option<FsyncPolicy>,
    checkpoint_every: Option<u64>,
}

impl DurabilityFlags {
    /// Turns the raw flags into options, rejecting durability knobs
    /// without the data directory that gives them meaning.
    fn assemble(self) -> Result<Option<DurabilityOptions>, String> {
        match self.data_dir {
            Some(dir) => {
                let mut opts = DurabilityOptions::new(dir);
                if let Some(fsync) = self.fsync {
                    opts.fsync = fsync;
                }
                if let Some(every) = self.checkpoint_every {
                    opts.checkpoint_every = every;
                }
                Ok(Some(opts))
            }
            None if self.fsync.is_some() || self.checkpoint_every.is_some() => {
                Err("--fsync/--checkpoint-every need --data-dir".to_owned())
            }
            None => Ok(None),
        }
    }
}

fn parse_fsync(tag: &str) -> Result<FsyncPolicy, String> {
    FsyncPolicy::from_tag(tag)
        .ok_or_else(|| format!("unknown fsync policy '{tag}' (always | batch | off)"))
}

/// Builds the service from already-loaded profile JSON: parse, bucketize
/// with the requested strategy, then stand up the worker pool. With
/// `--data-dir`, recovery runs first (checkpoint load + WAL replay over
/// the genesis profiles) and its report is returned alongside.
pub fn build_service(
    profiles_json: &str,
    args: &ServeArgs,
) -> Result<(PodiumService, Option<RecoveryReport>), String> {
    let repo = podium_data::json::profiles_from_json(profiles_json)
        .map_err(|e| format!("cannot parse profiles: {e}"))?;
    let bucketing = bucketing_from(&args.strategy, args.buckets)?;
    let buckets = bucketing.bucketize(&repo);
    match &args.durability {
        None => Ok((PodiumService::new(repo, &buckets, args.config), None)),
        Some(opts) => {
            let (service, report) =
                PodiumService::with_durability(repo, &buckets, args.config, opts.clone())
                    .map_err(|e| format!("cannot recover data dir: {e}"))?;
            Ok((service, Some(report)))
        }
    }
}

/// One-line human rendering of a recovery report, for serve startup
/// stderr and bench-serve summaries.
pub fn describe_recovery(report: &RecoveryReport) -> String {
    let mut line = format!(
        "recovered epoch {} (checkpoint seq {} @ epoch {}, {} frames / {} updates replayed, wal {} bytes)",
        report.recovered_epoch,
        report.checkpoint_seq,
        report.checkpoint_epoch,
        report.replayed_frames,
        report.replayed_updates,
        report.wal_bytes,
    );
    if report.checkpoints_rejected > 0 {
        line.push_str(&format!(
            ", {} corrupt checkpoint(s) rejected",
            report.checkpoints_rejected
        ));
    }
    if let Some(reason) = &report.quarantined {
        line.push_str(&format!(
            ", quarantined {} torn byte(s): {reason}",
            report.quarantined_bytes
        ));
    }
    line
}

/// Parsed `bench-serve` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchServeArgs {
    /// Load-generator knobs.
    pub config: BenchConfig,
    /// JSONL output path the binary appends the report row to.
    pub out: String,
    /// Durable-mode options; `None` benches a purely in-memory service.
    pub durability: Option<DurabilityOptions>,
}

/// Parses `bench-serve` arguments (everything after the subcommand word).
pub fn parse_bench_serve_args(argv: &[String]) -> Result<BenchServeArgs, String> {
    let mut config = BenchConfig::default();
    let mut out = "target/bench-serve.jsonl".to_owned();
    let mut durable = DurabilityFlags::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--transport" => {
                config.transport = match value("--transport")?.as_str() {
                    "inproc" | "in-process" => BenchTransport::InProcess,
                    "tcp" => BenchTransport::Tcp,
                    other => return Err(format!("unknown transport '{other}' (inproc | tcp)")),
                }
            }
            "--users" => config.users = parse_num(&value("--users")?, "--users")?,
            "--properties" => {
                config.properties = parse_num(&value("--properties")?, "--properties")?
            }
            "--scores-per-user" => {
                config.scores_per_user =
                    parse_num(&value("--scores-per-user")?, "--scores-per-user")?
            }
            "--budget" => config.budget = parse_num(&value("--budget")?, "--budget")?,
            "--clients" => config.clients = parse_num(&value("--clients")?, "--clients")?,
            "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => config.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--duration-s" => {
                let secs: f64 = value("--duration-s")?
                    .parse()
                    .map_err(|_| "--duration-s needs a number".to_owned())?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--duration-s must be positive".to_owned());
                }
                config.duration = Duration::from_secs_f64(secs);
            }
            "--update-hz" => config.update_hz = parse_num(&value("--update-hz")?, "--update-hz")?,
            "--drift-hz" => config.update_hz = parse_num(&value("--drift-hz")?, "--drift-hz")?,
            "--publish-mode" => {
                config.publish_mode = match value("--publish-mode")?.as_str() {
                    "incremental" => PublishMode::Incremental,
                    "full-rebuild" | "full_rebuild" => PublishMode::FullRebuild,
                    other => {
                        return Err(format!(
                            "unknown publish mode '{other}' (incremental | full-rebuild)"
                        ))
                    }
                }
            }
            "--deadline-ms" => {
                config.deadline_ms = parse_num(&value("--deadline-ms")?, "--deadline-ms")?
            }
            "--seed" => config.seed = parse_num(&value("--seed")?, "--seed")?,
            "--out" => out = value("--out")?,
            "--data-dir" => durable.data_dir = Some(value("--data-dir")?),
            "--fsync" => durable.fsync = Some(parse_fsync(&value("--fsync")?)?),
            "--checkpoint-every" => {
                durable.checkpoint_every = Some(parse_num(
                    &value("--checkpoint-every")?,
                    "--checkpoint-every",
                )?)
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if config.users == 0 || config.budget == 0 || config.clients == 0 || config.workers == 0 {
        return Err("--users/--budget/--clients/--workers must be at least 1".to_owned());
    }
    Ok(BenchServeArgs {
        config,
        out,
        durability: durable.assemble()?,
    })
}

/// Runs the load generator; returns the human-readable summary and the
/// JSONL row the binary appends to `args.out`.
pub fn run_bench_serve(args: &BenchServeArgs) -> (String, String) {
    use std::fmt::Write as _;
    let mut report = run_bench_with(&args.config, args.durability.as_ref());
    // Sequence numbers continue across appends to the same JSONL file so
    // readers can detect truncation/reordering (podium.bench-serve/1).
    report.seq = next_row_seq(&std::fs::read_to_string(&args.out).unwrap_or_default());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-serve: {} users, budget {}, {} clients / {} workers, updates {} Hz",
        report.users, report.budget, report.clients, report.workers, report.update_hz
    );
    let _ = writeln!(
        out,
        "served {} requests in {:.2} s ({:.1} req/s) over {}",
        report.served, report.duration_s, report.throughput_rps, report.transport
    );
    let _ = writeln!(
        out,
        "latency us: p50 {}  p90 {}  p99 {}  max {}",
        report.p50_us, report.p90_us, report.p99_us, report.max_us
    );
    let _ = writeln!(
        out,
        "failed {} (deadline {}, transport {}, other {}), overloaded {}, inconsistent {}",
        report.failed,
        report.failed_deadline,
        report.failed_transport,
        report.failed_other,
        report.overloaded,
        report.inconsistent,
    );
    let _ = writeln!(
        out,
        "{} updates applied (final epoch {}); cache {} hits / {} misses; max queue depth {}",
        report.updates_applied,
        report.final_epoch,
        report.cache_hits,
        report.cache_misses,
        report.queue_depth_max
    );
    if args.durability.is_some() {
        let _ = writeln!(
            out,
            "durable: wal {} bytes, last checkpoint epoch {}; cold recovery {:.1} ms to epoch {}",
            report.wal_bytes,
            report.last_checkpoint_epoch,
            report.recovery_ms,
            report.recovered_epoch
        );
    }
    (out, report.to_json())
}

/// Parsed `quarantine` command line.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineCmd {
    /// Lenient-load a document and report (optionally persist) its
    /// quarantine.
    Scan {
        /// Path of the document to scan.
        input: String,
        /// Loader format.
        format: ReplayFormat,
        /// Where to persist the report JSON, if anywhere.
        report_out: Option<String>,
    },
    /// Pretty-print a persisted report.
    Inspect {
        /// Path of the report JSON.
        report: String,
    },
    /// Replay a persisted report against an (edited) document.
    Replay {
        /// Path of the report JSON.
        report: String,
        /// Path of the edited document.
        input: String,
        /// Attempts before giving up; `1` replays exactly once (the
        /// historical behaviour).
        max_attempts: u32,
        /// Base of the exponential backoff between attempts.
        backoff_base_ms: u64,
        /// Backoff ceiling: no sleep exceeds this many milliseconds.
        backoff_cap_ms: u64,
        /// Seed of the backoff jitter stream.
        seed: u64,
    },
}

/// Default `--max-attempts` for `quarantine replay`.
pub const REPLAY_DEFAULT_MAX_ATTEMPTS: u32 = 1;
/// Default `--backoff-base-ms` for `quarantine replay`.
pub const REPLAY_DEFAULT_BACKOFF_BASE_MS: u64 = 50;
/// Default `--backoff-cap-ms` for `quarantine replay`.
pub const REPLAY_DEFAULT_BACKOFF_CAP_MS: u64 = 5_000;
/// Default `--seed` for the replay backoff jitter.
pub const REPLAY_DEFAULT_SEED: u64 = 0xB0FF;

/// Seeded jittered exponential backoff for `quarantine replay`:
/// `base_ms * 2^(attempt-1)` capped at `cap_ms`, then jittered into
/// `[50%, 100%)` of the capped value (the same scheme as the TCP
/// client's reconnect backoff) so repeated replays of a shared document
/// don't synchronize. `attempt` counts from 1 = the sleep after the
/// first failed attempt.
pub fn compute_backoff_ms(base_ms: u64, cap_ms: u64, attempt: u32, seed: &mut u64) -> u64 {
    let exponent = attempt.saturating_sub(1).min(32);
    let uncapped = base_ms.saturating_mul(1u64 << exponent);
    let capped = uncapped.min(cap_ms);
    // podium-lint: allow(as-cast) — 53-bit jitter mantissa and millisecond caps are exact in f64
    let unit = (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64;
    // podium-lint: allow(as-cast) — capped ≤ cap_ms (a CLI millisecond count, far below 2^53); the product is non-negative so the u64 round-trip is lossless
    (capped as f64 * (0.5 + 0.5 * unit)).round() as u64
}

/// splitmix64, for the replay backoff jitter stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parses `quarantine` arguments (everything after the `quarantine` word).
pub fn parse_quarantine_args(argv: &[String]) -> Result<QuarantineCmd, String> {
    let (mode, rest) = argv
        .split_first()
        .ok_or_else(|| "quarantine needs a mode: scan | inspect | replay".to_owned())?;
    match mode.as_str() {
        "scan" => {
            let mut input = None;
            let mut format = ReplayFormat::JsonProfiles;
            let mut report_out = None;
            let mut it = rest.iter();
            while let Some(word) = it.next() {
                match word.as_str() {
                    "--format" => {
                        let tag = it
                            .next()
                            .ok_or_else(|| "--format needs a value".to_owned())?;
                        format = ReplayFormat::from_tag(tag)
                            .ok_or_else(|| format!("unknown format '{tag}'"))?;
                    }
                    "--report" => {
                        report_out = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| "--report needs a value".to_owned())?,
                        )
                    }
                    flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
                    path if input.is_none() => input = Some(path.to_owned()),
                    extra => return Err(format!("unexpected argument '{extra}'")),
                }
            }
            Ok(QuarantineCmd::Scan {
                input: input.ok_or_else(|| "quarantine scan needs a document path".to_owned())?,
                format,
                report_out,
            })
        }
        "inspect" => match rest {
            [report] => Ok(QuarantineCmd::Inspect {
                report: report.clone(),
            }),
            _ => Err("usage: quarantine inspect <report.json>".to_owned()),
        },
        "replay" => {
            let mut positional = Vec::new();
            let mut max_attempts = REPLAY_DEFAULT_MAX_ATTEMPTS;
            let mut backoff_base_ms = REPLAY_DEFAULT_BACKOFF_BASE_MS;
            let mut backoff_cap_ms = REPLAY_DEFAULT_BACKOFF_CAP_MS;
            let mut seed = REPLAY_DEFAULT_SEED;
            let mut it = rest.iter();
            while let Some(word) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match word.as_str() {
                    "--max-attempts" => {
                        max_attempts = parse_num(&value("--max-attempts")?, "--max-attempts")?
                    }
                    "--backoff-base-ms" => {
                        backoff_base_ms =
                            parse_num(&value("--backoff-base-ms")?, "--backoff-base-ms")?
                    }
                    "--backoff-cap-ms" => {
                        backoff_cap_ms = parse_num(&value("--backoff-cap-ms")?, "--backoff-cap-ms")?
                    }
                    "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
                    flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
                    path => positional.push(path.to_owned()),
                }
            }
            if max_attempts == 0 {
                return Err("--max-attempts must be at least 1".to_owned());
            }
            match positional.as_slice() {
                [report, input] => Ok(QuarantineCmd::Replay {
                    report: report.clone(),
                    input: input.clone(),
                    max_attempts,
                    backoff_base_ms,
                    backoff_cap_ms,
                    seed,
                }),
                _ => Err("usage: quarantine replay <report.json> <document>".to_owned()),
            }
        }
        other => Err(format!("unknown quarantine mode '{other}'")),
    }
}

/// Lenient-loads `document` and renders its quarantine; returns the human
/// summary and the persistable report JSON.
pub fn quarantine_scan(document: &str, format: ReplayFormat) -> Result<(String, String), String> {
    let report = format
        .lenient_report(document)
        .map_err(|e| format!("cannot load document: {e}"))?;
    let json = save_report(&report, format);
    // Round-trip through the persisted form so the rendering below is
    // exactly what `inspect` will show later.
    let human = quarantine_inspect(&json)?;
    Ok((human, json))
}

/// Pretty-prints a persisted quarantine report.
pub fn quarantine_inspect(report_json: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let saved = load_report(report_json).map_err(|e| format!("cannot parse report: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "format {}: {} accepted, {} quarantined",
        saved.format.tag(),
        saved.accepted,
        saved.entries.len()
    );
    for entry in &saved.entries {
        let _ = writeln!(out, "  {}", entry.describe());
        if !entry.snippet.is_empty() {
            let _ = writeln!(out, "      {}", entry.snippet);
        }
    }
    Ok(out)
}

/// Replays a persisted report against `document`; returns the human
/// summary and whether the replay came back clean.
pub fn quarantine_replay(report_json: &str, document: &str) -> Result<(String, bool), String> {
    use std::fmt::Write as _;
    let saved = load_report(report_json).map_err(|e| format!("cannot parse report: {e}"))?;
    let outcome = replay(&saved, document).map_err(|e| format!("cannot re-load document: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {} quarantined records against {} format: {} fixed, {} still defective, {} new",
        saved.entries.len(),
        saved.format.tag(),
        outcome.fixed(),
        outcome.still_defective(),
        outcome.new_defects.len()
    );
    for entry in &outcome.entries {
        match &entry.status {
            ReplayStatus::Fixed => {
                let _ = writeln!(out, "  fixed: {}", entry.saved.describe());
            }
            ReplayStatus::StillDefective { kind, message } => {
                let _ = writeln!(out, "  still defective [{kind}]: {message}");
            }
        }
    }
    for fresh in &outcome.new_defects {
        let _ = writeln!(out, "  new defect: {}", fresh.describe());
    }
    let _ = writeln!(out, "accepted {} records", outcome.accepted);
    Ok((out, outcome.is_clean()))
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag} needs an integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_data::fault::{FaultInjector, FaultKind};
    use podium_data::json::profiles_to_json;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    const SAMPLE: &str = r#"{
        "users": [
            { "name": "Alice", "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } },
            { "name": "Bob",   "properties": { "livesIn NYC": 1.0,   "avgRating Mexican": 0.3 } },
            { "name": "Carol", "properties": { "livesIn Bali": 1.0 } }
        ]
    }"#;

    #[test]
    fn parse_serve_flags() {
        let a = parse_serve_args(&argv(
            "--profiles p.json --strategy paper --socket /tmp/s.sock \
             --workers 2 --queue 16 --deadline-ms 500",
        ))
        .unwrap();
        assert_eq!(a.profiles, "p.json");
        assert_eq!(a.strategy, "paper");
        assert_eq!(a.socket.as_deref(), Some("/tmp/s.sock"));
        assert_eq!(a.tcp, None);
        assert_eq!(a.config.workers, 2);
        assert_eq!(a.config.queue_capacity, 16);
        assert_eq!(a.config.default_deadline_ms, 500);
        assert_eq!(a.durability, None);

        assert!(parse_serve_args(&argv("")).is_err(), "--profiles required");
        assert!(parse_serve_args(&argv("--profiles p --workers 0")).is_err());
        assert!(parse_serve_args(&argv("--profiles p --wat 1")).is_err());
    }

    #[test]
    fn parse_serve_durability_flags() {
        let a = parse_serve_args(&argv(
            "--profiles p.json --data-dir /tmp/podium-data --fsync batch --checkpoint-every 64",
        ))
        .unwrap();
        let opts = a.durability.expect("durability options");
        assert_eq!(opts.data_dir, std::path::PathBuf::from("/tmp/podium-data"));
        assert_eq!(opts.fsync, FsyncPolicy::Batch);
        assert_eq!(opts.checkpoint_every, 64);

        // Defaults: always-fsync, default checkpoint cadence.
        let a = parse_serve_args(&argv("--profiles p.json --data-dir d")).unwrap();
        let opts = a.durability.expect("durability options");
        assert_eq!(opts.fsync, FsyncPolicy::Always);
        assert_eq!(
            opts.checkpoint_every,
            podium_service::recovery::DEFAULT_CHECKPOINT_EVERY
        );

        // Durability knobs without --data-dir are a user error, as is an
        // unknown policy.
        assert!(parse_serve_args(&argv("--profiles p --fsync batch")).is_err());
        assert!(parse_serve_args(&argv("--profiles p --checkpoint-every 8")).is_err());
        assert!(parse_serve_args(&argv("--profiles p --data-dir d --fsync sometimes")).is_err());
    }

    #[test]
    fn parse_serve_tcp_flags() {
        let a = parse_serve_args(&argv(
            "--profiles p.json --tcp 127.0.0.1:7474 --max-conns 32 \
             --idle-timeout-ms 5000 --session-lag 16",
        ))
        .unwrap();
        assert_eq!(a.tcp.as_deref(), Some("127.0.0.1:7474"));
        assert_eq!(a.tcp_config.max_connections, 32);
        assert_eq!(a.tcp_config.idle_timeout, Duration::from_secs(5));
        assert_eq!(a.config.max_session_lag, 16);

        assert!(parse_serve_args(&argv("--profiles p --max-conns 0")).is_err());
        assert!(parse_serve_args(&argv("--profiles p --tcp")).is_err());
    }

    #[test]
    fn built_service_answers_the_protocol() {
        let a = parse_serve_args(&argv("--profiles p.json --strategy paper --workers 1")).unwrap();
        let (service, recovery) = build_service(SAMPLE, &a).unwrap();
        assert!(recovery.is_none(), "no --data-dir, no recovery");
        let response = service.handle_line(r#"{"op":"select","budget":2}"#);
        assert!(response.contains(r#""ok":true"#), "{response}");
        assert!(
            response.contains("Alice") || response.contains("Bob"),
            "{response}"
        );
    }

    #[test]
    fn built_durable_service_recovers_across_builds() {
        let dir = std::env::temp_dir().join(format!(
            "podium-cli-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let flags = format!(
            "--profiles p.json --strategy paper --workers 1 --data-dir {}",
            dir.display()
        );
        let a = parse_serve_args(&argv(&flags)).unwrap();
        {
            let (service, recovery) = build_service(SAMPLE, &a).unwrap();
            let report = recovery.expect("durable build reports recovery");
            assert_eq!(report.recovered_epoch, 0);
            assert!(describe_recovery(&report).contains("recovered epoch 0"));
            let response = service.handle_line(
                r#"{"op":"update-profile","user":"Dave","property":"avgRating Mexican","score":0.7}"#,
            );
            assert!(response.contains(r#""ok":true"#), "{response}");
        }
        let (service, recovery) = build_service(SAMPLE, &a).unwrap();
        let report = recovery.expect("durable build reports recovery");
        assert_eq!(report.replayed_updates, 1, "{report:?}");
        assert_eq!(report.recovered_epoch, 1, "{report:?}");
        let response = service.handle_line(r#"{"op":"stats"}"#);
        assert!(response.contains(r#""users":4"#), "{response}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_bench_serve_flags() {
        let a = parse_bench_serve_args(&argv(
            "--users 500 --budget 8 --clients 2 --workers 2 --duration-s 0.25 \
             --update-hz 5 --seed 7 --out /tmp/x.jsonl",
        ))
        .unwrap();
        assert_eq!(a.config.users, 500);
        assert_eq!(a.config.budget, 8);
        assert_eq!(a.config.duration, Duration::from_millis(250));
        assert_eq!(a.config.update_hz, 5);
        assert_eq!(a.config.seed, 7);
        assert_eq!(a.config.transport, BenchTransport::InProcess);
        assert_eq!(a.out, "/tmp/x.jsonl");

        let a = parse_bench_serve_args(&argv("--transport tcp")).unwrap();
        assert_eq!(a.config.transport, BenchTransport::Tcp);
        assert_eq!(a.durability, None);

        let a = parse_bench_serve_args(&argv("--data-dir /tmp/d --fsync off")).unwrap();
        let opts = a.durability.expect("durability options");
        assert_eq!(opts.fsync, FsyncPolicy::Off);

        assert!(parse_bench_serve_args(&argv("--users 0")).is_err());
        assert!(parse_bench_serve_args(&argv("--duration-s -1")).is_err());
        assert!(parse_bench_serve_args(&argv("--transport carrier-pigeon")).is_err());
        assert!(parse_bench_serve_args(&argv("--fsync batch")).is_err());
    }

    #[test]
    fn parse_bench_serve_drift_flags() {
        let a =
            parse_bench_serve_args(&argv("--drift-hz 500 --publish-mode full-rebuild")).unwrap();
        assert_eq!(a.config.update_hz, 500, "--drift-hz aliases --update-hz");
        assert_eq!(a.config.publish_mode, PublishMode::FullRebuild);
        let a = parse_bench_serve_args(&argv("--publish-mode incremental")).unwrap();
        assert_eq!(a.config.publish_mode, PublishMode::Incremental);
        assert!(parse_bench_serve_args(&argv("--publish-mode sometimes")).is_err());
        assert!(parse_bench_serve_args(&argv("--drift-hz")).is_err());
    }

    #[test]
    fn bench_serve_summary_and_row_agree() {
        let args = BenchServeArgs {
            config: BenchConfig {
                users: 150,
                properties: 8,
                scores_per_user: 3,
                budget: 4,
                clients: 2,
                workers: 2,
                queue_capacity: 32,
                duration: Duration::from_millis(150),
                update_hz: 20,
                deadline_ms: 1_000,
                seed: 11,
                transport: BenchTransport::InProcess,
                publish_mode: PublishMode::Incremental,
            },
            out: "unused".into(),
            durability: None,
        };
        let (human, row) = run_bench_serve(&args);
        assert!(human.contains("bench-serve: 150 users"), "{human}");
        assert!(
            human.contains("failed 0 (deadline 0, transport 0, other 0)"),
            "{human}"
        );
        let v: serde_json::Value = serde_json::from_str(&row).unwrap();
        assert_eq!(
            v["schema"].as_str(),
            Some(podium_service::bench::BENCH_SERVE_SCHEMA)
        );
        assert_eq!(v["seq"].as_u64(), Some(0));
        assert_eq!(v["bench"].as_str(), Some("serve"));
        assert_eq!(v["transport"].as_str(), Some("inproc"));
        assert_eq!(v["failed"].as_u64(), Some(0));
        assert_eq!(v["inconsistent"].as_u64(), Some(0));
        assert!(v["served"].as_u64().unwrap() > 0);
        assert_eq!(
            v["failed"].as_u64().unwrap(),
            v["failed_deadline"].as_u64().unwrap()
                + v["failed_transport"].as_u64().unwrap()
                + v["failed_other"].as_u64().unwrap()
        );
    }

    #[test]
    fn parse_quarantine_modes() {
        assert_eq!(
            parse_quarantine_args(&argv("scan d.json --format taxonomy --report r.json")).unwrap(),
            QuarantineCmd::Scan {
                input: "d.json".into(),
                format: ReplayFormat::Taxonomy,
                report_out: Some("r.json".into()),
            }
        );
        assert_eq!(
            parse_quarantine_args(&argv("inspect r.json")).unwrap(),
            QuarantineCmd::Inspect {
                report: "r.json".into()
            }
        );
        assert_eq!(
            parse_quarantine_args(&argv("replay r.json d.json")).unwrap(),
            QuarantineCmd::Replay {
                report: "r.json".into(),
                input: "d.json".into(),
                max_attempts: REPLAY_DEFAULT_MAX_ATTEMPTS,
                backoff_base_ms: REPLAY_DEFAULT_BACKOFF_BASE_MS,
                backoff_cap_ms: REPLAY_DEFAULT_BACKOFF_CAP_MS,
                seed: REPLAY_DEFAULT_SEED,
            }
        );
        assert_eq!(
            parse_quarantine_args(&argv(
                "replay r.json d.json --max-attempts 5 --backoff-base-ms 10 \
                 --backoff-cap-ms 200 --seed 42"
            ))
            .unwrap(),
            QuarantineCmd::Replay {
                report: "r.json".into(),
                input: "d.json".into(),
                max_attempts: 5,
                backoff_base_ms: 10,
                backoff_cap_ms: 200,
                seed: 42,
            }
        );
        assert!(parse_quarantine_args(&argv("")).is_err());
        assert!(parse_quarantine_args(&argv("scan")).is_err());
        assert!(parse_quarantine_args(&argv("scan d --format wat")).is_err());
        assert!(parse_quarantine_args(&argv("inspect a b")).is_err());
        assert!(parse_quarantine_args(&argv("frobnicate x")).is_err());
        assert!(parse_quarantine_args(&argv("replay r d --max-attempts 0")).is_err());
        assert!(parse_quarantine_args(&argv("replay r d --max-attempts")).is_err());
        assert!(parse_quarantine_args(&argv("replay r d --wat 1")).is_err());
        assert!(parse_quarantine_args(&argv("replay r d extra")).is_err());
    }

    #[test]
    fn backoff_is_seeded_capped_and_grows() {
        // Same seed, same schedule; the jitter stays within [50%, 100%]
        // of the capped exponential envelope.
        let schedule = |mut seed: u64| -> Vec<u64> {
            (1..=8)
                .map(|a| compute_backoff_ms(50, 2_000, a, &mut seed))
                .collect()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
        let mut seed = 7;
        for attempt in 1..=12u32 {
            let envelope = 50u64
                .saturating_mul(1 << u64::from(attempt.saturating_sub(1).min(32)))
                .min(2_000);
            let ms = compute_backoff_ms(50, 2_000, attempt, &mut seed);
            assert!(
                ms >= envelope / 2 && ms <= envelope,
                "attempt {attempt}: {ms} outside [{}, {envelope}]",
                envelope / 2
            );
        }
        // Huge attempt numbers must not overflow.
        let mut seed = 1;
        assert!(compute_backoff_ms(50, 2_000, u32::MAX, &mut seed) <= 2_000);
    }

    /// End-to-end scan → inspect → replay over an actually corrupted
    /// document, through the same string-level entry points the binary
    /// uses.
    #[test]
    fn quarantine_workflow_round_trips() {
        let mut repo = podium_core::profile::UserRepository::new();
        for i in 0..6 {
            let u = repo.add_user(format!("u{i}"));
            let p = repo.intern_property("p0");
            repo.set_score(u, p, 0.1 + 0.1 * i as f64).unwrap();
        }
        let clean = profiles_to_json(&repo).unwrap();
        let corrupted = FaultInjector::new(3)
            .corrupt_json(
                &clean,
                &[FaultKind::OutOfRangeScore, FaultKind::MissingField],
            )
            .unwrap();

        let (human, report_json) = quarantine_scan(&corrupted, ReplayFormat::JsonProfiles).unwrap();
        assert!(human.contains("4 accepted, 2 quarantined"), "{human}");

        let inspected = quarantine_inspect(&report_json).unwrap();
        assert_eq!(inspected, human, "scan shows what inspect will show");

        // Replaying the still-broken document: nothing fixed, nothing new.
        let (summary, clean_replay) = quarantine_replay(&report_json, &corrupted).unwrap();
        assert!(!clean_replay);
        assert!(
            summary.contains("0 fixed, 2 still defective, 0 new"),
            "{summary}"
        );

        // Replaying the original clean document: everything fixed.
        let (summary, clean_replay) = quarantine_replay(&report_json, &clean).unwrap();
        assert!(clean_replay, "{summary}");
        assert!(
            summary.contains("2 fixed, 0 still defective, 0 new"),
            "{summary}"
        );
        assert!(summary.contains("accepted 6 records"), "{summary}");
    }

    #[test]
    fn quarantine_errors_are_reported_not_panicked() {
        assert!(quarantine_inspect("not json").is_err());
        assert!(quarantine_scan("not json", ReplayFormat::JsonProfiles).is_err());
        assert!(quarantine_replay("not json", "{}").is_err());
    }
}
