//! The simulator subcommands of `podium-cli`: `sim run` and
//! `sim report`.
//!
//! * `sim run` — drives the deterministic workload generator
//!   ([`podium_sim::run_sim`]) from a versioned scenario file, writing
//!   three artifacts into `--out-dir`: `trace.jsonl` (byte-identical per
//!   seed), `requests.jsonl` (wall-clock latencies/outcomes/staleness),
//!   and `rollup.json` (the deterministic counter rollup).
//! * `sim report` — the unified dashboard: validates any mix of
//!   bench-serve, experiment-status, podium-lint, and simulator JSONL
//!   files and renders one human dashboard plus the machine
//!   `podium.dashboard-rollup/1` document (checked in as
//!   `BENCH_8.json`).

use podium_sim::driver::{run_sim, SimOptions};
use podium_sim::report::render;
use podium_sim::scenario::parse_scenario;
use podium_sim::stream::read_streams;
use podium_sim::transport::TransportSpec;

/// Usage text for the `sim` subcommand family; appended to the main
/// usage output.
pub const SIM_USAGE: &str = "\
podium-cli sim — deterministic workload simulation + dashboard

USAGE:
  sim run --scenario FILE [--seed N] [--transport inproc|unix|tcp]
      [--chaos] [--out-dir DIR]
      Drive the scenario against a real in-process service; write
      trace.jsonl / requests.jsonl / rollup.json under --out-dir
      (default target/sim). Same --seed and scenario => byte-identical
      trace and rollup. --chaos (tcp only) interposes the
      virtual-clock chaos proxy.
  sim report --in FILE [--in FILE ...] [--out FILE]
      Render the unified dashboard over any mix of bench-serve,
      experiment-status, podium-lint, and sim trace/request JSONL
      files; print the human dashboard and write the machine rollup
      to --out (default BENCH_8.json).
";

/// Parsed `sim run` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRunArgs {
    /// Scenario file path (`podium.scenario/1` JSON).
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Transport name (`inproc` | `unix` | `tcp`).
    pub transport: String,
    /// Interpose the chaos proxy (tcp only).
    pub chaos: bool,
    /// Directory the three artifacts are written into.
    pub out_dir: String,
}

/// Parsed `sim report` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReportArgs {
    /// Input JSONL paths, each auto-detected by schema tag.
    pub inputs: Vec<String>,
    /// Where the machine rollup is written.
    pub out: String,
}

/// Parses `sim run` arguments (everything after the two command words).
pub fn parse_sim_run_args(argv: &[String]) -> Result<SimRunArgs, String> {
    let mut scenario: Option<String> = None;
    let mut seed = 0u64;
    let mut transport = "inproc".to_owned();
    let mut chaos = false;
    let mut out_dir = "target/sim".to_owned();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--scenario" => scenario = Some(value("--scenario")?),
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an unsigned integer".to_owned())?
            }
            "--transport" => transport = value("--transport")?,
            "--chaos" => chaos = true,
            "--out-dir" => out_dir = value("--out-dir")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let scenario = scenario.ok_or_else(|| "--scenario is required".to_owned())?;
    if chaos && transport != "tcp" {
        return Err("--chaos requires --transport tcp".to_owned());
    }
    // Validate the transport name eagerly so errors surface before any run.
    TransportSpec::parse(&transport, chaos)?;
    Ok(SimRunArgs {
        scenario,
        seed,
        transport,
        chaos,
        out_dir,
    })
}

/// Parses `sim report` arguments.
pub fn parse_sim_report_args(argv: &[String]) -> Result<SimReportArgs, String> {
    let mut inputs = Vec::new();
    let mut out = "BENCH_8.json".to_owned();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--in" => inputs.push(value("--in")?),
            "--out" => out = value("--out")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if inputs.is_empty() {
        return Err("at least one --in FILE is required".to_owned());
    }
    Ok(SimReportArgs { inputs, out })
}

/// The artifacts of one `sim run`, ready to be written to disk.
#[derive(Debug)]
pub struct SimRunOutput {
    /// Wall-clock summary for stdout.
    pub human: String,
    /// Event-trace JSONL (deterministic per seed).
    pub trace: String,
    /// Request-log JSONL.
    pub requests: String,
    /// Deterministic rollup, serialized.
    pub rollup_json: String,
}

/// Reads the scenario and runs the simulation. Pure compute plus one
/// file read; the binary owns writing the artifacts.
pub fn run_sim_run(args: &SimRunArgs) -> Result<SimRunOutput, String> {
    let text = std::fs::read_to_string(&args.scenario)
        .map_err(|e| format!("cannot read scenario '{}': {e}", args.scenario))?;
    let scenario = parse_scenario(&text).map_err(|e| e.to_string())?;
    let transport = TransportSpec::parse(&args.transport, args.chaos)?;
    let options = SimOptions {
        seed: args.seed,
        transport,
    };
    let output = run_sim(&scenario, &options).map_err(|e| e.to_string())?;
    // podium-lint: allow(expect) — the rollup is built from plain strings/numbers and cannot fail to serialize
    let rollup_json =
        serde_json::to_string(&output.rollup).expect("rollup serialization is infallible");
    Ok(SimRunOutput {
        human: output.human,
        trace: output.trace,
        requests: output.requests,
        rollup_json,
    })
}

/// Reads and validates every input stream, renders the dashboard.
/// Returns `(human_dashboard, rollup_json)`.
pub fn run_sim_report(args: &SimReportArgs) -> Result<(String, String), String> {
    let mut documents = Vec::new();
    for path in &args.inputs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read input '{path}': {e}"))?;
        documents.push((path.clone(), text));
    }
    let streams = read_streams(&documents).map_err(|e| e.to_string())?;
    let (human, rollup) = render(&streams);
    // podium-lint: allow(expect) — the rollup is built from plain strings/numbers and cannot fail to serialize
    let rollup_json = serde_json::to_string(&rollup).expect("rollup serialization is infallible");
    Ok((human, rollup_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_run_flags() {
        let a = parse_sim_run_args(&argv(
            "--scenario configs/sim_smoke.json --seed 42 --transport tcp --chaos --out-dir /tmp/x",
        ))
        .unwrap();
        assert_eq!(a.scenario, "configs/sim_smoke.json");
        assert_eq!(a.seed, 42);
        assert_eq!(a.transport, "tcp");
        assert!(a.chaos);
        assert_eq!(a.out_dir, "/tmp/x");
    }

    #[test]
    fn parse_run_defaults_and_errors() {
        let a = parse_sim_run_args(&argv("--scenario s.json")).unwrap();
        assert_eq!(a.seed, 0);
        assert_eq!(a.transport, "inproc");
        assert_eq!(a.out_dir, "target/sim");
        assert!(parse_sim_run_args(&argv("")).is_err());
        assert!(parse_sim_run_args(&argv("--scenario s.json --chaos")).is_err());
        assert!(parse_sim_run_args(&argv("--scenario s.json --transport pigeon")).is_err());
        assert!(parse_sim_run_args(&argv("--scenario s.json --seed nope")).is_err());
    }

    #[test]
    fn parse_report_flags() {
        let a = parse_sim_report_args(&argv("--in a.jsonl --in b.jsonl --out R.json")).unwrap();
        assert_eq!(a.inputs, vec!["a.jsonl".to_owned(), "b.jsonl".to_owned()]);
        assert_eq!(a.out, "R.json");
        let a = parse_sim_report_args(&argv("--in a.jsonl")).unwrap();
        assert_eq!(a.out, "BENCH_8.json");
        assert!(parse_sim_report_args(&argv("--out R.json")).is_err());
    }

    #[test]
    fn report_rejects_invalid_streams_with_the_typed_message() {
        let dir = std::env::temp_dir().join(format!("podium-sim-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"schema\":\"podium.mystery/9\",\"seq\":0}\n").unwrap();
        let args = SimReportArgs {
            inputs: vec![bad.to_string_lossy().into_owned()],
            out: "unused".into(),
        };
        let err = run_sim_report(&args).unwrap_err();
        assert!(err.contains("unknown stream schema"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
