//! `podium-cli` — diverse user selection over JSON profile files, plus the
//! serving-side front-end (`serve`, `bench-serve`, `quarantine`).
//!
//! See `podium::cli::USAGE` / `podium::service_cli::SERVICE_USAGE` or run
//! with `--help`.

use std::io::Write as _;
use std::sync::Arc;

use podium::service_cli::{self, QuarantineCmd};
use podium::sim_cli;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        eprint!(
            "{}\n{}\n{}",
            podium::cli::USAGE,
            service_cli::SERVICE_USAGE,
            sim_cli::SIM_USAGE
        );
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    if let Some((cmd, rest)) = argv.split_first() {
        match cmd.as_str() {
            "serve" => run_serve(rest),
            "bench-serve" => run_bench_serve(rest),
            "quarantine" => run_quarantine(rest),
            "sim" => run_sim(rest),
            _ => run_classic(&argv),
        }
    }
}

/// `sim run` / `sim report` dispatch: the library computes, this binary
/// owns every file write.
fn run_sim(argv: &[String]) {
    let Some((sub, rest)) = argv.split_first() else {
        usage_error("sim needs a subcommand: run | report");
    };
    match sub.as_str() {
        "run" => {
            let args = match sim_cli::parse_sim_run_args(rest) {
                Ok(a) => a,
                Err(e) => usage_error(&e),
            };
            let output = match sim_cli::run_sim_run(&args) {
                Ok(o) => o,
                Err(e) => fail(&e),
            };
            let dir = std::path::Path::new(&args.out_dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail(&format!("cannot create '{}': {e}", dir.display()));
            }
            for (name, contents) in [
                ("trace.jsonl", &output.trace),
                ("requests.jsonl", &output.requests),
                ("rollup.json", &output.rollup_json),
            ] {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, contents) {
                    fail(&format!("cannot write '{}': {e}", path.display()));
                }
            }
            print!("{}", output.human);
            println!(
                "recorded: {}/{{trace.jsonl,requests.jsonl,rollup.json}}",
                args.out_dir
            );
        }
        "report" => {
            let args = match sim_cli::parse_sim_report_args(rest) {
                Ok(a) => a,
                Err(e) => usage_error(&e),
            };
            let (human, rollup_json) = match sim_cli::run_sim_report(&args) {
                Ok(r) => r,
                Err(e) => fail(&e),
            };
            print!("{human}");
            if let Err(e) = std::fs::write(&args.out, format!("{rollup_json}\n")) {
                fail(&format!("cannot write '{}': {e}", args.out));
            }
            println!("wrote {}", args.out);
        }
        other => usage_error(&format!("unknown sim subcommand '{other}' (run | report)")),
    }
}

/// The original stats/groups/select path.
fn run_classic(argv: &[String]) {
    let args = match podium::cli::parse_args(argv) {
        Ok(a) => a,
        Err(e) => usage_error(&e),
    };
    let profiles = read_file(&args.profiles);
    let config = args.config.as_deref().map(read_file);
    match podium::cli::run(&args, &profiles, config.as_deref()) {
        Ok(out) => print!("{out}"),
        Err(e) => fail(&e),
    }
}

fn run_serve(argv: &[String]) {
    let args = match service_cli::parse_serve_args(argv) {
        Ok(a) => a,
        Err(e) => usage_error(&e),
    };
    let profiles = read_file(&args.profiles);
    let (service, recovery) = match service_cli::build_service(&profiles, &args) {
        Ok(s) => s,
        Err(e) => fail(&e),
    };
    if let Some(report) = &recovery {
        eprintln!("podium-cli: {}", service_cli::describe_recovery(report));
    }
    if let Some(addr) = &args.tcp {
        // TCP serving: the listener runs on background threads, so this
        // thread just parks; the process is stopped by signal.
        let server =
            match podium::service::tcp::TcpServer::bind(Arc::new(service), addr, args.tcp_config) {
                Ok(s) => s,
                Err(e) => fail(&format!("cannot bind tcp {addr}: {e}")),
            };
        // The actual bound address matters when ':0' asked for an
        // ephemeral port; print it so clients (and tests) can connect.
        eprintln!("podium-cli: serving on tcp {}", server.local_addr());
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let result = match &args.socket {
        Some(path) => {
            eprintln!("podium-cli: serving on unix socket {path}");
            podium::service::server::serve_unix(Arc::new(service), std::path::Path::new(path))
        }
        None => podium::service::server::serve_stdio(&service),
    };
    if let Err(e) = result {
        fail(&format!("serve failed: {e}"));
    }
}

fn run_bench_serve(argv: &[String]) {
    let args = match service_cli::parse_bench_serve_args(argv) {
        Ok(a) => a,
        Err(e) => usage_error(&e),
    };
    let (human, row) = service_cli::run_bench_serve(&args);
    print!("{human}");
    let path = std::path::Path::new(&args.out);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail(&format!("cannot create '{}': {e}", dir.display()));
        }
    }
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{row}"));
    match appended {
        Ok(()) => println!("recorded: {}", args.out),
        Err(e) => fail(&format!("cannot write '{}': {e}", args.out)),
    }
}

fn run_quarantine(argv: &[String]) {
    let cmd = match service_cli::parse_quarantine_args(argv) {
        Ok(c) => c,
        Err(e) => usage_error(&e),
    };
    match cmd {
        QuarantineCmd::Scan {
            input,
            format,
            report_out,
        } => {
            let document = read_file(&input);
            match service_cli::quarantine_scan(&document, format) {
                Ok((human, report_json)) => {
                    print!("{human}");
                    if let Some(out) = report_out {
                        if let Err(e) = std::fs::write(&out, report_json + "\n") {
                            fail(&format!("cannot write '{out}': {e}"));
                        }
                        println!("report written: {out}");
                    }
                }
                Err(e) => fail(&e),
            }
        }
        QuarantineCmd::Inspect { report } => {
            let report_json = read_file(&report);
            match service_cli::quarantine_inspect(&report_json) {
                Ok(human) => print!("{human}"),
                Err(e) => fail(&e),
            }
        }
        QuarantineCmd::Replay {
            report,
            input,
            max_attempts,
            backoff_base_ms,
            backoff_cap_ms,
            mut seed,
        } => {
            let report_json = read_file(&report);
            // The document is re-read before every attempt: the point of
            // retrying is that someone (or something) is editing it.
            for attempt in 1..=max_attempts {
                let document = read_file(&input);
                match service_cli::quarantine_replay(&report_json, &document) {
                    Ok((human, clean)) => {
                        print!("{human}");
                        if clean {
                            return;
                        }
                        if attempt == max_attempts {
                            std::process::exit(1);
                        }
                        let sleep_ms = service_cli::compute_backoff_ms(
                            backoff_base_ms,
                            backoff_cap_ms,
                            attempt,
                            &mut seed,
                        );
                        eprintln!(
                            "podium-cli: replay attempt {attempt}/{max_attempts} not clean; \
                             retrying in {sleep_ms} ms"
                        );
                        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                    }
                    Err(e) => fail(&e),
                }
            }
        }
    }
}

fn read_file(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("cannot read '{path}': {e}")),
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n");
    eprint!(
        "{}\n{}",
        podium::cli::USAGE,
        podium::service_cli::SERVICE_USAGE
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}
