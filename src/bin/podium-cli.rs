//! `podium-cli` — diverse user selection over JSON profile files.
//!
//! See `podium::cli::USAGE` or run with `--help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        eprint!("{}", podium::cli::USAGE);
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    let args = match podium::cli::parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", podium::cli::USAGE);
            std::process::exit(2);
        }
    };
    let profiles = match std::fs::read_to_string(&args.profiles) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot read '{}': {e}", args.profiles);
            std::process::exit(1);
        }
    };
    let config = match args.config.as_deref() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: cannot read '{path}': {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };
    match podium::cli::run(&args, &profiles, config.as_deref()) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
