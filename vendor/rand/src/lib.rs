//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.10 API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ under the hood, seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] extension trait
//! (`random::<T>()`, `random_range(..)`), and [`seq::index::sample`].
//!
//! The generator is deterministic and identical across platforms; it is
//! **not** the same stream as upstream `StdRng` (ChaCha12), which is fine —
//! the workspace only relies on seeded determinism, never on a specific
//! upstream stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`RngExt::random`].
pub trait Random {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges drawable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform draw in `[0, n)` via Lemire-style
/// widening-multiply with rejection on the short band.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n || n.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + f64::random(rng) * (end - start)
    }
}

/// Extension methods on any [`RngCore`] (the rand 0.10 `Rng`/`RngExt` surface
/// the workspace uses).
pub trait RngExt: RngCore {
    /// A uniform value over the type's full domain (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in the given range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for call sites written against the classic `Rng` name.
pub use self::RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    pub mod index {
        //! Index sampling without replacement.

        use crate::{RngCore, RngExt};

        /// The result of [`sample`]: distinct indices in selection order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Consumes into the underlying vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates shuffle (selection order preserved).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..100 {
            let v = a.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = a.random_range(0..=5u32);
            assert!(w <= 5);
        }
    }

    #[test]
    fn sample_is_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let picks = sample(&mut rng, 50, 20);
        let mut seen: Vec<usize> = picks.into_iter().collect();
        assert_eq!(seen.len(), 20);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20);
        assert!(seen.iter().all(|&i| i < 50));
    }
}
