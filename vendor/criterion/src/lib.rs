//! Offline stand-in for the `criterion` crate.
//!
//! Measures real wall-clock time with `std::time::Instant` and reports both
//! a human-readable summary on stdout and machine-readable JSON lines, so
//! per-PR performance trajectories stay comparable. Results append to
//! `$PODIUM_BENCH_OUT` if set, otherwise to
//! `<target>/podium-bench/results.jsonl` next to the bench executable.
//!
//! The measurement protocol is simpler than upstream criterion (no outlier
//! rejection or bootstrap): per benchmark it warms up briefly, then records
//! `sample_size` samples (time-capped), each sample timing a small batch of
//! iterations, and reports the mean and minimum per-iteration time.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export for call sites using `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver (stub of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
    }

    /// Runs one parameterized benchmark; the input is passed through to the
    /// closure (matching criterion's signature — the parameter is already
    /// captured in the `BenchmarkId`).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally carrying a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id parameterized only by a value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to benchmark closures; records timing for the measured routine.
pub struct Bencher {
    /// Per-sample mean nanoseconds per iteration.
    samples_ns: Vec<f64>,
    target_samples: usize,
}

/// Per-sample iteration count: keep batches short so a full run stays fast
/// while amortizing the `Instant` overhead for sub-microsecond routines.
fn batch_iters(estimate_ns: f64) -> u32 {
    if estimate_ns <= 0.0 {
        return 10;
    }
    // Aim for ~2ms per sample, capped.
    ((2_000_000.0 / estimate_ns).ceil() as u64).clamp(1, 10_000) as u32
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & batch-size estimate from one untimed call.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().as_secs_f64() * 1e9;
        let iters = batch_iters(estimate);
        let budget = Duration::from_millis(300);
        let run_start = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
            self.samples_ns.push(ns);
            if run_start.elapsed() > budget && self.samples_ns.len() >= 2 {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let estimate = start.elapsed().as_secs_f64() * 1e9;
        let iters = batch_iters(estimate);
        let budget = Duration::from_millis(300);
        let run_start = Instant::now();
        for _ in 0..self.target_samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
            self.samples_ns.push(ns);
            if run_start.elapsed() > budget && self.samples_ns.len() >= 2 {
                break;
            }
        }
    }
}

fn results_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("PODIUM_BENCH_OUT") {
        return p.into();
    }
    // Walk up from the bench executable to the `target` dir.
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().map(|n| n == "target").unwrap_or(false) {
                return anc.join("podium-bench").join("results.jsonl");
            }
        }
    }
    "podium-bench-results.jsonl".into()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_benchmark<F>(group: Option<&str>, id: &BenchmarkId, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        target_samples: samples,
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        return;
    }
    let n = bencher.samples_ns.len() as f64;
    let mean = bencher.samples_ns.iter().sum::<f64>() / n;
    let min = bencher
        .samples_ns
        .iter()
        .fold(f64::INFINITY, |a, &b| a.min(b));

    let full_name = match group {
        Some(g) => format!("{g}/{}", id.label()),
        None => id.label(),
    };
    println!(
        "bench {full_name:<48} mean {:>12}   min {:>12}   ({} samples)",
        format_ns(mean),
        format_ns(min),
        bencher.samples_ns.len()
    );

    let path = results_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"samples\":{}}}\n",
        json_escape(group.unwrap_or("")),
        json_escape(&id.label()),
        bencher.samples_ns.len()
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

/// Defines a benchmark-group entry point (stub of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
