//! Derive macros for the offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` without syn
//! or quote: the input item is tokenized with `proc_macro` alone, a small
//! recursive parser extracts the shape (struct fields / enum variants plus
//! the `#[serde(...)]` attributes the workspace uses), and the impl is
//! emitted as a formatted string parsed back into a `TokenStream`.
//!
//! Supported attributes: `#[serde(transparent)]` (container),
//! `#[serde(skip)]`, `#[serde(default)]`, `#[serde(default = "path")]`
//! (fields). Enums use the externally-tagged JSON representation, matching
//! real serde's default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<FieldAttrs>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Generic parameter list with bounds kept, defaults stripped: `<'a, T: Clone>`.
    impl_generics: String,
    /// Generic argument list (names only): `<'a, T>`.
    ty_generics: String,
    /// Names of the type parameters (for added trait bounds).
    type_params: Vec<String>,
    transparent: bool,
    shape: Shape,
}

// ---------------------------------------------------------------- parsing

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Parses the tokens inside a `#[serde(...)]` attribute group into the
/// container/field flags we understand; unknown entries are ignored.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs, transparent: &mut bool) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // The attribute body is `serde ( ... )`.
    if inner.len() != 2 || !is_ident(&inner[0], "serde") {
        return;
    }
    let TokenTree::Group(args) = &inner[1] else {
        return;
    };
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            match id.to_string().as_str() {
                "transparent" => *transparent = true,
                "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                "default" => {
                    if i + 2 < toks.len() && is_punct(&toks[i + 1], '=') {
                        if let TokenTree::Literal(lit) = &toks[i + 2] {
                            let s = lit.to_string();
                            attrs.default = Some(Some(s.trim_matches('"').to_owned()));
                            i += 2;
                        }
                    } else {
                        attrs.default = Some(None);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Consumes any leading `#[...]` attributes starting at `*i`, folding serde
/// attributes into `attrs` / `transparent`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize, attrs: &mut FieldAttrs, transparent: &mut bool) {
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        if let TokenTree::Group(g) = &toks[*i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                parse_serde_attr(g, attrs, transparent);
                *i += 2;
                continue;
            }
        }
        break;
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Splits a generic parameter list (tokens between the outer `<` `>`) on
/// top-level commas.
fn split_generic_params(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for tt in toks {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            out.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in toks {
        out.push_str(&t.to_string());
        // No space after a lifetime quote, or `' a` would fail to re-lex.
        if !is_punct(t, '\'') {
            out.push(' ');
        }
    }
    out.trim_end().to_owned()
}

/// Parses the generics that follow the type name. Returns
/// `(impl_generics, ty_generics, type_param_names)` and advances `*i` past
/// the closing `>`.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> (String, String, Vec<String>) {
    if *i >= toks.len() || !is_punct(&toks[*i], '<') {
        return (String::new(), String::new(), Vec::new());
    }
    *i += 1; // past '<'
    let mut depth = 1i32;
    let mut inner = Vec::new();
    while *i < toks.len() {
        if is_punct(&toks[*i], '<') {
            depth += 1;
        } else if is_punct(&toks[*i], '>') {
            depth -= 1;
            if depth == 0 {
                *i += 1;
                break;
            }
        }
        inner.push(toks[*i].clone());
        *i += 1;
    }
    let mut impl_parts = Vec::new();
    let mut ty_parts = Vec::new();
    let mut type_params = Vec::new();
    for param in split_generic_params(&inner) {
        // Strip a trailing `= default` at top level.
        let mut cut = param.len();
        let mut depth = 0i32;
        for (j, tt) in param.iter().enumerate() {
            if is_punct(tt, '<') {
                depth += 1;
            } else if is_punct(tt, '>') {
                depth -= 1;
            } else if is_punct(tt, '=') && depth == 0 {
                cut = j;
                break;
            }
        }
        let no_default = &param[..cut];
        impl_parts.push(tokens_to_string(no_default));
        if no_default
            .first()
            .map(|t| is_punct(t, '\''))
            .unwrap_or(false)
        {
            // Lifetime: `'a` (possibly with bounds; name is the ident after `'`).
            let name = format!("'{}", no_default[1]);
            ty_parts.push(name);
        } else if let Some(TokenTree::Ident(id)) = no_default.first() {
            let name = id.to_string();
            if name != "const" {
                type_params.push(name.clone());
                ty_parts.push(name);
            } else if let Some(TokenTree::Ident(cn)) = no_default.get(1) {
                ty_parts.push(cn.to_string());
            }
        }
    }
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
        type_params,
    )
}

/// Parses `name: Type, ...` named fields from a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut ignored = false;
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&toks, &mut i, &mut attrs, &mut ignored);
        skip_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1; // past name
        i += 1; // past ':'
                // Skip the type: everything up to a top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Parses tuple-struct / tuple-variant fields from a paren group, returning
/// per-field attributes in order.
fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<FieldAttrs> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut ignored = false;
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&toks, &mut i, &mut attrs, &mut ignored);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        // Skip the type up to a top-level comma.
        let mut depth = 0i32;
        let mut saw_any = false;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            saw_any = true;
            i += 1;
        }
        if saw_any {
            out.push(attrs);
        }
    }
    out
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    let mut ignored_attrs = FieldAttrs::default();
    let mut ignored = false;
    while i < toks.len() {
        skip_attrs(&toks, &mut i, &mut ignored_attrs, &mut ignored);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(parse_tuple_fields(g).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g).into_iter().map(|f| f.name).collect())
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container_attrs = FieldAttrs::default();
    let mut transparent = false;
    skip_attrs(&toks, &mut i, &mut container_attrs, &mut transparent);
    skip_vis(&toks, &mut i);
    let is_enum = is_ident(&toks[i], "enum");
    i += 1; // past `struct` / `enum`
    let name = toks[i].to_string();
    i += 1;
    let (impl_generics, ty_generics, type_params) = parse_generics(&toks, &mut i);
    // Skip an optional `where` clause (none in this workspace, but cheap).
    while i < toks.len() {
        if let TokenTree::Group(_) = &toks[i] {
            break;
        }
        if is_punct(&toks[i], ';') {
            break;
        }
        i += 1;
    }
    let shape = if is_enum {
        let TokenTree::Group(g) = &toks[i] else {
            panic!("enum body expected");
        };
        Shape::Enum(parse_variants(g))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(parse_tuple_fields(g))
            }
            _ => Shape::UnitStruct,
        }
    };
    Input {
        name,
        impl_generics,
        ty_generics,
        type_params,
        transparent,
        shape,
    }
}

// ---------------------------------------------------------------- codegen

fn where_clause(input: &Input, bound: &str) -> String {
    if input.type_params.is_empty() {
        String::new()
    } else {
        let bounds: Vec<String> = input
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect();
        format!("where {}", bounds.join(", "))
    }
}

fn default_expr(attrs: &FieldAttrs) -> String {
    match &attrs.default {
        Some(Some(path)) => format!("{path}()"),
        _ => "::std::default::Default::default()".to_owned(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let ig = &input.impl_generics;
    let tg = &input.ty_generics;
    let wc = where_clause(&input, "::serde::Serialize");
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .expect("transparent struct needs a field");
                format!("::serde::Serialize::to_json_value(&self.{})", f.name)
            } else {
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.attrs.skip) {
                    pushes.push_str(&format!(
                        "pairs.push((\"{0}\".to_string(), ::serde::Serialize::to_json_value(&self.{0})));\n",
                        f.name
                    ));
                }
                format!(
                    "let mut pairs: Vec<(String, ::serde::value::Value)> = Vec::new();\n{pushes}::serde::value::Value::Object(pairs)"
                )
            }
        }
        Shape::TupleStruct(fields) => {
            if fields.len() == 1 {
                "::serde::Serialize::to_json_value(&self.0)".to_owned()
            } else {
                let items: Vec<String> = (0..fields.len())
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(f0) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json_value(f0))]),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({bl}) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Array(vec![{il}]))]),\n",
                            bl = binds.join(", "),
                            il = items.join(", ")
                        ));
                    }
                    VariantShape::Struct(field_names) => {
                        let binds = field_names.join(", ");
                        let items: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Object(vec![{il}]))]),\n",
                            il = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {wc} {{\n\
         fn to_json_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let ig = &input.impl_generics;
    let tg = &input.ty_generics;
    let wc = where_clause(&input, "::serde::Deserialize");
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .expect("transparent struct needs a field");
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_json_value(v)? }})",
                    f.name
                )
            } else {
                let mut inits = String::new();
                for f in fields {
                    let fname = &f.name;
                    if f.attrs.skip {
                        inits.push_str(&format!("{fname}: {},\n", default_expr(&f.attrs)));
                    } else if f.attrs.default.is_some() {
                        inits.push_str(&format!(
                            "{fname}: match v.get(\"{fname}\") {{ Some(x) if !x.is_null() => ::serde::Deserialize::from_json_value(x)?, _ => {} }},\n",
                            default_expr(&f.attrs)
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{fname}: ::serde::Deserialize::from_json_value(v.get(\"{fname}\").ok_or_else(|| ::serde::DeError::missing_field(\"{fname}\"))?)?,\n"
                        ));
                    }
                }
                format!(
                    "if !v.is_object() {{ return Err(::serde::DeError::expected(\"object\", v)); }}\n\
                     Ok({name} {{\n{inits}}})"
                )
            }
        }
        Shape::TupleStruct(fields) => {
            if fields.len() == 1 {
                format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
            } else {
                let items: Vec<String> = (0..fields.len())
                    .map(|i| format!(
                        "::serde::Deserialize::from_json_value(arr.get({i}).ok_or_else(|| ::serde::DeError(\"tuple struct too short\".to_string()))?)?"
                    ))
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            }
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json_value(inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!(
                                "::serde::Deserialize::from_json_value(arr.get({i}).ok_or_else(|| ::serde::DeError(\"variant tuple too short\".to_string()))?)?"
                            ))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let arr = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", inner))?; Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| format!(
                                "{f}: ::serde::Deserialize::from_json_value(inner.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{f}\"))?)?"
                            ))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::value::Value::String(s) => match s.as_str() {{\n{unit_arms}other => Err(::serde::DeError::unknown_variant(other)),\n}},\n\
                 ::serde::value::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{tagged_arms}other => Err(::serde::DeError::unknown_variant(other)),\n}}\n\
                 }},\n\
                 other => Err(::serde::DeError::expected(\"enum\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {wc} {{\n\
         fn from_json_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("derive(Deserialize): generated code failed to parse")
}
