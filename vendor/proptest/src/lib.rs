//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use, driven by a deterministic per-case RNG. No shrinking: a
//! failing case panics with its case number and message, and re-running
//! reproduces it exactly (the RNG stream depends only on the case number).

pub mod test_runner {
    //! Test-case execution: configuration, RNG, and failure type.

    /// Subset of proptest's `Config` used by the workspace.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property check (produced by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator: splitmix64 stream keyed by the case number.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for one test case.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x51A7_BADD_ECAF_C0DE,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample below 0");
            // Widening multiply; the bias for the n's used in tests
            // (tiny ranges vs 2^64) is negligible and determinism is all
            // that matters here.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let seed = self.inner.generate(rng);
            (self.f)(seed).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.next_u64() as usize)
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size specifications: exact, `a..b`, or `a..=b`.
    pub trait SizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    fn pick_len(rng: &mut TestRng, min: usize, max: usize) -> usize {
        if max <= min {
            min
        } else {
            min + rng.below((max - min + 1) as u64) as usize
        }
    }

    /// Strategy for vectors of `element` values with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(rng, self.min, self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets of `element` values with a size in `size`.
    /// If the element domain is too small for the drawn size, the set
    /// saturates at the achievable size (but never below one element when
    /// the minimum is positive and the domain is non-empty).
    pub fn btree_set<S>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, self.min, self.max);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            let budget = 50 + target * 20;
            while out.len() < target && attempts < budget {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time and `Some` of the
    /// inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An abstract index resolvable against any collection length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Wraps a raw value.
        pub fn new(raw: usize) -> Self {
            Index(raw)
        }

        /// Resolves against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines `#[test]` functions that run a body over random strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..(__config.cases as u64) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case #{} failed: {}", __case, e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0.0f64..=1.0, s in any::<u64>()) {
            let _ = s;
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..5, 2..6),
            set in prop::collection::btree_set(0u32..100, 1..=4),
            opt in prop::option::of(1usize..3),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!set.is_empty() && set.len() <= 4);
            if let Some(x) = opt {
                prop_assert!((1..3).contains(&x));
            }
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn flat_map_dependency_holds(
            (n, v) in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..10, n))),
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }
}
