//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `from_str`, `to_string`, `to_string_pretty`, `to_value`,
//! `from_value`, and the [`Value`] type (re-exported from the `serde` stub's
//! shared data model). Floats print with `{:?}` — Rust's shortest
//! round-trip formatting — so the `float_roundtrip` feature's behavior holds
//! by construction.

pub use serde::value::{Number, Value};
use serde::{DeError, Deserialize, Serialize};

/// A JSON parse or conversion error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn new(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }

    /// Line number (1-based) where the error occurred, 0 for semantic errors.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Column number (1-based) where the error occurred, 0 for semantic errors.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0, 0, 0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(msg, line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate; expect a low surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let c =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // parse_hex4 already advanced past the digits;
                            // compensate for the += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let num = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            Number::NegInt(
                -stripped
                    .parse::<i64>()
                    .map_err(|_| self.err("integer out of range"))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| self.err("integer out of range"))?,
            )
        };
        Ok(Value::Number(num))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_json_value(&value)?)
}

/// Parses a JSON document from bytes into any `Deserialize` type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|_| Error::new("stream did not contain valid UTF-8", 0, 0))?;
    from_str(s)
}

/// Converts a `Serialize` value to the in-memory JSON model.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Reconstructs a typed value from the in-memory JSON model.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_json_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: Number) -> String {
    match n {
        Number::PosInt(v) => v.to_string(),
        Number::NegInt(v) => v.to_string(),
        Number::Float(f) if f.is_finite() => format!("{f:?}"),
        Number::Float(_) => "null".to_owned(),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_i64(), Some(-3));
        assert_eq!(v["b"].as_str(), Some("x\ny"));
        assert!(v["c"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip() {
        let v = Value::Number(Number::Float(0.1 + 0.2));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn error_carries_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.line() >= 1);
    }
}
