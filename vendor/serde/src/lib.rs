//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serde-compatible facade: the same `Serialize` / `Deserialize`
//! trait names and derive macros, backed by a single in-memory JSON value
//! model ([`value::Value`]) instead of serde's visitor architecture. The
//! sibling `serde_json` stub parses/prints that model, so every call site in
//! the workspace (`#[derive(Serialize, Deserialize)]`, `serde_json::to_string*`,
//! `serde_json::from_str`, `serde_json::Value`) works unchanged.
//!
//! Supported derive attributes (the only ones the workspace uses):
//! `#[serde(transparent)]`, `#[serde(skip)]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The JSON data model shared by the `serde` and `serde_json` stubs.

    /// A parsed/buildable JSON value (re-exported as `serde_json::Value`).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// JSON number.
        Number(Number),
        /// JSON string.
        String(String),
        /// JSON array.
        Array(Vec<Value>),
        /// JSON object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    /// A JSON number, keeping the integer/float distinction for faithful
    /// round-trips.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Non-negative integer.
        PosInt(u64),
        /// Negative integer.
        NegInt(i64),
        /// Floating-point number.
        Float(f64),
    }

    impl Number {
        /// The number as an `f64` (lossy for very large integers).
        pub fn as_f64(self) -> f64 {
            match self {
                Number::PosInt(n) => n as f64,
                Number::NegInt(n) => n as f64,
                Number::Float(f) => f,
            }
        }

        /// The number as a `u64`, if it is a non-negative integer.
        pub fn as_u64(self) -> Option<u64> {
            match self {
                Number::PosInt(n) => Some(n),
                Number::NegInt(_) => None,
                Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                    Some(f as u64)
                }
                Number::Float(_) => None,
            }
        }

        /// The number as an `i64`, if it fits.
        pub fn as_i64(self) -> Option<i64> {
            match self {
                Number::PosInt(n) => i64::try_from(n).ok(),
                Number::NegInt(n) => Some(n),
                Number::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => {
                    Some(f as i64)
                }
                Number::Float(_) => None,
            }
        }
    }

    static NULL: Value = Value::Null;

    impl Value {
        /// Member lookup on objects; `None` for other value kinds.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The value as object key/value pairs, if it is an object.
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// The value as a string slice, if it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an `f64`, if it is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(n.as_f64()),
                _ => None,
            }
        }

        /// The value as a `u64`, if it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) => n.as_u64(),
                _ => None,
            }
        }

        /// The value as an `i64`, if it is an integer.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Number(n) => n.as_i64(),
                _ => None,
            }
        }

        /// The value as a boolean, if it is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Whether the value is `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        /// Whether the value is an array.
        pub fn is_array(&self) -> bool {
            matches!(self, Value::Array(_))
        }

        /// Whether the value is an object.
        pub fn is_object(&self) -> bool {
            matches!(self, Value::Object(_))
        }

        /// Whether the value is a string.
        pub fn is_string(&self) -> bool {
            matches!(self, Value::String(_))
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, idx: usize) -> &Value {
            match self {
                Value::Array(a) => a.get(idx).unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }
}

use value::{Number, Value};

/// A value that can be converted into the JSON data model.
pub trait Serialize {
    /// Builds the JSON value representing `self`.
    fn to_json_value(&self) -> Value;
}

/// A value that can be reconstructed from the JSON data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X" error mentioning the offending value kind.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }

    /// An "unknown variant" error.
    pub fn unknown_variant(name: &str) -> Self {
        DeError(format!("unknown variant `{name}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("unsigned integer", v))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("integer", v))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected("number", v))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("boolean", v))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_json_value(x)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_json_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_json_value(x)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let mut it = arr.iter();
                Ok(($(
                    $name::from_json_value(
                        it.next().ok_or_else(|| DeError(format!(
                            "tuple needs more than {} elements", arr.len()
                        )))?,
                    )?,
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_json_value(&42u32.to_json_value()).unwrap(), 42);
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<f64>::from_json_value(&Value::Null).unwrap(),
            None::<f64>
        );
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(v["missing"].is_null());
        assert_eq!(v["a"].as_bool(), Some(true));
    }
}
