//! The paper's running example: the user profiles of Table 2.
//!
//! Five users (Alice, Bob, Carol, David, Eve) over six properties. With the
//! paper's bucket edges (`[0, 0.4), [0.4, 0.65), [0.65, 1]`), LBS weights
//! and Single coverage, the diverse subset of size 2 is `{Alice, Eve}` with
//! total score 17; with Iden weights it is `{Alice, Bob}` with score 11
//! (Example 3.8).

use podium_core::profile::UserRepository;

/// Builds the Table 2 repository.
pub fn table2() -> UserRepository {
    let mut repo = UserRepository::new();
    for name in ["Alice", "Bob", "Carol", "David", "Eve"] {
        repo.add_user(name);
    }
    let entries: &[(&str, &str, f64)] = &[
        ("Alice", "livesIn Tokyo", 1.0),
        ("Bob", "livesIn NYC", 1.0),
        ("Carol", "livesIn Bali", 1.0),
        ("David", "livesIn Tokyo", 1.0),
        ("Eve", "livesIn Paris", 1.0),
        ("Alice", "ageGroup 50-64", 1.0),
        ("Carol", "ageGroup 50-64", 1.0),
        ("Alice", "avgRating Mexican", 0.95),
        ("Bob", "avgRating Mexican", 0.3),
        ("David", "avgRating Mexican", 0.75),
        ("Eve", "avgRating Mexican", 0.8),
        ("Alice", "visitFreq Mexican", 0.8),
        ("Bob", "visitFreq Mexican", 0.25),
        ("David", "visitFreq Mexican", 0.6),
        ("Eve", "visitFreq Mexican", 0.45),
        ("Alice", "avgRating CheapEats", 0.1),
        ("Bob", "avgRating CheapEats", 0.9),
        ("Carol", "avgRating CheapEats", 0.45),
        ("Eve", "avgRating CheapEats", 0.6),
        ("Alice", "visitFreq CheapEats", 0.6),
        ("Bob", "visitFreq CheapEats", 0.85),
        ("Carol", "visitFreq CheapEats", 0.2),
        ("Eve", "visitFreq CheapEats", 0.3),
    ];
    for &(user, prop, score) in entries {
        let u = repo.user_by_name(user).expect("user added above");
        let p = repo.intern_property(prop);
        repo.set_score(u, p, score).expect("scores are in range");
    }
    repo
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::prelude::*;

    #[test]
    fn shape_matches_table2() {
        let repo = table2();
        assert_eq!(repo.user_count(), 5);
        assert_eq!(repo.property_count(), 9); // 4 cities + age + 4 aggregates
        let carol = repo.user_by_name("Carol").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        assert_eq!(repo.score(carol, mex), None, "Carol never rated Mexican");
    }

    #[test]
    fn example_38_end_to_end() {
        let repo = table2();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        assert_eq!(groups.len(), 16, "Table 2 superscripts define 16 groups");
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2);
        let names: Vec<&str> = sel
            .users
            .iter()
            .map(|&u| repo.user_name(u).unwrap())
            .collect();
        assert_eq!(names, vec!["Alice", "Eve"]);
        assert_eq!(sel.score, 17.0);
    }
}
