//! # podium-data
//!
//! Dataset substrate for the Podium reproduction.
//!
//! The paper (§8.1) evaluates on two real user repositories — a TripAdvisor
//! restaurant-review crawl and the Yelp Open Dataset — neither of which is
//! redistributable here. This crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`taxonomy`] — a cuisine/location category taxonomy supporting the
//!   generalization rules of §3.1 (e.g. Mexican ⊂ Latin);
//! * [`inference`] — profile inference rules: functional properties
//!   (`livesIn` falsehood inference) and Boolean implications;
//! * [`reviews`] — the ground-truth opinion model: ratings, topics with
//!   sentiment, usefulness votes;
//! * [`mod@derive`] — derivation of the paper's aggregate profile properties
//!   (Average Rating, Visit Frequency, Enthusiasm Level) from raw activity;
//! * [`synth`] — a latent-trait population generator with TripAdvisor-like
//!   and Yelp-like presets;
//! * [`split`] — the §8.2 holdout protocol: profiles for selection vs.
//!   held-out destination reviews for opinion-diversity evaluation;
//! * [`json`] — the JSON profile interchange format of the prototype (§7);
//! * [`csv`] — tabular CSV profile interchange;
//! * [`load`] — the fault-tolerant ingestion vocabulary: Strict/Lenient
//!   [`load::LoadOptions`], structured [`load::DataError`]s with record/line
//!   provenance, and per-load quarantine accounting ([`load::LoadReport`]);
//! * [`fault`] — a deterministic, seeded corruption injector for testing
//!   loader robustness;
//! * [`config`] — named diversification configurations (§7's
//!   administrator-curated presets);
//! * [`table2`] — the paper's running example repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `DataError` carries full provenance (source, record, line, name) by value.
// It only travels on cold failure paths, where locating the defect beats
// saving bytes; boxing would add an allocation to every construction site.
#![allow(clippy::result_large_err)]

pub mod config;
pub mod csv;
pub mod derive;
pub mod fault;
pub mod inference;
pub mod json;
pub mod load;
pub mod report;
pub mod reviews;
pub mod split;
pub mod synth;
pub mod table2;
pub mod taxonomy;

/// Commonly used items.
pub mod prelude {
    pub use crate::config::{ResolvedConfig, SelectionConfig};
    pub use crate::csv::{profiles_from_csv, profiles_from_csv_opts, profiles_to_csv};
    pub use crate::derive::{DeriveOptions, PropertyKinds};
    pub use crate::fault::{FaultInjector, FaultKind, StructuredFault};
    pub use crate::inference::{rules_from_json, InferenceEngine, Rule};
    pub use crate::json::{profiles_from_json, profiles_from_json_opts, profiles_to_json};
    pub use crate::load::{
        DataError, DataErrorKind, LoadOptions, LoadReport, Provenance, QuarantinedRecord,
    };
    pub use crate::report::{
        load_report, replay, save_report, ReplayFormat, ReplayOutcome, SavedReport,
    };
    pub use crate::reviews::{
        Destination, DestinationId, Review, ReviewCorpus, Sentiment, TopicId,
    };
    pub use crate::split::{holdout_split, HoldoutSplit};
    pub use crate::synth::{tripadvisor, yelp, SynthConfig, SynthDataset};
    pub use crate::table2::table2;
    pub use crate::taxonomy::{taxonomy_from_json, CategoryId, Taxonomy};
}
