//! Named diversification configurations (§7).
//!
//! "Podium also allows an administrator to feed in an *initial set of
//! diversification configurations* with associated textual descriptions" —
//! e.g. the UI's *Summer Pavilion* configuration, "which only considers
//! properties related to a restaurant in that name". A configuration names
//! a property scope, the weight/coverage schemes, a default budget, and
//! initial customization feedback, all in JSON so administrators can
//! curate them without code.

use podium_core::bucket::{BucketingConfig, PropertyBuckets};
use podium_core::customize::Feedback;
use podium_core::group::GroupSet;
use podium_core::ids::PropertyId;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};
use serde::{Deserialize, Serialize};

/// A named, administrator-curated diversification configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Display title (e.g. `"Summer Pavilion"`).
    pub title: String,
    /// Human-readable description shown to clients.
    #[serde(default)]
    pub description: String,
    /// Property scope: only properties whose label starts with one of these
    /// prefixes form groups. Empty = all properties.
    #[serde(default)]
    pub include_properties: Vec<String>,
    /// Weight scheme name: `"lbs"` (default) or `"iden"`.
    #[serde(default = "default_weights")]
    pub weights: String,
    /// Coverage scheme name: `"single"` (default) or `"prop"`.
    #[serde(default = "default_cov")]
    pub cov: String,
    /// Default selection budget.
    #[serde(default = "default_budget")]
    pub budget: usize,
    /// Property labels whose groups are "must have" (any bucket qualifies).
    #[serde(default)]
    pub must_have: Vec<String>,
    /// Property labels whose groups are "must not".
    #[serde(default)]
    pub must_not: Vec<String>,
    /// Property labels whose groups get "priority coverage".
    #[serde(default)]
    pub priority: Vec<String>,
}

fn default_weights() -> String {
    "lbs".into()
}
fn default_cov() -> String {
    "single".into()
}
fn default_budget() -> usize {
    8
}

/// A configuration resolved against a concrete repository: scoped groups
/// plus the schemes/feedback ready for selection.
#[derive(Debug, Clone)]
pub struct ResolvedConfig {
    /// The source configuration.
    pub config: SelectionConfig,
    /// Groups over the configured property scope.
    pub groups: GroupSet,
    /// Parsed weight scheme.
    pub weights: WeightScheme,
    /// Parsed coverage scheme.
    pub cov: CovScheme,
    /// Resolved customization feedback.
    pub feedback: Feedback,
}

impl SelectionConfig {
    /// Parses a configuration from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad configuration: {e}"))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Resolves the configuration against a repository: scopes the group
    /// construction to the included properties and resolves feedback
    /// labels to group ids. Unknown feedback labels are errors; unknown
    /// include prefixes simply match nothing.
    pub fn resolve(
        &self,
        repo: &UserRepository,
        buckets: &PropertyBuckets,
    ) -> Result<ResolvedConfig, String> {
        let weights = match self.weights.as_str() {
            "lbs" => WeightScheme::LinearBySize,
            "iden" => WeightScheme::Identical,
            other => return Err(format!("unknown weight scheme '{other}'")),
        };
        let cov = match self.cov.as_str() {
            "single" => CovScheme::Single,
            "prop" => CovScheme::Proportional,
            other => return Err(format!("unknown coverage scheme '{other}'")),
        };
        let include = self.include_properties.clone();
        let scope = move |p: PropertyId, repo: &UserRepository| -> bool {
            if include.is_empty() {
                return true;
            }
            repo.property_label(p)
                .map(|l| include.iter().any(|pre| l.starts_with(pre.as_str())))
                .unwrap_or(false)
        };
        let groups = GroupSet::build_filtered(repo, buckets, &|p| scope(p, repo));

        let resolve_labels = |labels: &[String]| -> Result<Vec<podium_core::ids::GroupId>, String> {
            let mut out = Vec::new();
            for label in labels {
                let p = repo
                    .property_id(label)
                    .ok_or_else(|| format!("unknown property '{label}' in configuration"))?;
                let gs = groups.groups_of_property(p);
                if gs.is_empty() {
                    return Err(format!(
                        "property '{label}' has no groups within the configuration scope"
                    ));
                }
                out.extend(gs);
            }
            Ok(out)
        };
        let feedback = Feedback {
            must_have: resolve_labels(&self.must_have)?,
            must_not: resolve_labels(&self.must_not)?,
            priority: resolve_labels(&self.priority)?,
            standard: None,
        };
        Ok(ResolvedConfig {
            config: self.clone(),
            groups,
            weights,
            cov,
            feedback,
        })
    }
}

/// Convenience: resolve with the default adaptive bucketing.
pub fn resolve_with_default_bucketing(
    config: &SelectionConfig,
    repo: &UserRepository,
) -> Result<ResolvedConfig, String> {
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    config.resolve(repo, &buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::customize::custom_select_weighted;

    const SUMMER_PAVILION: &str = r#"{
        "title": "Summer Pavilion",
        "description": "Opinions about the Summer Pavilion restaurant only",
        "include_properties": ["avgRating Mexican", "visitFreq Mexican"],
        "weights": "lbs",
        "cov": "single",
        "budget": 2,
        "must_have": ["avgRating Mexican"]
    }"#;

    #[test]
    fn parses_with_defaults() {
        let cfg = SelectionConfig::from_json(r#"{ "title": "t" }"#).unwrap();
        assert_eq!(cfg.weights, "lbs");
        assert_eq!(cfg.cov, "single");
        assert_eq!(cfg.budget, 8);
        assert!(cfg.include_properties.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = SelectionConfig::from_json(SUMMER_PAVILION).unwrap();
        let back = SelectionConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn scope_restricts_groups() {
        let repo = crate::table2::table2();
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let cfg = SelectionConfig::from_json(SUMMER_PAVILION).unwrap();
        let resolved = cfg.resolve(&repo, &buckets).unwrap();
        // Only the Mexican-related properties form groups: avgRating (2
        // buckets) + visitFreq (3 buckets) = 5 of the 16 total groups.
        assert_eq!(resolved.groups.len(), 5);
        for (gid, _) in resolved.groups.iter() {
            let label = resolved.groups.label(gid, &repo);
            assert!(label.contains("Mexican"), "out-of-scope group: {label}");
        }
    }

    #[test]
    fn resolved_config_drives_selection() {
        let repo = crate::table2::table2();
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let cfg = SelectionConfig::from_json(SUMMER_PAVILION).unwrap();
        let resolved = cfg.resolve(&repo, &buckets).unwrap();
        let base = resolved.weights.weights(&resolved.groups);
        let covs = resolved.cov.cov(&resolved.groups, cfg.budget);
        let (sel, pool, _) = custom_select_weighted(
            &resolved.groups,
            &base,
            &covs,
            cfg.budget,
            &resolved.feedback,
        )
        .unwrap();
        assert_eq!(pool, 4, "Carol never rated Mexican food");
        assert_eq!(sel.users.len(), 2);
        // Every selected user satisfies the must-have.
        let mex = repo.property_id("avgRating Mexican").unwrap();
        for &u in &sel.users {
            assert!(repo.profile(u).unwrap().contains(mex));
        }
    }

    #[test]
    fn bad_inputs_are_errors() {
        assert!(SelectionConfig::from_json("{}").is_err(), "title required");
        let repo = crate::table2::table2();
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let mut cfg = SelectionConfig::from_json(SUMMER_PAVILION).unwrap();
        cfg.weights = "nope".into();
        assert!(cfg.resolve(&repo, &buckets).is_err());
        let mut cfg = SelectionConfig::from_json(SUMMER_PAVILION).unwrap();
        cfg.must_have = vec!["no such property".into()];
        assert!(cfg.resolve(&repo, &buckets).is_err());
        // Feedback property outside the scope is caught.
        let mut cfg = SelectionConfig::from_json(SUMMER_PAVILION).unwrap();
        cfg.must_have = vec!["livesIn Tokyo".into()];
        let err = cfg.resolve(&repo, &buckets).unwrap_err();
        assert!(err.contains("no groups within"), "{err}");
    }

    #[test]
    fn empty_scope_means_all_properties() {
        let repo = crate::table2::table2();
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let cfg = SelectionConfig::from_json(r#"{ "title": "all" }"#).unwrap();
        let resolved = cfg.resolve(&repo, &buckets).unwrap();
        assert_eq!(resolved.groups.len(), 16);
    }
}
