//! CSV profile interchange: a common tabular format for user repositories.
//!
//! Layout: the header row is `user,<property label>,<property label>,…`;
//! each data row is a user name followed by one score cell per property.
//! Empty cells mean *unknown* (open-world), matching the sparse profile
//! semantics of §3.1. Fields containing commas or quotes are quoted with
//! standard CSV doubling rules. No external CSV crate is needed — the
//! dialect here is deliberately small.

//! ```
//! use podium_data::csv::{profiles_from_csv, profiles_to_csv};
//!
//! let repo = profiles_from_csv("user,avgRating Thai\nAda,0.8\nBen,\n").unwrap();
//! assert_eq!(repo.user_count(), 2);
//! let ada = repo.user_by_name("Ada").unwrap();
//! let thai = repo.property_id("avgRating Thai").unwrap();
//! assert_eq!(repo.score(ada, thai), Some(0.8));
//! let back = profiles_from_csv(&profiles_to_csv(&repo)).unwrap();
//! assert_eq!(back.user_count(), 2);
//! ```

use std::collections::HashSet;

use podium_core::error::CoreError;
use podium_core::profile::UserRepository;

use crate::load::{DataError, DataErrorKind, LoadOptions, LoadReport, Provenance};

/// Errors from CSV profile I/O.
#[derive(Debug)]
pub enum CsvError {
    /// Structural problem (missing header, ragged row, bad quoting).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A score cell failed to parse or was out of range.
    BadScore {
        /// 1-based line number.
        line: usize,
        /// Property column label.
        property: String,
        /// Offending cell contents.
        cell: String,
    },
    /// Semantic error from the repository layer.
    Core(CoreError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Malformed { line, message } => {
                write!(f, "CSV line {line}: {message}")
            }
            CsvError::BadScore {
                line,
                property,
                cell,
            } => write!(f, "CSV line {line}: bad score '{cell}' for '{property}'"),
            CsvError::Core(e) => write!(f, "profile error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<CoreError> for CsvError {
    fn from(e: CoreError) -> Self {
        CsvError::Core(e)
    }
}

/// Splits one CSV record honoring quotes. Returns the fields.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                '"' => {
                    return Err(CsvError::Malformed {
                        line: line_no,
                        message: "stray quote inside unquoted field".into(),
                    })
                }
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Quotes a field if needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parses a repository from CSV text.
pub fn profiles_from_csv(text: &str) -> Result<UserRepository, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines.next().ok_or(CsvError::Malformed {
        line: 1,
        message: "missing header row".into(),
    })?;
    let header = split_record(header, hline + 1)?;
    if header.is_empty() || header[0] != "user" {
        return Err(CsvError::Malformed {
            line: hline + 1,
            message: "header must start with 'user'".into(),
        });
    }
    let mut repo = UserRepository::new();
    let props: Vec<_> = header[1..]
        .iter()
        .map(|label| repo.intern_property(label))
        .collect();
    for (i, line) in lines {
        let line_no = i + 1;
        let fields = split_record(line, line_no)?;
        if fields.len() != header.len() {
            return Err(CsvError::Malformed {
                line: line_no,
                message: format!("expected {} fields, found {}", header.len(), fields.len()),
            });
        }
        let u = repo.add_user(&fields[0]);
        for (cell, &p) in fields[1..].iter().zip(&props) {
            let cell = cell.trim();
            if cell.is_empty() {
                continue; // unknown
            }
            let score: f64 = cell.parse().map_err(|_| CsvError::BadScore {
                line: line_no,
                property: repo.property_label(p).unwrap_or("?").to_owned(),
                cell: cell.to_owned(),
            })?;
            repo.set_score(u, p, score)
                .map_err(|_| CsvError::BadScore {
                    line: line_no,
                    property: repo.property_label(p).unwrap_or("?").to_owned(),
                    cell: cell.to_owned(),
                })?;
        }
    }
    Ok(repo)
}

/// Source tag used in [`Provenance`] entries of this loader.
const SOURCE: &str = "csv profiles";

/// Parses a repository from CSV text with an explicit failure policy and
/// full accounting.
///
/// Row-level defects — bad quoting, ragged arity, unparseable / non-finite
/// / out-of-range scores, and names already used by an earlier row — are
/// fatal under [`LoadOptions::Strict`] (with row and line provenance) and
/// quarantined one entry per row under [`LoadOptions::Lenient`]; the first
/// occurrence of a duplicated name wins. A missing or malformed header is a
/// document-level fault and fails in both modes. Each row is validated in
/// full before any of it is committed, so quarantined rows leave no partial
/// users behind.
pub fn profiles_from_csv_opts(
    text: &str,
    opts: LoadOptions,
) -> Result<(UserRepository, LoadReport), DataError> {
    let malformed = |line: usize, message: String| {
        DataError::new(
            DataErrorKind::Syntax { message },
            Provenance::document(SOURCE).at_line(line),
        )
    };
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines
        .next()
        .ok_or_else(|| malformed(1, "missing header row".into()))?;
    let header = match split_record(header, hline + 1) {
        Ok(h) => h,
        Err(CsvError::Malformed { line, message }) => return Err(malformed(line, message)),
        // podium-lint: allow(unreachable) — split_record's only error constructor is Malformed
        Err(_) => unreachable!("split_record only yields Malformed"),
    };
    if header.is_empty() || header[0] != "user" {
        return Err(malformed(hline + 1, "header must start with 'user'".into()));
    }

    let mut repo = UserRepository::new();
    let props: Vec<_> = header[1..]
        .iter()
        .map(|label| repo.intern_property(label))
        .collect();
    let mut report = LoadReport::default();
    let mut seen: HashSet<String> = HashSet::new();
    for (row, (i, line)) in lines.enumerate() {
        let line_no = i + 1;
        let prov = Provenance::record(SOURCE, row).at_line(line_no);
        // Validate the whole row before touching the repository.
        let outcome: Result<(String, Vec<(usize, f64)>), DataError> = (|| {
            let fields = match split_record(line, line_no) {
                Ok(f) => f,
                Err(CsvError::Malformed { message, .. }) => {
                    return Err(DataError::new(
                        DataErrorKind::Syntax { message },
                        prov.clone(),
                    ))
                }
                // podium-lint: allow(unreachable) — split_record's only error constructor is Malformed
                Err(_) => unreachable!("split_record only yields Malformed"),
            };
            if fields.len() != header.len() {
                return Err(DataError::new(
                    DataErrorKind::Schema {
                        message: format!(
                            "expected {} fields, found {}",
                            header.len(),
                            fields.len()
                        ),
                    },
                    prov.clone(),
                ));
            }
            let name = fields[0].clone();
            if seen.contains(&name) {
                return Err(DataError::new(
                    DataErrorKind::Duplicate { name: name.clone() },
                    prov.clone().named(&name),
                ));
            }
            let mut scores = Vec::new();
            for (col, cell) in fields[1..].iter().enumerate() {
                let cell = cell.trim();
                if cell.is_empty() {
                    continue; // unknown (open world)
                }
                let bad = || {
                    DataError::new(
                        DataErrorKind::BadScore {
                            property: header[col + 1].clone(),
                            value: cell.to_owned(),
                        },
                        prov.clone().named(&name),
                    )
                };
                let score: f64 = cell.parse().map_err(|_| bad())?;
                if !score.is_finite() || !(0.0..=1.0).contains(&score) {
                    return Err(bad());
                }
                scores.push((col, score));
            }
            Ok((name, scores))
        })();
        match outcome {
            Ok((name, scores)) => {
                let u = repo.add_user(&name);
                for (col, score) in scores {
                    repo.set_score(u, props[col], score).map_err(|e| {
                        DataError::new(DataErrorKind::Core(e), prov.clone().named(&name))
                    })?;
                }
                seen.insert(name);
                report.accepted += 1;
            }
            Err(e) if opts.is_lenient() => report.quarantine(e, line),
            Err(e) => return Err(e),
        }
    }
    Ok((repo, report))
}

/// Serializes a repository to CSV text (all interned properties as columns,
/// unknown scores as empty cells).
pub fn profiles_to_csv(repo: &UserRepository) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("user");
    let props: Vec<_> = (0..repo.property_count())
        .map(podium_core::ids::PropertyId::from_index)
        .collect();
    for &p in &props {
        let _ = write!(out, ",{}", quote(repo.property_label(p).unwrap_or("?")));
    }
    out.push('\n');
    for (u, profile) in repo.iter() {
        let _ = write!(out, "{}", quote(repo.user_name(u).unwrap_or("?")));
        for &p in &props {
            match profile.score(p) {
                Some(s) => {
                    let _ = write!(out, ",{s}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
user,livesIn Tokyo,avgRating Mexican
Alice,1.0,0.95
Bob,,0.3
Carol,,
";

    #[test]
    fn parse_sample() {
        let repo = profiles_from_csv(SAMPLE).unwrap();
        assert_eq!(repo.user_count(), 3);
        assert_eq!(repo.property_count(), 2);
        let alice = repo.user_by_name("Alice").unwrap();
        let bob = repo.user_by_name("Bob").unwrap();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        assert_eq!(repo.score(alice, tokyo), Some(1.0));
        assert_eq!(repo.score(bob, tokyo), None, "empty cell = unknown");
        let carol = repo.user_by_name("Carol").unwrap();
        assert!(repo.profile(carol).unwrap().is_empty());
    }

    #[test]
    fn roundtrip() {
        let repo = crate::table2::table2();
        let csv = profiles_to_csv(&repo);
        let back = profiles_from_csv(&csv).unwrap();
        assert_eq!(back.user_count(), repo.user_count());
        assert_eq!(back.property_count(), repo.property_count());
        for (u, profile) in repo.iter() {
            let name = repo.user_name(u).unwrap();
            let bu = back.user_by_name(name).unwrap();
            for (p, s) in profile.iter() {
                let label = repo.property_label(p).unwrap();
                let bp = back.property_id(label).unwrap();
                assert_eq!(back.score(bu, bp), Some(s), "{name}/{label}");
            }
        }
    }

    #[test]
    fn quoted_fields() {
        let csv = "user,\"rating, overall\"\n\"Smith, Jane\",0.5\n";
        let repo = profiles_from_csv(csv).unwrap();
        let u = repo.user_by_name("Smith, Jane").unwrap();
        let p = repo.property_id("rating, overall").unwrap();
        assert_eq!(repo.score(u, p), Some(0.5));
        // And the writer quotes them back.
        let out = profiles_to_csv(&repo);
        assert!(out.contains("\"Smith, Jane\""));
        assert!(out.contains("\"rating, overall\""));
    }

    #[test]
    fn embedded_quotes() {
        let csv = "user,p\n\"the \"\"best\"\" user\",1.0\n";
        let repo = profiles_from_csv(csv).unwrap();
        assert!(repo.user_by_name("the \"best\" user").is_some());
        let back = profiles_from_csv(&profiles_to_csv(&repo)).unwrap();
        assert!(back.user_by_name("the \"best\" user").is_some());
    }

    #[test]
    fn errors_are_located() {
        let err = profiles_from_csv("").unwrap_err();
        assert!(matches!(err, CsvError::Malformed { .. }));

        let err = profiles_from_csv("name,p\nA,1.0\n").unwrap_err();
        assert!(err.to_string().contains("header must start with 'user'"));

        let err = profiles_from_csv("user,p\nA,1.0,extra\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let err = profiles_from_csv("user,p\nA,not-a-number\n").unwrap_err();
        assert!(matches!(err, CsvError::BadScore { line: 2, .. }), "{err}");

        let err = profiles_from_csv("user,p\nA,1.7\n").unwrap_err();
        assert!(matches!(err, CsvError::BadScore { .. }), "out of range");

        let err = profiles_from_csv("user,p\n\"A,1.0\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn blank_lines_skipped() {
        let repo = profiles_from_csv("user,p\n\nA,0.5\n\n").unwrap();
        assert_eq!(repo.user_count(), 1);
    }

    #[test]
    fn opts_loader_matches_plain_loader_on_clean_input() {
        for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
            let (repo, report) = profiles_from_csv_opts(SAMPLE, opts).unwrap();
            assert_eq!(repo.user_count(), 3, "{opts:?}");
            assert_eq!(report.accepted, 3);
            assert!(report.is_clean());
        }
    }

    #[test]
    fn lenient_quarantines_defective_rows() {
        let csv = "\
user,p,q
A,0.5,0.5
B,NaN,0.5
C,0.5,7.7
A,0.1,
D,0.5
E,,0.25
";
        let (repo, report) = profiles_from_csv_opts(csv, LoadOptions::Lenient).unwrap();
        assert_eq!(repo.user_count(), 2, "A and E survive");
        assert_eq!(report.accepted, 2);
        assert_eq!(report.quarantined_count(), 4);
        assert!(matches!(
            report.quarantined[0].error.kind,
            DataErrorKind::BadScore { .. }
        ));
        assert!(matches!(
            report.quarantined[1].error.kind,
            DataErrorKind::BadScore { .. }
        ));
        assert!(matches!(
            report.quarantined[2].error.kind,
            DataErrorKind::Duplicate { .. }
        ));
        assert!(matches!(
            report.quarantined[3].error.kind,
            DataErrorKind::Schema { .. }
        ));
        // First occurrence of A wins.
        let a = repo.user_by_name("A").unwrap();
        let p = repo.property_id("p").unwrap();
        assert_eq!(repo.score(a, p), Some(0.5));
    }

    #[test]
    fn strict_fails_with_row_provenance() {
        let csv = "user,p\nA,0.5\nB,NaN\n";
        let err = profiles_from_csv_opts(csv, LoadOptions::Strict).unwrap_err();
        assert!(matches!(err.kind, DataErrorKind::BadScore { .. }));
        assert_eq!(err.provenance.record, Some(1));
        assert_eq!(err.provenance.line, Some(3));
        assert_eq!(err.provenance.name.as_deref(), Some("B"));
    }

    #[test]
    fn header_faults_fatal_in_both_modes() {
        for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
            assert!(profiles_from_csv_opts("", opts).is_err());
            assert!(profiles_from_csv_opts("name,p\nA,0.5\n", opts).is_err());
        }
    }

    #[test]
    fn lenient_quarantines_unterminated_quote_row() {
        let csv = "user,p\nA,0.5\n\"B,0.5\n";
        let (repo, report) = profiles_from_csv_opts(csv, LoadOptions::Lenient).unwrap();
        assert_eq!(repo.user_count(), 1);
        assert_eq!(report.quarantined_count(), 1);
        assert!(matches!(
            report.quarantined[0].error.kind,
            DataErrorKind::Syntax { .. }
        ));
    }
}
