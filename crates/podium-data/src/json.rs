//! The JSON profile interchange format of the Podium prototype (§7).
//!
//! "The input to Podium is a set of user profiles … in JSON format." The
//! schema is a flat list of users with a `properties` map from label to
//! normalized score:
//!
//! ```json
//! {
//!   "users": [
//!     { "name": "Alice",
//!       "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } }
//!   ]
//! }
//! ```

use std::collections::BTreeMap;

use podium_core::error::{CoreError, Result};
use podium_core::profile::UserRepository;
use serde::{Deserialize, Serialize};

/// Serde schema of one user entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonUser {
    /// Display name.
    pub name: String,
    /// Property label → normalized score. `BTreeMap` keeps serialization
    /// deterministic.
    pub properties: BTreeMap<String, f64>,
}

/// Serde schema of the whole document.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JsonRepository {
    /// All users.
    pub users: Vec<JsonUser>,
}

/// Parses a repository from the JSON interchange format.
///
/// Scores outside `[0, 1]` are rejected with
/// [`CoreError::ScoreOutOfRange`]; malformed JSON surfaces as
/// [`JsonError::Syntax`].
pub fn profiles_from_json(text: &str) -> std::result::Result<UserRepository, JsonError> {
    let doc: JsonRepository = serde_json::from_str(text)?;
    let mut repo = UserRepository::new();
    for user in &doc.users {
        let u = repo.add_user(&user.name);
        for (label, &score) in &user.properties {
            let p = repo.intern_property(label);
            repo.set_score(u, p, score)?;
        }
    }
    Ok(repo)
}

/// Serializes a repository to the JSON interchange format (pretty-printed,
/// deterministic key order).
pub fn profiles_to_json(repo: &UserRepository) -> std::result::Result<String, JsonError> {
    let mut doc = JsonRepository::default();
    for (u, profile) in repo.iter() {
        let mut properties = BTreeMap::new();
        for (p, s) in profile.iter() {
            let label = repo.property_label(p).map_err(JsonError::Core)?.to_owned();
            properties.insert(label, s);
        }
        doc.users.push(JsonUser {
            name: repo.user_name(u).map_err(JsonError::Core)?.to_owned(),
            properties,
        });
    }
    Ok(serde_json::to_string_pretty(&doc)?)
}

/// Errors from JSON profile I/O.
#[derive(Debug)]
pub enum JsonError {
    /// JSON syntax or schema error.
    Syntax(serde_json::Error),
    /// Semantic error (e.g. score out of range).
    Core(CoreError),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax(e) => write!(f, "JSON error: {e}"),
            JsonError::Core(e) => write!(f, "profile error: {e}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<serde_json::Error> for JsonError {
    fn from(e: serde_json::Error) -> Self {
        JsonError::Syntax(e)
    }
}

impl From<CoreError> for JsonError {
    fn from(e: CoreError) -> Self {
        JsonError::Core(e)
    }
}

/// Convenience: loads profiles from a file path.
pub fn profiles_from_path(
    path: impl AsRef<std::path::Path>,
) -> std::result::Result<UserRepository, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(profiles_from_json(&text)?)
}

/// Convenience: saves profiles to a file path.
pub fn profiles_to_path(
    repo: &UserRepository,
    path: impl AsRef<std::path::Path>,
) -> std::result::Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, profiles_to_json(repo)?)?;
    Ok(())
}

/// Serializes a review corpus to JSON — dataset snapshots for sharing the
/// exact ground-truth opinions an experiment ran against.
pub fn corpus_to_json(
    corpus: &crate::reviews::ReviewCorpus,
) -> std::result::Result<String, JsonError> {
    Ok(serde_json::to_string(corpus)?)
}

/// Parses a review corpus back from JSON.
pub fn corpus_from_json(
    text: &str,
) -> std::result::Result<crate::reviews::ReviewCorpus, JsonError> {
    Ok(serde_json::from_str(text)?)
}

// Re-exported so callers can use the crate-level Result alias if desired.
#[allow(unused)]
type CoreResult<T> = Result<T>;

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "users": [
            { "name": "Alice",
              "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } },
            { "name": "Bob",
              "properties": { "avgRating Mexican": 0.3 } },
            { "name": "Carol", "properties": {} }
        ]
    }"#;

    #[test]
    fn parse_sample() {
        let repo = profiles_from_json(SAMPLE).unwrap();
        assert_eq!(repo.user_count(), 3);
        assert_eq!(repo.property_count(), 2);
        let alice = repo.user_by_name("Alice").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        assert_eq!(repo.score(alice, mex), Some(0.95));
        let carol = repo.user_by_name("Carol").unwrap();
        assert!(repo.profile(carol).unwrap().is_empty());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let repo = profiles_from_json(SAMPLE).unwrap();
        let json = profiles_to_json(&repo).unwrap();
        let back = profiles_from_json(&json).unwrap();
        assert_eq!(back.user_count(), repo.user_count());
        assert_eq!(back.property_count(), repo.property_count());
        for (u, profile) in repo.iter() {
            let name = repo.user_name(u).unwrap();
            let bu = back.user_by_name(name).unwrap();
            for (p, s) in profile.iter() {
                let label = repo.property_label(p).unwrap();
                let bp = back.property_id(label).unwrap();
                assert_eq!(back.score(bu, bp), Some(s));
            }
        }
    }

    #[test]
    fn out_of_range_score_rejected() {
        let bad = r#"{ "users": [ { "name": "X", "properties": { "p": 1.5 } } ] }"#;
        assert!(matches!(
            profiles_from_json(bad),
            Err(JsonError::Core(CoreError::ScoreOutOfRange { .. }))
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            profiles_from_json("{ not json"),
            Err(JsonError::Syntax(_))
        ));
    }

    #[test]
    fn table2_roundtrips() {
        let repo = crate::table2::table2();
        let json = profiles_to_json(&repo).unwrap();
        let back = profiles_from_json(&json).unwrap();
        assert_eq!(back.user_count(), 5);
        let eve = back.user_by_name("Eve").unwrap();
        let p = back.property_id("visitFreq CheapEats").unwrap();
        assert_eq!(back.score(eve, p), Some(0.3));
    }

    #[test]
    fn corpus_roundtrip() {
        use crate::reviews::{
            Destination, DestinationId, Review, ReviewCorpus, Sentiment, TopicId,
        };
        use crate::taxonomy::CategoryId;
        use podium_core::ids::UserId;
        let corpus = ReviewCorpus {
            destinations: vec![Destination {
                name: "d".into(),
                category: CategoryId(2),
                city: 1,
                topics: vec![TopicId(0)],
                base_quality: 3.5,
            }],
            reviews: vec![Review {
                user: UserId(4),
                destination: DestinationId(0),
                rating: 5,
                topics: vec![(TopicId(0), Sentiment::Negative)],
                useful_votes: 2,
            }],
            topic_names: vec!["food".into()],
        };
        let json = corpus_to_json(&corpus).unwrap();
        let back = corpus_from_json(&json).unwrap();
        assert_eq!(back.destinations, corpus.destinations);
        assert_eq!(back.reviews, corpus.reviews);
        assert_eq!(back.topic_names, corpus.topic_names);
    }

    #[test]
    fn file_roundtrip() {
        let repo = profiles_from_json(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("podium-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.json");
        profiles_to_path(&repo, &path).unwrap();
        let back = profiles_from_path(&path).unwrap();
        assert_eq!(back.user_count(), 3);
        std::fs::remove_file(path).ok();
    }
}
