//! The JSON profile interchange format of the Podium prototype (§7).
//!
//! "The input to Podium is a set of user profiles … in JSON format." The
//! schema is a flat list of users with a `properties` map from label to
//! normalized score:
//!
//! ```json
//! {
//!   "users": [
//!     { "name": "Alice",
//!       "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } }
//!   ]
//! }
//! ```

use std::collections::{BTreeMap, HashSet};

use podium_core::error::{CoreError, Result};
use podium_core::profile::UserRepository;
use serde::{Deserialize, Serialize};

use crate::load::{DataError, DataErrorKind, LoadOptions, LoadReport, Provenance};

/// Serde schema of one user entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonUser {
    /// Display name.
    pub name: String,
    /// Property label → normalized score. `BTreeMap` keeps serialization
    /// deterministic.
    pub properties: BTreeMap<String, f64>,
}

/// Serde schema of the whole document.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JsonRepository {
    /// All users.
    pub users: Vec<JsonUser>,
}

/// Parses a repository from the JSON interchange format.
///
/// Scores outside `[0, 1]` are rejected with
/// [`CoreError::ScoreOutOfRange`]; malformed JSON surfaces as
/// [`JsonError::Syntax`].
pub fn profiles_from_json(text: &str) -> std::result::Result<UserRepository, JsonError> {
    let doc: JsonRepository = serde_json::from_str(text)?;
    let mut repo = UserRepository::new();
    for user in &doc.users {
        let u = repo.add_user(&user.name);
        for (label, &score) in &user.properties {
            let p = repo.intern_property(label);
            repo.set_score(u, p, score)?;
        }
    }
    Ok(repo)
}

/// Serializes a repository to the JSON interchange format (pretty-printed,
/// deterministic key order).
pub fn profiles_to_json(repo: &UserRepository) -> std::result::Result<String, JsonError> {
    let mut doc = JsonRepository::default();
    for (u, profile) in repo.iter() {
        let mut properties = BTreeMap::new();
        for (p, s) in profile.iter() {
            let label = repo.property_label(p).map_err(JsonError::Core)?.to_owned();
            properties.insert(label, s);
        }
        doc.users.push(JsonUser {
            name: repo.user_name(u).map_err(JsonError::Core)?.to_owned(),
            properties,
        });
    }
    Ok(serde_json::to_string_pretty(&doc)?)
}

/// Source tag used in [`Provenance`] entries of this loader.
const SOURCE: &str = "json profiles";

/// One record span located by [`scan_user_records`]: byte offsets into the
/// source text plus the 1-based line the record starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RawRecord {
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

/// The salvageable structure of a (possibly corrupted) profile document.
#[derive(Debug, Clone, Default)]
pub(crate) struct UserArrayScan {
    /// Complete (brace-balanced) record spans, in document order.
    pub records: Vec<RawRecord>,
    /// An incomplete final record — the document ended mid-object
    /// (truncation).
    pub trailing: Option<RawRecord>,
}

/// Locates the `"users"` array and extracts each balanced `{…}` record span
/// without requiring the document as a whole to parse — the salvage pass
/// behind [`LoadOptions::Lenient`]. String-aware: braces, brackets, and
/// commas inside JSON strings (with escapes) are ignored. Returns a
/// document-level [`DataError`] when no `"users"` array can be found at
/// all; that is an envelope fault, fatal in both load modes.
pub(crate) fn scan_user_records(text: &str) -> std::result::Result<UserArrayScan, DataError> {
    let bytes = text.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;

    // Phase 1: find the `"users"` key (outside strings) followed by `:` `[`.
    let mut array_open = None;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'"' => {
                let (content_start, mut j) = (i + 1, i + 1);
                let mut escaped = false;
                while j < bytes.len() {
                    match bytes[j] {
                        _ if escaped => escaped = false,
                        b'\\' => escaped = true,
                        b'\n' => line += 1,
                        b'"' => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    break; // unterminated string; no key found
                }
                let key = &text[content_start..j];
                i = j + 1;
                if key == "users" {
                    let mut k = i;
                    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                        if bytes[k] == b'\n' {
                            line += 1;
                        }
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k] == b':' {
                        k += 1;
                        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                            if bytes[k] == b'\n' {
                                line += 1;
                            }
                            k += 1;
                        }
                        if k < bytes.len() && bytes[k] == b'[' {
                            array_open = Some(k + 1);
                            break;
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    let Some(start) = array_open else {
        return Err(DataError::new(
            DataErrorKind::Syntax {
                message: "no \"users\" array found in document".into(),
            },
            Provenance::document(SOURCE),
        ));
    };

    // Phase 2: walk the array, extracting balanced records. A non-object
    // token (stray garbage) is consumed up to the next top-level `,`/`]` and
    // reported as a record span so it can be quarantined individually.
    let mut scan = UserArrayScan::default();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b',' | b' ' | b'\t' | b'\r' => i += 1,
            b']' => return Ok(scan),
            _ => {
                let rec_start = i;
                let rec_line = line;
                let mut depth = 0usize;
                let mut in_string = false;
                let mut escaped = false;
                let mut complete = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b == b'\n' {
                        line += 1;
                    }
                    if in_string {
                        match b {
                            _ if escaped => escaped = false,
                            b'\\' => escaped = true,
                            b'"' => in_string = false,
                            _ => {}
                        }
                    } else {
                        match b {
                            b'"' => in_string = true,
                            b'{' | b'[' => depth += 1,
                            b'}' | b']' if depth > 0 => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    complete = true;
                                    break;
                                }
                            }
                            b']' => break, // array close while scanning a stray token
                            b',' if depth == 0 => break, // end of a stray token
                            _ => {}
                        }
                    }
                    i += 1;
                }
                let rec = RawRecord {
                    start: rec_start,
                    end: i,
                    line: rec_line,
                };
                if complete || (i < bytes.len() && depth == 0 && !in_string) {
                    scan.records.push(rec);
                } else {
                    // Ran off the end of the document mid-record.
                    scan.trailing = Some(rec);
                    return Ok(scan);
                }
            }
        }
    }
    Ok(scan)
}

/// Validates one parsed record against the repository being built: the name
/// must be fresh and every score finite and inside `[0, 1]`. Nothing is
/// committed here — callers only commit records that validate in full, so a
/// rejected record leaves no partial state.
fn validate_record(
    user: &JsonUser,
    seen: &HashSet<String>,
    prov: &Provenance,
) -> std::result::Result<(), DataError> {
    if seen.contains(&user.name) {
        return Err(DataError::new(
            DataErrorKind::Duplicate {
                name: user.name.clone(),
            },
            prov.clone().named(&user.name),
        ));
    }
    for (label, &score) in &user.properties {
        if !score.is_finite() || !(0.0..=1.0).contains(&score) {
            return Err(DataError::new(
                DataErrorKind::BadScore {
                    property: label.clone(),
                    value: format!("{score}"),
                },
                prov.clone().named(&user.name),
            ));
        }
    }
    Ok(())
}

/// Commits a fully-validated record.
fn commit_record(
    repo: &mut UserRepository,
    user: &JsonUser,
    prov: &Provenance,
) -> std::result::Result<(), DataError> {
    let u = repo.add_user(&user.name);
    for (label, &score) in &user.properties {
        let p = repo.intern_property(label);
        repo.set_score(u, p, score)
            .map_err(|e| DataError::new(DataErrorKind::Core(e), prov.clone().named(&user.name)))?;
    }
    Ok(())
}

/// Parses a repository with an explicit failure policy and full accounting.
///
/// [`LoadOptions::Strict`] requires the document to parse as a whole and
/// fails on the first defective record, with record/line provenance in the
/// returned [`DataError`]. [`LoadOptions::Lenient`] salvages: records are
/// located by a string-aware scan of the `"users"` array, so even a
/// document with a truncated tail or garbage bytes inside one record
/// yields every other record; each defective record becomes exactly one
/// quarantine entry in the [`LoadReport`]. In both modes a record is
/// validated in full (fresh name, finite in-range scores) before any of it
/// is committed, and a missing `"users"` array is fatal.
pub fn profiles_from_json_opts(
    text: &str,
    opts: LoadOptions,
) -> std::result::Result<(UserRepository, LoadReport), DataError> {
    if !opts.is_lenient() {
        // Strict mode demands a syntactically complete document, not just a
        // salvageable users array.
        serde_json::from_str::<serde::value::Value>(text).map_err(|e| {
            DataError::new(
                DataErrorKind::Syntax {
                    message: e.to_string(),
                },
                Provenance::document(SOURCE).at_line(e.line()),
            )
        })?;
    }
    let scan = scan_user_records(text)?;
    let mut repo = UserRepository::new();
    let mut report = LoadReport::default();
    let mut seen: HashSet<String> = HashSet::new();
    for (idx, rec) in scan.records.iter().enumerate() {
        let raw = &text[rec.start..rec.end];
        let prov = Provenance::record(SOURCE, idx).at_line(rec.line);
        let outcome = serde_json::from_str::<JsonUser>(raw)
            .map_err(|e| {
                DataError::new(
                    DataErrorKind::Syntax {
                        message: e.to_string(),
                    },
                    prov.clone(),
                )
            })
            .and_then(|user| validate_record(&user, &seen, &prov).map(|()| user));
        match outcome {
            Ok(user) => {
                commit_record(&mut repo, &user, &prov)?;
                seen.insert(user.name.clone());
                report.accepted += 1;
            }
            Err(e) if opts.is_lenient() => report.quarantine(e, raw),
            Err(e) => return Err(e),
        }
    }
    if let Some(tail) = scan.trailing {
        let idx = scan.records.len();
        let e = DataError::new(
            DataErrorKind::Syntax {
                message: "document ends inside a record (truncated input)".into(),
            },
            Provenance::record(SOURCE, idx).at_line(tail.line),
        );
        if opts.is_lenient() {
            report.quarantine(e, &text[tail.start..tail.end]);
        } else {
            return Err(e);
        }
    }
    Ok((repo, report))
}

/// Errors from JSON profile I/O.
#[derive(Debug)]
pub enum JsonError {
    /// JSON syntax or schema error.
    Syntax(serde_json::Error),
    /// Semantic error (e.g. score out of range).
    Core(CoreError),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax(e) => write!(f, "JSON error: {e}"),
            JsonError::Core(e) => write!(f, "profile error: {e}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<serde_json::Error> for JsonError {
    fn from(e: serde_json::Error) -> Self {
        JsonError::Syntax(e)
    }
}

impl From<CoreError> for JsonError {
    fn from(e: CoreError) -> Self {
        JsonError::Core(e)
    }
}

/// Convenience: loads profiles from a file path.
pub fn profiles_from_path(
    path: impl AsRef<std::path::Path>,
) -> std::result::Result<UserRepository, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(profiles_from_json(&text)?)
}

/// Convenience: saves profiles to a file path.
pub fn profiles_to_path(
    repo: &UserRepository,
    path: impl AsRef<std::path::Path>,
) -> std::result::Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, profiles_to_json(repo)?)?;
    Ok(())
}

/// Serializes a review corpus to JSON — dataset snapshots for sharing the
/// exact ground-truth opinions an experiment ran against.
pub fn corpus_to_json(
    corpus: &crate::reviews::ReviewCorpus,
) -> std::result::Result<String, JsonError> {
    Ok(serde_json::to_string(corpus)?)
}

/// Parses a review corpus back from JSON.
pub fn corpus_from_json(
    text: &str,
) -> std::result::Result<crate::reviews::ReviewCorpus, JsonError> {
    Ok(serde_json::from_str(text)?)
}

// Re-exported so callers can use the crate-level Result alias if desired.
#[allow(unused)]
type CoreResult<T> = Result<T>;

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "users": [
            { "name": "Alice",
              "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } },
            { "name": "Bob",
              "properties": { "avgRating Mexican": 0.3 } },
            { "name": "Carol", "properties": {} }
        ]
    }"#;

    #[test]
    fn parse_sample() {
        let repo = profiles_from_json(SAMPLE).unwrap();
        assert_eq!(repo.user_count(), 3);
        assert_eq!(repo.property_count(), 2);
        let alice = repo.user_by_name("Alice").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        assert_eq!(repo.score(alice, mex), Some(0.95));
        let carol = repo.user_by_name("Carol").unwrap();
        assert!(repo.profile(carol).unwrap().is_empty());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let repo = profiles_from_json(SAMPLE).unwrap();
        let json = profiles_to_json(&repo).unwrap();
        let back = profiles_from_json(&json).unwrap();
        assert_eq!(back.user_count(), repo.user_count());
        assert_eq!(back.property_count(), repo.property_count());
        for (u, profile) in repo.iter() {
            let name = repo.user_name(u).unwrap();
            let bu = back.user_by_name(name).unwrap();
            for (p, s) in profile.iter() {
                let label = repo.property_label(p).unwrap();
                let bp = back.property_id(label).unwrap();
                assert_eq!(back.score(bu, bp), Some(s));
            }
        }
    }

    #[test]
    fn out_of_range_score_rejected() {
        let bad = r#"{ "users": [ { "name": "X", "properties": { "p": 1.5 } } ] }"#;
        assert!(matches!(
            profiles_from_json(bad),
            Err(JsonError::Core(CoreError::ScoreOutOfRange { .. }))
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            profiles_from_json("{ not json"),
            Err(JsonError::Syntax(_))
        ));
    }

    #[test]
    fn table2_roundtrips() {
        let repo = crate::table2::table2();
        let json = profiles_to_json(&repo).unwrap();
        let back = profiles_from_json(&json).unwrap();
        assert_eq!(back.user_count(), 5);
        let eve = back.user_by_name("Eve").unwrap();
        let p = back.property_id("visitFreq CheapEats").unwrap();
        assert_eq!(back.score(eve, p), Some(0.3));
    }

    #[test]
    fn corpus_roundtrip() {
        use crate::reviews::{
            Destination, DestinationId, Review, ReviewCorpus, Sentiment, TopicId,
        };
        use crate::taxonomy::CategoryId;
        use podium_core::ids::UserId;
        let corpus = ReviewCorpus {
            destinations: vec![Destination {
                name: "d".into(),
                category: CategoryId(2),
                city: 1,
                topics: vec![TopicId(0)],
                base_quality: 3.5,
            }],
            reviews: vec![Review {
                user: UserId(4),
                destination: DestinationId(0),
                rating: 5,
                topics: vec![(TopicId(0), Sentiment::Negative)],
                useful_votes: 2,
            }],
            topic_names: vec!["food".into()],
        };
        let json = corpus_to_json(&corpus).unwrap();
        let back = corpus_from_json(&json).unwrap();
        assert_eq!(back.destinations, corpus.destinations);
        assert_eq!(back.reviews, corpus.reviews);
        assert_eq!(back.topic_names, corpus.topic_names);
    }

    #[test]
    fn opts_loader_matches_plain_loader_on_clean_input() {
        for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
            let (repo, report) = profiles_from_json_opts(SAMPLE, opts).unwrap();
            assert_eq!(repo.user_count(), 3, "{opts:?}");
            assert_eq!(report.accepted, 3);
            assert!(report.is_clean());
            let alice = repo.user_by_name("Alice").unwrap();
            let mex = repo.property_id("avgRating Mexican").unwrap();
            assert_eq!(repo.score(alice, mex), Some(0.95));
        }
    }

    #[test]
    fn lenient_salvages_truncated_document() {
        // Cut SAMPLE in the middle of Carol's record.
        let cut = SAMPLE.find("Carol").unwrap() + 2;
        let truncated = &SAMPLE[..cut];
        let (repo, report) = profiles_from_json_opts(truncated, LoadOptions::Lenient).unwrap();
        assert_eq!(repo.user_count(), 2, "Alice and Bob survive");
        assert_eq!(report.accepted, 2);
        assert_eq!(report.quarantined_count(), 1);
        let q = &report.quarantined[0];
        assert!(matches!(q.error.kind, DataErrorKind::Syntax { .. }));
        assert_eq!(q.error.provenance.record, Some(2));
    }

    #[test]
    fn strict_rejects_truncated_document() {
        let cut = SAMPLE.find("Carol").unwrap() + 2;
        let err = profiles_from_json_opts(&SAMPLE[..cut], LoadOptions::Strict).unwrap_err();
        assert!(matches!(err.kind, DataErrorKind::Syntax { .. }));
        assert!(err.provenance.line.is_some(), "provenance carries a line");
    }

    #[test]
    fn lenient_quarantines_bad_scores_and_duplicates() {
        let doc = r#"{ "users": [
            { "name": "A", "properties": { "p": 0.5 } },
            { "name": "B", "properties": { "p": 42.5 } },
            { "name": "A", "properties": { "p": 0.1 } },
            { "name": "C", "properties": {} }
        ] }"#;
        let (repo, report) = profiles_from_json_opts(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(repo.user_count(), 2, "A (first) and C");
        assert_eq!(report.accepted, 2);
        assert_eq!(report.quarantined_count(), 2);
        assert!(matches!(
            report.quarantined[0].error.kind,
            DataErrorKind::BadScore { .. }
        ));
        assert!(matches!(
            report.quarantined[1].error.kind,
            DataErrorKind::Duplicate { .. }
        ));
        // First occurrence of "A" won: its score is intact.
        let a = repo.user_by_name("A").unwrap();
        let p = repo.property_id("p").unwrap();
        assert_eq!(repo.score(a, p), Some(0.5));
        // Strict mode fails on the first defective record with provenance.
        let err = profiles_from_json_opts(doc, LoadOptions::Strict).unwrap_err();
        assert!(matches!(err.kind, DataErrorKind::BadScore { .. }));
        assert_eq!(err.provenance.record, Some(1));
        assert_eq!(err.provenance.name.as_deref(), Some("B"));
    }

    #[test]
    fn lenient_quarantines_garbage_record() {
        let doc = r#"{ "users": [
            { "name": "A", "properties": {} },
            { "name": @@garbage@@, "properties": {} },
            { "name": "B", "properties": {} }
        ] }"#;
        let (repo, report) = profiles_from_json_opts(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(repo.user_count(), 2);
        assert_eq!(report.quarantined_count(), 1);
        assert!(matches!(
            report.quarantined[0].error.kind,
            DataErrorKind::Syntax { .. }
        ));
    }

    #[test]
    fn missing_users_array_is_fatal_in_both_modes() {
        for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
            let err = profiles_from_json_opts(r#"{ "records": [] }"#, opts).unwrap_err();
            assert!(matches!(err.kind, DataErrorKind::Syntax { .. }), "{opts:?}");
        }
    }

    #[test]
    fn missing_name_field_quarantined() {
        let doc = r#"{ "users": [
            { "properties": { "p": 0.5 } },
            { "name": "B", "properties": {} }
        ] }"#;
        let (repo, report) = profiles_from_json_opts(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(repo.user_count(), 1);
        assert_eq!(report.quarantined_count(), 1);
        let msg = report.quarantined[0].error.to_string();
        assert!(msg.contains("name"), "{msg}");
    }

    #[test]
    fn file_roundtrip() {
        let repo = profiles_from_json(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("podium-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.json");
        profiles_to_path(&repo, &path).unwrap();
        let back = profiles_from_path(&path).unwrap();
        assert_eq!(back.user_count(), 3);
        std::fs::remove_file(path).ok();
    }
}
