//! Shared types of the fault-tolerant ingestion layer.
//!
//! Real opinion-procurement inputs are noisy: truncated uploads, NaN
//! scores, duplicated user rows, dangling taxonomy references. A loader
//! facing such data can either abort ([`LoadOptions::Strict`]) or salvage
//! everything salvageable while setting aside the defective records
//! ([`LoadOptions::Lenient`]). Every loader in this crate threads the same
//! vocabulary: a [`DataError`] describes *what* broke and *where*
//! ([`Provenance`]), and a [`LoadReport`] accounts for every record the
//! lenient path accepted or quarantined.
//!
//! Two guarantees hold in both modes:
//!
//! * **Atomic record commit** — a record is validated in full before any of
//!   it is written to the repository, so a quarantined record leaves no
//!   partial state behind.
//! * **Document-level faults stay fatal** — a file whose envelope is
//!   unusable (no `users` array, missing CSV header) errors in Lenient mode
//!   too; quarantining is a record-level policy, not error suppression.

use podium_core::error::CoreError;

/// How a loader reacts to defective records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadOptions {
    /// Fail the whole load on the first defective record (the historical
    /// behavior of the plain loaders).
    #[default]
    Strict,
    /// Quarantine defective records into the [`LoadReport`] and keep
    /// loading the rest.
    Lenient,
}

impl LoadOptions {
    /// Whether defective records are quarantined rather than fatal.
    #[inline]
    pub fn is_lenient(self) -> bool {
        matches!(self, LoadOptions::Lenient)
    }
}

/// Where a defective record came from — enough context to find it in the
/// source document with a text editor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Provenance {
    /// Which loader produced the error (e.g. `"json profiles"`).
    pub source: &'static str,
    /// 0-based record index within the document, for record-shaped faults.
    pub record: Option<usize>,
    /// 1-based line number in the source text, when derivable.
    pub line: Option<usize>,
    /// The record's user/category/rule name, when one was parsed.
    pub name: Option<String>,
}

impl Provenance {
    /// A document-level provenance (no specific record).
    pub fn document(source: &'static str) -> Self {
        Self {
            source,
            ..Self::default()
        }
    }

    /// Provenance for record `record` of `source`.
    pub fn record(source: &'static str, record: usize) -> Self {
        Self {
            source,
            record: Some(record),
            ..Self::default()
        }
    }

    /// Attaches a 1-based line number.
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches the parsed record name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.source)?;
        if let Some(r) = self.record {
            write!(f, ", record {r}")?;
        }
        if let Some(l) = self.line {
            write!(f, ", line {l}")?;
        }
        if let Some(n) = &self.name {
            write!(f, " ({n})")?;
        }
        Ok(())
    }
}

/// What exactly went wrong with a document or record.
#[derive(Debug, Clone, PartialEq)]
pub enum DataErrorKind {
    /// The document or record is not syntactically parseable (malformed
    /// JSON, unterminated CSV quote, truncated tail).
    Syntax {
        /// Parser message.
        message: String,
    },
    /// The record parses but lacks a required field or has a wrongly-typed
    /// one.
    Schema {
        /// What is missing or mistyped.
        message: String,
    },
    /// A score cell failed validation: unparseable, non-finite, or outside
    /// the normalized `[0, 1]` range.
    BadScore {
        /// Property label the score was destined for.
        property: String,
        /// The offending raw cell/value text.
        value: String,
    },
    /// A record reuses an already-accepted user or category name. The first
    /// occurrence wins; later ones are defective.
    Duplicate {
        /// The reused name.
        name: String,
    },
    /// A record references an entity that does not resolve (a taxonomy
    /// parent that is never defined, a review pointing at a destination
    /// outside the corpus).
    UnknownReference {
        /// The dangling reference.
        reference: String,
    },
    /// Accepting the record would close a cycle (taxonomy parent chains,
    /// implication rules), making fixpoint semantics ill-defined.
    Cycle {
        /// A description of the cycle being closed.
        description: String,
    },
    /// An error bubbled up from the core repository layer.
    Core(CoreError),
}

impl DataErrorKind {
    /// A stable machine-readable tag for the kind, used by persisted
    /// quarantine reports ([`crate::report`]) and CLI output. These values
    /// are part of the report format; do not repurpose them.
    pub fn tag(&self) -> &'static str {
        match self {
            DataErrorKind::Syntax { .. } => "syntax",
            DataErrorKind::Schema { .. } => "schema",
            DataErrorKind::BadScore { .. } => "bad-score",
            DataErrorKind::Duplicate { .. } => "duplicate",
            DataErrorKind::UnknownReference { .. } => "unknown-reference",
            DataErrorKind::Cycle { .. } => "cycle",
            DataErrorKind::Core(_) => "core",
        }
    }
}

impl std::fmt::Display for DataErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataErrorKind::Syntax { message } => write!(f, "syntax error: {message}"),
            DataErrorKind::Schema { message } => write!(f, "schema error: {message}"),
            DataErrorKind::BadScore { property, value } => {
                write!(f, "bad score '{value}' for '{property}'")
            }
            DataErrorKind::Duplicate { name } => write!(f, "duplicate name '{name}'"),
            DataErrorKind::UnknownReference { reference } => {
                write!(f, "unresolved reference '{reference}'")
            }
            DataErrorKind::Cycle { description } => write!(f, "cycle: {description}"),
            DataErrorKind::Core(e) => write!(f, "{e}"),
        }
    }
}

/// A structured ingestion error: a defect kind plus the provenance needed
/// to locate the offending record.
#[derive(Debug, Clone, PartialEq)]
pub struct DataError {
    /// What went wrong.
    pub kind: DataErrorKind,
    /// Where it came from.
    pub provenance: Provenance,
}

impl DataError {
    /// Builds an error from its parts.
    pub fn new(kind: DataErrorKind, provenance: Provenance) -> Self {
        Self { kind, provenance }
    }
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.kind, self.provenance)
    }
}

impl std::error::Error for DataError {}

impl From<CoreError> for DataError {
    fn from(e: CoreError) -> Self {
        DataError::new(DataErrorKind::Core(e), Provenance::default())
    }
}

/// One record set aside by a lenient load.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRecord {
    /// Why the record was rejected.
    pub error: DataError,
    /// A short excerpt of the raw record text (truncated), for debugging
    /// without re-opening the source file.
    pub snippet: String,
}

/// Maximum stored snippet length — quarantine entries must stay cheap even
/// when a fault produces a megabyte-sized "record".
const SNIPPET_MAX: usize = 120;

impl QuarantinedRecord {
    /// Builds an entry, truncating `raw` to a short snippet on a char
    /// boundary.
    pub fn new(error: DataError, raw: &str) -> Self {
        let mut snippet: String = raw.trim().chars().take(SNIPPET_MAX).collect();
        if snippet.len() < raw.trim().len() {
            snippet.push('…');
        }
        Self { error, snippet }
    }
}

/// The outcome accounting of a load: how many records were committed and
/// which were quarantined. Strict loads that succeed return an empty
/// quarantine by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Number of records fully validated and committed.
    pub accepted: usize,
    /// Records set aside, in document order.
    pub quarantined: Vec<QuarantinedRecord>,
}

impl LoadReport {
    /// Whether every record was accepted.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Number of quarantined records.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Records a quarantined record.
    pub(crate) fn quarantine(&mut self, error: DataError, raw: &str) {
        self.quarantined.push(QuarantinedRecord::new(error, raw));
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} accepted, {} quarantined",
            self.accepted,
            self.quarantined.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_display_is_complete() {
        let p = Provenance::record("json profiles", 3)
            .at_line(12)
            .named("Eve");
        let s = p.to_string();
        assert!(s.contains("json profiles"));
        assert!(s.contains("record 3"));
        assert!(s.contains("line 12"));
        assert!(s.contains("Eve"));
    }

    #[test]
    fn data_error_display_includes_kind_and_provenance() {
        let e = DataError::new(
            DataErrorKind::BadScore {
                property: "avgRating Thai".into(),
                value: "NaN".into(),
            },
            Provenance::record("csv profiles", 0).at_line(2),
        );
        let s = e.to_string();
        assert!(s.contains("NaN"), "{s}");
        assert!(s.contains("line 2"), "{s}");
    }

    #[test]
    fn snippets_are_truncated() {
        let long = "x".repeat(500);
        let q = QuarantinedRecord::new(
            DataError::new(
                DataErrorKind::Syntax {
                    message: "bad".into(),
                },
                Provenance::document("json profiles"),
            ),
            &long,
        );
        assert!(q.snippet.chars().count() <= SNIPPET_MAX + 1);
        assert!(q.snippet.ends_with('…'));
    }

    #[test]
    fn report_summary_counts() {
        let mut r = LoadReport::default();
        assert!(r.is_clean());
        r.accepted = 7;
        r.quarantine(
            DataError::new(
                DataErrorKind::Duplicate { name: "Bob".into() },
                Provenance::record("json profiles", 4),
            ),
            "{ \"name\": \"Bob\" }",
        );
        assert_eq!(r.quarantined_count(), 1);
        assert_eq!(r.summary(), "7 accepted, 1 quarantined");
    }
}
