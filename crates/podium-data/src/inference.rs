//! Profile inference rules (paper §3.1, Example 3.2).
//!
//! Profiles should be "as complete as possible" before selection, so Podium
//! applies inference rules in a preprocessing step:
//!
//! * **Implication rules** — RDF-style generalizations over Boolean
//!   properties (`livesIn Tokyo ⇒ livesIn Japan`);
//! * **Functional rules** — a property family like `livesIn <city>` where a
//!   user can hold at most one value: a known `1` score lets us infer `0`
//!   (known false) for every other property of the family. Under the open
//!   world assumption the remaining missing properties stay *unknown*.
//!
//! Category generalization over *numeric* aggregates (avgRating Mexican →
//! avgRating Latin) happens during property derivation ([`crate::derive`]),
//! where the raw activity data is still available.

//! ```
//! use podium_data::inference::{InferenceEngine, Rule};
//! use podium_core::profile::UserRepository;
//!
//! let mut repo = UserRepository::new();
//! let u = repo.add_user("Alice");
//! let tokyo = repo.intern_property("livesIn Tokyo");
//! repo.set_score(u, tokyo, 1.0).unwrap();
//!
//! InferenceEngine::new()
//!     .with_rule(Rule::Implies {
//!         premise: "livesIn Tokyo".into(),
//!         conclusion: "livesIn Japan".into(),
//!         threshold: 1.0,
//!     })
//!     .apply(&mut repo)
//!     .unwrap();
//! let japan = repo.property_id("livesIn Japan").unwrap();
//! assert_eq!(repo.score(u, japan), Some(1.0));
//! ```

use std::collections::HashMap;

use podium_core::error::Result;
use podium_core::ids::PropertyId;
use podium_core::profile::UserRepository;
use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::load::{DataError, DataErrorKind, LoadOptions, LoadReport, Provenance};

/// One inference rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rule {
    /// If the premise property holds with score ≥ `threshold`, assert the
    /// conclusion property with score 1 (unless already known).
    Implies {
        /// Premise property label.
        premise: String,
        /// Conclusion property label.
        conclusion: String,
        /// Minimum premise score for the rule to fire.
        threshold: f64,
    },
    /// Properties whose labels start with `prefix` form a functional family:
    /// a score of exactly 1 on one member infers score 0 on every *other
    /// interned* member for that user (Example 3.2's `livesIn`).
    Functional {
        /// Common label prefix of the family, e.g. `"livesIn "`.
        prefix: String,
    },
}

/// A reusable rule engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InferenceEngine {
    rules: Vec<Rule>,
}

impl InferenceEngine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Borrow the rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Applies all rules to the repository until fixpoint (implications can
    /// chain). Returns the number of scores written.
    pub fn apply(&self, repo: &mut UserRepository) -> Result<usize> {
        let mut written = 0usize;
        loop {
            let mut round = 0usize;
            for rule in &self.rules {
                round += match rule {
                    Rule::Implies {
                        premise,
                        conclusion,
                        threshold,
                    } => self.apply_implication(repo, premise, conclusion, *threshold)?,
                    Rule::Functional { prefix } => self.apply_functional(repo, prefix)?,
                };
            }
            written += round;
            if round == 0 {
                return Ok(written);
            }
        }
    }

    fn apply_implication(
        &self,
        repo: &mut UserRepository,
        premise: &str,
        conclusion: &str,
        threshold: f64,
    ) -> Result<usize> {
        let Some(p) = repo.property_id(premise) else {
            return Ok(0);
        };
        let c = repo.intern_property(conclusion);
        let mut writes: Vec<podium_core::ids::UserId> = Vec::new();
        for (u, profile) in repo.iter() {
            if profile.score(p).is_some_and(|s| s >= threshold) && !profile.contains(c) {
                writes.push(u);
            }
        }
        for &u in &writes {
            repo.set_score(u, c, 1.0)?;
        }
        Ok(writes.len())
    }

    fn apply_functional(&self, repo: &mut UserRepository, prefix: &str) -> Result<usize> {
        let family: Vec<PropertyId> = (0..repo.property_count())
            .map(PropertyId::from_index)
            .filter(|&p| {
                repo.property_label(p)
                    .map(|l| l.starts_with(prefix))
                    .unwrap_or(false)
            })
            .collect();
        if family.len() < 2 {
            return Ok(0);
        }
        let mut writes: Vec<(podium_core::ids::UserId, PropertyId)> = Vec::new();
        for (u, profile) in repo.iter() {
            let holds = family
                .iter()
                .any(|&p| profile.score(p).is_some_and(|s| s == 1.0));
            if !holds {
                continue;
            }
            for &p in &family {
                if !profile.contains(p) {
                    writes.push((u, p));
                }
            }
        }
        for &(u, p) in &writes {
            repo.set_score(u, p, 0.0)?;
        }
        Ok(writes.len())
    }
}

/// Loader source tag for [`Provenance`].
const SOURCE: &str = "inference rules";

/// Whether adding the implication edge `premise -> conclusion` to the
/// already-accepted implication edges closes a cycle (i.e. `conclusion`
/// already reaches `premise`).
fn closes_cycle(edges: &HashMap<String, Vec<String>>, premise: &str, conclusion: &str) -> bool {
    if premise == conclusion {
        return true;
    }
    let mut stack = vec![conclusion];
    let mut seen: Vec<&str> = Vec::new();
    while let Some(cur) = stack.pop() {
        if cur == premise {
            return true;
        }
        if seen.contains(&cur) {
            continue;
        }
        seen.push(cur);
        if let Some(nexts) = edges.get(cur) {
            stack.extend(nexts.iter().map(String::as_str));
        }
    }
    false
}

/// Loads inference rules from the JSON interchange format:
///
/// ```json
/// { "rules": [
///   { "type": "implies", "premise": "livesIn Tokyo",
///     "conclusion": "livesIn Japan", "threshold": 1.0 },
///   { "type": "functional", "prefix": "livesIn " }
/// ] }
/// ```
///
/// `threshold` is optional (default 1.0) but must be finite and in
/// `[0, 1]`. An implication whose edge would close a cycle against the
/// already-accepted implications (including self-loops) is defective:
/// fixpoint application would still terminate, but a cyclic rule set is
/// always an authoring error. Defective rules are fatal under
/// [`LoadOptions::Strict`] and quarantined under [`LoadOptions::Lenient`];
/// a missing or non-array `rules` key is fatal in both modes.
pub fn rules_from_json(
    text: &str,
    opts: LoadOptions,
) -> std::result::Result<(InferenceEngine, LoadReport), DataError> {
    let doc: Value = serde_json::from_str(text).map_err(|e| {
        DataError::new(
            DataErrorKind::Syntax {
                message: e.to_string(),
            },
            Provenance::document(SOURCE).at_line(e.line()),
        )
    })?;
    let records = doc.get("rules").and_then(Value::as_array).ok_or_else(|| {
        DataError::new(
            DataErrorKind::Schema {
                message: "no \"rules\" array found in document".into(),
            },
            Provenance::document(SOURCE),
        )
    })?;

    let mut engine = InferenceEngine::new();
    let mut report = LoadReport::default();
    let mut edges: HashMap<String, Vec<String>> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        let raw = serde_json::to_string(rec).unwrap_or_default();
        let prov = Provenance::record(SOURCE, i);
        let schema = |message: &str| {
            DataError::new(
                DataErrorKind::Schema {
                    message: message.into(),
                },
                Provenance::record(SOURCE, i),
            )
        };
        let parsed = (|| {
            let kind = rec
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| schema("rule record needs a string \"type\""))?;
            match kind {
                "implies" => {
                    let premise = rec
                        .get("premise")
                        .and_then(Value::as_str)
                        .ok_or_else(|| schema("implies rule needs a string \"premise\""))?;
                    let conclusion = rec
                        .get("conclusion")
                        .and_then(Value::as_str)
                        .ok_or_else(|| schema("implies rule needs a string \"conclusion\""))?;
                    let threshold = match rec.get("threshold") {
                        None | Some(Value::Null) => 1.0,
                        Some(t) => t
                            .as_f64()
                            .ok_or_else(|| schema("\"threshold\" must be a number"))?,
                    };
                    if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
                        return Err(DataError::new(
                            DataErrorKind::BadScore {
                                property: format!("threshold of '{premise}'"),
                                value: threshold.to_string(),
                            },
                            prov.clone(),
                        ));
                    }
                    if closes_cycle(&edges, premise, conclusion) {
                        return Err(DataError::new(
                            DataErrorKind::Cycle {
                                description: format!(
                                    "implication '{premise}' => '{conclusion}' closes a cycle"
                                ),
                            },
                            prov.clone(),
                        ));
                    }
                    Ok(Rule::Implies {
                        premise: premise.to_owned(),
                        conclusion: conclusion.to_owned(),
                        threshold,
                    })
                }
                "functional" => {
                    let prefix = rec
                        .get("prefix")
                        .and_then(Value::as_str)
                        .ok_or_else(|| schema("functional rule needs a string \"prefix\""))?;
                    if prefix.is_empty() {
                        return Err(schema("functional \"prefix\" must be non-empty"));
                    }
                    Ok(Rule::Functional {
                        prefix: prefix.to_owned(),
                    })
                }
                other => Err(schema(&format!(
                    "unknown rule type '{other}' (expected \"implies\" or \"functional\")"
                ))),
            }
        })();
        match parsed {
            Ok(rule) => {
                if let Rule::Implies {
                    premise,
                    conclusion,
                    ..
                } = &rule
                {
                    edges
                        .entry(premise.clone())
                        .or_default()
                        .push(conclusion.clone());
                }
                engine = engine.with_rule(rule);
                report.accepted += 1;
            }
            Err(e) if opts.is_lenient() => report.quarantine(e, &raw),
            Err(e) => return Err(e),
        }
    }
    Ok((engine, report))
}

/// Writes a rule set to the JSON interchange format read by
/// [`rules_from_json`]. A cycle-free engine round-trips under
/// [`LoadOptions::Strict`].
pub fn rules_to_json(engine: &InferenceEngine) -> String {
    let records: Vec<Value> = engine
        .rules()
        .iter()
        .map(|rule| match rule {
            Rule::Implies {
                premise,
                conclusion,
                threshold,
            } => Value::Object(vec![
                ("type".to_owned(), Value::String("implies".to_owned())),
                ("premise".to_owned(), Value::String(premise.clone())),
                ("conclusion".to_owned(), Value::String(conclusion.clone())),
                (
                    "threshold".to_owned(),
                    Value::Number(serde::value::Number::Float(*threshold)),
                ),
            ]),
            Rule::Functional { prefix } => Value::Object(vec![
                ("type".to_owned(), Value::String("functional".to_owned())),
                ("prefix".to_owned(), Value::String(prefix.clone())),
            ]),
        })
        .collect();
    let doc = Value::Object(vec![("rules".to_owned(), Value::Array(records))]);
    serde_json::to_string_pretty(&doc).expect("rule serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_round_trips_strict() {
        let engine = InferenceEngine::new()
            .with_rule(Rule::Implies {
                premise: "livesIn Tokyo".into(),
                conclusion: "livesIn Japan".into(),
                threshold: 0.75,
            })
            .with_rule(Rule::Functional {
                prefix: "livesIn ".into(),
            });
        let doc = rules_to_json(&engine);
        let (back, report) = rules_from_json(&doc, LoadOptions::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(back.rules(), engine.rules());
    }

    fn repo() -> UserRepository {
        let mut repo = UserRepository::new();
        let alice = repo.add_user("Alice");
        let bob = repo.add_user("Bob");
        let tokyo = repo.intern_property("livesIn Tokyo");
        let nyc = repo.intern_property("livesIn NYC");
        repo.set_score(alice, tokyo, 1.0).unwrap();
        repo.set_score(bob, nyc, 1.0).unwrap();
        repo
    }

    #[test]
    fn functional_rule_infers_falsehood() {
        // Example 3.2: S_Alice(livesIn Tokyo) = 1 ⟹ S_Alice(livesIn X) = 0
        // for every other X in 𝒫.
        let mut r = repo();
        let engine = InferenceEngine::new().with_rule(Rule::Functional {
            prefix: "livesIn ".into(),
        });
        let written = engine.apply(&mut r).unwrap();
        assert_eq!(written, 2, "one falsehood per user");
        let alice = r.user_by_name("Alice").unwrap();
        let nyc = r.property_id("livesIn NYC").unwrap();
        assert_eq!(r.score(alice, nyc), Some(0.0), "known false, not unknown");
    }

    #[test]
    fn functional_rule_skips_users_without_value() {
        let mut r = repo();
        let carol = r.add_user("Carol");
        let engine = InferenceEngine::new().with_rule(Rule::Functional {
            prefix: "livesIn ".into(),
        });
        engine.apply(&mut r).unwrap();
        let tokyo = r.property_id("livesIn Tokyo").unwrap();
        assert_eq!(
            r.score(carol, tokyo),
            None,
            "open world: Carol's residence stays unknown"
        );
    }

    #[test]
    fn implication_rule_generalizes() {
        let mut r = repo();
        let engine = InferenceEngine::new().with_rule(Rule::Implies {
            premise: "livesIn Tokyo".into(),
            conclusion: "livesIn Japan".into(),
            threshold: 1.0,
        });
        engine.apply(&mut r).unwrap();
        let alice = r.user_by_name("Alice").unwrap();
        let bob = r.user_by_name("Bob").unwrap();
        let japan = r.property_id("livesIn Japan").unwrap();
        assert_eq!(r.score(alice, japan), Some(1.0));
        assert_eq!(r.score(bob, japan), None);
    }

    #[test]
    fn implications_chain_to_fixpoint() {
        let mut r = repo();
        let engine = InferenceEngine::new()
            .with_rule(Rule::Implies {
                premise: "livesIn Japan".into(),
                conclusion: "livesIn Asia".into(),
                threshold: 1.0,
            })
            .with_rule(Rule::Implies {
                premise: "livesIn Tokyo".into(),
                conclusion: "livesIn Japan".into(),
                threshold: 1.0,
            });
        // Rules listed in "wrong" order: fixpoint iteration must still chain
        // Tokyo -> Japan -> Asia.
        engine.apply(&mut r).unwrap();
        let alice = r.user_by_name("Alice").unwrap();
        let asia = r.property_id("livesIn Asia").unwrap();
        assert_eq!(r.score(alice, asia), Some(1.0));
    }

    #[test]
    fn implication_respects_threshold() {
        let mut r = UserRepository::new();
        let u = r.add_user("u");
        let p = r.intern_property("avgRating Mexican");
        r.set_score(u, p, 0.5).unwrap();
        let engine = InferenceEngine::new().with_rule(Rule::Implies {
            premise: "avgRating Mexican".into(),
            conclusion: "likes Mexican".into(),
            threshold: 0.65,
        });
        let written = engine.apply(&mut r).unwrap();
        assert_eq!(written, 0);
        let c = r.property_id("likes Mexican").unwrap();
        assert_eq!(r.score(u, c), None);
    }

    #[test]
    fn existing_scores_not_overwritten() {
        let mut r = repo();
        let alice = r.user_by_name("Alice").unwrap();
        let japan = r.intern_property("livesIn Japan");
        r.set_score(alice, japan, 0.0).unwrap(); // contradicting prior value
        let engine = InferenceEngine::new().with_rule(Rule::Implies {
            premise: "livesIn Tokyo".into(),
            conclusion: "livesIn Japan".into(),
            threshold: 1.0,
        });
        engine.apply(&mut r).unwrap();
        assert_eq!(r.score(alice, japan), Some(0.0), "data beats inference");
    }

    #[test]
    fn missing_premise_property_is_noop() {
        let mut r = repo();
        let engine = InferenceEngine::new().with_rule(Rule::Implies {
            premise: "nonexistent".into(),
            conclusion: "whatever".into(),
            threshold: 1.0,
        });
        assert_eq!(engine.apply(&mut r).unwrap(), 0);
    }

    #[test]
    fn rules_loader_accepts_clean_documents() {
        let doc = r#"{ "rules": [
            { "type": "implies", "premise": "livesIn Tokyo",
              "conclusion": "livesIn Japan", "threshold": 1.0 },
            { "type": "implies", "premise": "livesIn Japan",
              "conclusion": "livesIn Asia" },
            { "type": "functional", "prefix": "livesIn " }
        ] }"#;
        let (engine, report) = rules_from_json(doc, LoadOptions::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(engine.rules().len(), 3);
        assert!(matches!(
            &engine.rules()[1],
            Rule::Implies { threshold, .. } if *threshold == 1.0
        ));
        let mut r = repo();
        assert!(engine.apply(&mut r).unwrap() > 0, "loaded rules fire");
    }

    #[test]
    fn rules_loader_rejects_cycles() {
        let doc = r#"{ "rules": [
            { "type": "implies", "premise": "a", "conclusion": "b" },
            { "type": "implies", "premise": "b", "conclusion": "c" },
            { "type": "implies", "premise": "c", "conclusion": "a" },
            { "type": "implies", "premise": "d", "conclusion": "d" }
        ] }"#;
        let (engine, report) = rules_from_json(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(
            report.accepted, 2,
            "a=>b and b=>c stand; c=>a and d=>d close cycles"
        );
        assert_eq!(report.quarantined_count(), 2);
        for q in &report.quarantined {
            assert!(matches!(q.error.kind, DataErrorKind::Cycle { .. }));
        }
        assert_eq!(engine.rules().len(), 2);
        let err = rules_from_json(doc, LoadOptions::Strict).unwrap_err();
        assert!(matches!(err.kind, DataErrorKind::Cycle { .. }));
        assert_eq!(err.provenance.record, Some(2));
    }

    #[test]
    fn rules_loader_validates_thresholds_and_schema() {
        let doc = r#"{ "rules": [
            { "type": "implies", "premise": "a", "conclusion": "b", "threshold": 1.5 },
            { "type": "implies", "premise": "a" },
            { "type": "functional", "prefix": "" },
            { "type": "teleport", "from": "a" },
            { "type": "functional", "prefix": "livesIn " }
        ] }"#;
        let (engine, report) = rules_from_json(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined_count(), 4);
        assert!(matches!(
            report.quarantined[0].error.kind,
            DataErrorKind::BadScore { .. }
        ));
        assert_eq!(engine.rules().len(), 1);
        assert!(rules_from_json(doc, LoadOptions::Strict).is_err());
    }

    #[test]
    fn rules_loader_document_faults_fatal_in_both_modes() {
        for doc in ["{}", "{ \"rules\": { } }", "not json at all"] {
            assert!(rules_from_json(doc, LoadOptions::Strict).is_err());
            assert!(rules_from_json(doc, LoadOptions::Lenient).is_err());
        }
    }
}
