//! Synthetic population generator — the dataset substrate standing in for
//! the paper's TripAdvisor crawl and Yelp Open Dataset (§8.1).
//!
//! The generator follows a latent-trait model chosen to preserve the
//! statistical features the paper's findings depend on:
//!
//! * users belong to latent *archetypes* (communities) with shared cuisine
//!   preferences, so the clustering baseline has real structure to find;
//! * cities, cuisines and user activity are Zipf/log-normal distributed,
//!   producing the heavy-tailed, highly overlapping group sizes that the
//!   paper observes ("skews in group sizes");
//! * ratings are driven by destination quality *plus the user's latent
//!   preference*, so users with diverse profiles genuinely hold diverse
//!   opinions — the correlation the opinion-procurement experiments test;
//! * reviews mention destination topics with rating-correlated sentiment and
//!   receive more "useful" votes when they agree with the destination
//!   consensus, mirroring the paper's usefulness rationale.
//!
//! Everything is deterministic for a fixed [`SynthConfig::seed`].

pub mod stats;
pub mod tripadvisor;
pub mod yelp;

use std::collections::HashSet;

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::derive::{derive_properties, DeriveOptions};
use crate::reviews::{Destination, DestinationId, Review, ReviewCorpus, Sentiment, TopicId};
use crate::taxonomy::Taxonomy;

pub use tripadvisor::tripadvisor;
pub use yelp::yelp;

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Preset name, for reports.
    pub name: String,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Number of users.
    pub users: usize,
    /// Number of destinations (restaurants).
    pub destinations: usize,
    /// Number of cities (Zipf-skewed sizes).
    pub cities: usize,
    /// Number of age groups (0 disables the property).
    pub age_groups: usize,
    /// Number of latent user archetypes (communities).
    pub archetypes: usize,
    /// Regional categories in the cuisine taxonomy.
    pub regions: usize,
    /// Leaf cuisines per region.
    pub leaves_per_region: usize,
    /// Number of review topics (food, service, …).
    pub topics: usize,
    /// Mean of the log-normal review count per user.
    pub mean_reviews_per_user: f64,
    /// Dispersion (σ of the underlying normal) of the review count.
    pub review_dispersion: f64,
    /// Rating noise σ (stars).
    pub rating_noise: f64,
    /// How strongly latent preference shifts ratings (stars per unit).
    pub preference_gain: f64,
    /// Zipf exponent for city and cuisine popularity.
    pub zipf_exponent: f64,
    /// Whether to emit `livesIn`/`ageGroup` demographic properties.
    pub include_demographics: bool,
    /// Whether reviews receive usefulness votes (Yelp only in the paper).
    pub useful_votes: bool,
    /// Property-derivation options.
    pub derive: DeriveOptions,
}

/// A fully generated dataset: ground-truth corpus plus the derived profile
/// repository.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The generating configuration.
    pub config: SynthConfig,
    /// Cuisine taxonomy.
    pub taxonomy: Taxonomy,
    /// Ground-truth reviews (the opinions to be "procured").
    pub corpus: ReviewCorpus,
    /// Profiles derived from *all* reviews (no holdout).
    pub repo: UserRepository,
    /// City names, indexed by city id.
    pub city_names: Vec<String>,
    /// Each user's home city.
    pub user_city: Vec<u32>,
    /// Each user's age group (empty when demographics are disabled).
    pub user_age_group: Vec<u32>,
}

impl SynthConfig {
    /// Generates the dataset.
    pub fn generate(&self) -> SynthDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let taxonomy = Taxonomy::generate(self.regions, self.leaves_per_region);
        let leaves = taxonomy.leaves();
        let n_leaves = leaves.len();

        let city_names: Vec<String> = (0..self.cities).map(|c| format!("City{c}")).collect();
        let city_weights = stats::zipf_weights(self.cities.max(1), self.zipf_exponent);
        let leaf_weights = stats::zipf_weights(n_leaves.max(1), self.zipf_exponent);

        // Archetype preference prototypes over leaf cuisines.
        let archetypes: Vec<Vec<f64>> = (0..self.archetypes.max(1))
            .map(|_| {
                (0..n_leaves)
                    .map(|_| stats::normal(&mut rng, 0.0, 1.0))
                    .collect()
            })
            .collect();

        // Users: home city, age group, latent preference vector, activity.
        let mut user_city = Vec::with_capacity(self.users);
        let mut user_age_group = Vec::with_capacity(self.users);
        let mut user_pref: Vec<Vec<f64>> = Vec::with_capacity(self.users);
        let mut user_reviews: Vec<usize> = Vec::with_capacity(self.users);
        for _ in 0..self.users {
            user_city.push(stats::weighted_index(&mut rng, &city_weights) as u32);
            user_age_group.push(if self.age_groups > 0 {
                rng.random_range(0..self.age_groups) as u32
            } else {
                0
            });
            let arch = &archetypes[rng.random_range(0..archetypes.len())];
            user_pref.push(
                arch.iter()
                    .map(|&a| a + stats::normal(&mut rng, 0.0, 0.5))
                    .collect(),
            );
            // Log-normal activity, clamped to at least one review.
            let mu = self.mean_reviews_per_user.max(1.0).ln()
                - self.review_dispersion * self.review_dispersion / 2.0;
            let n = stats::log_normal(&mut rng, mu, self.review_dispersion).round() as usize;
            user_reviews.push(n.clamp(1, 400));
        }

        // Destinations.
        let mut destinations = Vec::with_capacity(self.destinations);
        let mut by_category: Vec<Vec<usize>> = vec![Vec::new(); n_leaves];
        let mut by_cat_city: std::collections::HashMap<(usize, u32), Vec<usize>> =
            std::collections::HashMap::new();
        for d in 0..self.destinations {
            let leaf_idx = stats::weighted_index(&mut rng, &leaf_weights);
            let city = stats::weighted_index(&mut rng, &city_weights) as u32;
            let quality = stats::normal(&mut rng, 3.4, 0.7).clamp(1.0, 5.0);
            let n_topics = rng.random_range(3..=8.min(self.topics.max(3)));
            let topics = stats::sample_distinct(&mut rng, self.topics.max(1), n_topics)
                .into_iter()
                .map(TopicId::from_index)
                .collect();
            by_category[leaf_idx].push(d);
            by_cat_city.entry((leaf_idx, city)).or_default().push(d);
            destinations.push(Destination {
                name: format!("Restaurant{d}"),
                category: leaves[leaf_idx],
                city,
                topics,
                base_quality: quality,
            });
        }

        // Reviews.
        let mut reviews = Vec::new();
        for (u, n_rev) in user_reviews.iter().enumerate() {
            let pref = &user_pref[u];
            let probs = stats::softmax(pref, 1.2);
            let mut visited: HashSet<usize> = HashSet::new();
            for _ in 0..*n_rev {
                // Pick a cuisine by preference, then a destination of that
                // cuisine, favouring the home city.
                let mut dest: Option<usize> = None;
                for _attempt in 0..6 {
                    let leaf_idx = stats::weighted_index(&mut rng, &probs);
                    let pool: &[usize] = if rng.random::<f64>() < 0.6 {
                        by_cat_city
                            .get(&(leaf_idx, user_city[u]))
                            .map(Vec::as_slice)
                            .unwrap_or(&by_category[leaf_idx])
                    } else {
                        &by_category[leaf_idx]
                    };
                    if pool.is_empty() {
                        continue;
                    }
                    let d = pool[rng.random_range(0..pool.len())];
                    if visited.insert(d) {
                        dest = Some(d);
                        break;
                    }
                }
                let Some(d) = dest else { continue };
                let leaf_idx = leaves
                    .iter()
                    .position(|&l| l == destinations[d].category)
                    .expect("destination category is a leaf");
                let mu =
                    destinations[d].base_quality + self.preference_gain * user_pref[u][leaf_idx];
                let rating = (mu + stats::normal(&mut rng, 0.0, self.rating_noise))
                    .round()
                    .clamp(1.0, 5.0) as u8;

                // Topic mentions with rating-correlated sentiment.
                let mut topics = Vec::new();
                for &t in &destinations[d].topics {
                    if rng.random::<f64>() < 0.6 {
                        let lean = f64::from(rating) - 3.0 + stats::normal(&mut rng, 0.0, 0.8);
                        topics.push((
                            t,
                            if lean > 0.0 {
                                Sentiment::Positive
                            } else {
                                Sentiment::Negative
                            },
                        ));
                    }
                }

                // Usefulness: reviews agreeing with the destination's quality
                // consensus attract more votes, and established (high-
                // activity) reviewers draw more engagement per review —
                // both observed on real review platforms.
                let useful_votes = if self.useful_votes {
                    let agreement =
                        1.0 / (1.0 + (f64::from(rating) - destinations[d].base_quality).abs());
                    let reputation = 1.0 + (*n_rev as f64).ln().max(0.0) / 2.0;
                    stats::poisson(&mut rng, 2.5 * agreement * reputation)
                } else {
                    0
                };

                reviews.push(Review {
                    user: UserId::from_index(u),
                    destination: DestinationId::from_index(d),
                    rating,
                    topics,
                    useful_votes,
                });
            }
        }

        let topic_names = (0..self.topics).map(|t| format!("topic{t}")).collect();
        let corpus = ReviewCorpus {
            destinations,
            reviews,
            topic_names,
        };

        let mut dataset = SynthDataset {
            config: self.clone(),
            taxonomy,
            corpus,
            repo: UserRepository::new(),
            city_names,
            user_city,
            user_age_group,
        };
        dataset.repo = dataset.profiles_excluding(&|_| false);
        dataset
    }
}

impl SynthDataset {
    /// Builds a profile repository from the corpus, skipping reviews of
    /// destinations for which `exclude` returns true (the §8.2 holdout).
    /// User ids are stable across calls.
    pub fn profiles_excluding(&self, exclude: &dyn Fn(DestinationId) -> bool) -> UserRepository {
        let mut repo = UserRepository::new();
        for u in 0..self.config.users {
            repo.add_user(format!("user{u}"));
        }
        if self.config.include_demographics {
            for u in 0..self.config.users {
                let uid = UserId::from_index(u);
                let city = self.user_city[u] as usize;
                let p = repo.intern_property(format!("livesIn {}", self.city_names[city]));
                repo.set_score(uid, p, 1.0).expect("valid score");
                if self.config.age_groups > 0 {
                    let p = repo.intern_property(format!("ageGroup {}", self.user_age_group[u]));
                    repo.set_score(uid, p, 1.0).expect("valid score");
                }
            }
        }
        derive_properties(
            &mut repo,
            &self.corpus,
            &self.taxonomy,
            &self.config.derive,
            exclude,
        )
        .expect("synthetic corpus is internally consistent");
        repo
    }

    /// Categories whose labels relate to cuisine/location selection — used
    /// by experiments that diversify "on properties related to cuisine and
    /// location" (§8.4, opinion-diversity setup).
    pub fn cuisine_location_properties(
        &self,
        repo: &UserRepository,
    ) -> Vec<podium_core::ids::PropertyId> {
        (0..repo.property_count())
            .map(podium_core::ids::PropertyId::from_index)
            .filter(|&p| {
                repo.property_label(p)
                    .map(|l| {
                        l.starts_with("avgRating")
                            || l.starts_with("visitFreq")
                            || l.starts_with("enthusiasm")
                            || l.starts_with("livesIn")
                    })
                    .unwrap_or(false)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SynthConfig {
        SynthConfig {
            name: "tiny".into(),
            seed: 7,
            users: 60,
            destinations: 80,
            cities: 5,
            age_groups: 3,
            archetypes: 3,
            regions: 3,
            leaves_per_region: 4,
            topics: 10,
            mean_reviews_per_user: 8.0,
            review_dispersion: 0.6,
            rating_noise: 0.7,
            preference_gain: 0.8,
            zipf_exponent: 1.0,
            include_demographics: true,
            useful_votes: true,
            derive: DeriveOptions::default(),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_config().generate();
        let b = tiny_config().generate();
        assert_eq!(a.corpus.review_count(), b.corpus.review_count());
        assert_eq!(a.repo.property_count(), b.repo.property_count());
        assert_eq!(a.user_city, b.user_city);
        for (ra, rb) in a.corpus.reviews.iter().zip(&b.corpus.reviews) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_config().generate();
        let mut cfg = tiny_config();
        cfg.seed = 8;
        let b = cfg.generate();
        assert_ne!(
            a.corpus
                .reviews
                .iter()
                .map(|r| r.rating)
                .collect::<Vec<_>>(),
            b.corpus
                .reviews
                .iter()
                .map(|r| r.rating)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_user_reviews_something() {
        let d = tiny_config().generate();
        let mut active = vec![false; d.config.users];
        for r in &d.corpus.reviews {
            active[r.user.index()] = true;
            assert!((1..=5).contains(&r.rating));
        }
        let active_count = active.iter().filter(|&&a| a).count();
        assert!(active_count >= d.config.users * 9 / 10, "{active_count}");
    }

    #[test]
    fn profiles_contain_demographics_and_aggregates() {
        let d = tiny_config().generate();
        assert_eq!(d.repo.user_count(), 60);
        let u0 = UserId(0);
        let city = d.user_city[0] as usize;
        let p = d
            .repo
            .property_id(&format!("livesIn City{city}"))
            .expect("home-city property exists");
        assert_eq!(d.repo.score(u0, p), Some(1.0));
        assert!(
            d.repo.property_count() >= 40,
            "rich profiles: {} properties",
            d.repo.property_count()
        );
        assert!(d.repo.mean_profile_size() > 5.0);
    }

    #[test]
    fn holdout_profiles_have_no_leakage() {
        let d = tiny_config().generate();
        // Exclude the busiest destination and verify profile shrinkage.
        let counts = d.corpus.review_counts();
        let busiest = DestinationId::from_index(
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap(),
        );
        let full = d.repo.clone();
        let held = d.profiles_excluding(&|dd| dd == busiest);
        let total_full: usize = (0..full.user_count())
            .map(|u| full.profile(UserId::from_index(u)).unwrap().len())
            .sum();
        let total_held: usize = (0..held.user_count())
            .map(|u| held.profile(UserId::from_index(u)).unwrap().len())
            .sum();
        assert!(total_held < total_full, "held-out reviews removed");
        assert_eq!(held.user_count(), full.user_count(), "stable user ids");
    }

    #[test]
    fn zipf_city_sizes_are_skewed() {
        let d = tiny_config().generate();
        let mut counts = vec![0usize; d.config.cities];
        for &c in &d.user_city {
            counts[c as usize] += 1;
        }
        assert!(
            counts[0] > counts[d.config.cities - 1],
            "city sizes skewed: {counts:?}"
        );
    }

    #[test]
    fn useful_votes_present_when_enabled() {
        let d = tiny_config().generate();
        assert!(d.corpus.reviews.iter().any(|r| r.useful_votes > 0));
        let mut cfg = tiny_config();
        cfg.useful_votes = false;
        let d2 = cfg.generate();
        assert!(d2.corpus.reviews.iter().all(|r| r.useful_votes == 0));
    }

    #[test]
    fn topics_carry_sentiment_correlated_with_rating() {
        let d = tiny_config().generate();
        let (mut pos_high, mut n_high, mut pos_low, mut n_low) = (0f64, 0f64, 0f64, 0f64);
        for r in &d.corpus.reviews {
            for &(_, s) in &r.topics {
                let pos = f64::from(s == Sentiment::Positive);
                if r.rating >= 4 {
                    pos_high += pos;
                    n_high += 1.0;
                } else if r.rating <= 2 {
                    pos_low += pos;
                    n_low += 1.0;
                }
            }
        }
        assert!(n_high > 0.0 && n_low > 0.0);
        assert!(
            pos_high / n_high > pos_low / n_low + 0.2,
            "sentiment tracks rating: high {} low {}",
            pos_high / n_high,
            pos_low / n_low
        );
    }

    #[test]
    fn group_sizes_are_heavy_tailed() {
        // The paper's datasets have "skews in group sizes" that break
        // distance-based selection; verify the generator reproduces them:
        // the largest decile of groups holds a disproportionate share of
        // memberships.
        let d = super::yelp::yelp(0.01, 3).generate();
        let buckets = podium_core::bucket::BucketingConfig::adaptive_default().bucketize(&d.repo);
        let groups = podium_core::group::GroupSet::build(&d.repo, &buckets);
        let mut sizes: Vec<usize> = groups.iter().map(|(_, g)| g.size()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        let top_decile: usize = sizes[..sizes.len().div_ceil(10)].iter().sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top 10% of groups hold {top_decile} of {total} memberships"
        );
        // And a long tail of niche groups exists: at least a fifth of the
        // groups hold under 5% of the population each. (The exact share
        // depends on the seeded RNG stream, which is implementation-defined;
        // a fifth leaves headroom without losing the heavy-tail property.)
        let niche_cutoff = d.repo.user_count() / 20;
        let small = sizes.iter().filter(|&&s| s <= niche_cutoff).count();
        assert!(
            small * 5 >= sizes.len(),
            "{small} of {} groups are niche (≤{niche_cutoff})",
            sizes.len()
        );
    }

    #[test]
    fn profile_opinion_correlation_exists() {
        // Users with similar profiles must rate shared destinations more
        // similarly than dissimilar users do — the premise behind "diverse
        // users provide diverse opinions".
        let d = tiny_config().generate();
        // For each destination with >= 2 reviews, record (profile distance,
        // rating difference) over reviewer pairs; split at the median
        // distance and compare mean rating differences.
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        let mut by_dest: std::collections::HashMap<u32, Vec<(UserId, u8)>> =
            std::collections::HashMap::new();
        for r in &d.corpus.reviews {
            by_dest
                .entry(r.destination.0)
                .or_default()
                .push((r.user, r.rating));
        }
        for reviews in by_dest.values() {
            for i in 0..reviews.len() {
                for j in (i + 1)..reviews.len() {
                    let (ua, ra) = reviews[i];
                    let (ub, rb) = reviews[j];
                    let pa = d.repo.profile(ua).unwrap();
                    let pb = d.repo.profile(ub).unwrap();
                    let dist = pa.jaccard_distance(pb);
                    let diff = (f64::from(ra) - f64::from(rb)).abs();
                    pairs.push((dist, diff));
                }
            }
        }
        assert!(pairs.len() > 50, "{} reviewer pairs", pairs.len());
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let half = pairs.len() / 2;
        let mean = |v: &[(f64, f64)]| v.iter().map(|p| p.1).sum::<f64>() / v.len() as f64;
        let similar = mean(&pairs[..half]);
        let dissimilar = mean(&pairs[half..]);
        assert!(
            similar < dissimilar,
            "similar-profile pairs should agree more: {similar} vs {dissimilar}"
        );
    }

    #[test]
    fn cuisine_location_property_filter() {
        let d = tiny_config().generate();
        let props = d.cuisine_location_properties(&d.repo);
        assert!(!props.is_empty());
        for p in props {
            let l = d.repo.property_label(p).unwrap();
            assert!(!l.starts_with("ageGroup"), "demographics filtered: {l}");
        }
    }
}
