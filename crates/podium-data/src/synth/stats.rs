//! Small deterministic samplers used by the population generator.
//!
//! Only `rand`'s uniform primitives are available offline, so the classical
//! transforms are implemented here: Box–Muller normals, log-normals, Knuth
//! Poisson, and Zipf-weighted categorical draws.

use rand::RngExt;

/// Standard normal via Box–Muller.
pub fn normal<R: RngExt + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return mean + sd * z;
    }
}

/// Log-normal with the given *underlying* normal parameters.
pub fn log_normal<R: RngExt + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Poisson via Knuth's multiplication method (fine for small λ).
pub fn poisson<R: RngExt + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Unnormalized Zipf weights `1 / (i+1)^s` for `n` items.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Samples an index proportionally to `weights` (must be non-negative, not
/// all zero).
pub fn weighted_index<R: RngExt + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive mass");
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Softmax of `scores` scaled by `temperature` (higher = peakier).
pub fn softmax(scores: &[f64], temperature: f64) -> Vec<f64> {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exp: Vec<f64> = scores
        .iter()
        .map(|&s| ((s - max) * temperature).exp())
        .collect();
    let total: f64 = exp.iter().sum();
    exp.into_iter().map(|e| e / total).collect()
}

/// Samples `k` distinct indices from `0..n` (Floyd's algorithm), sorted.
pub fn sample_distinct<R: RngExt + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 1.0, 0.8) > 0.0);
        }
    }

    #[test]
    fn poisson_mean() {
        let mut r = rng();
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| u64::from(poisson(&mut r, 3.5))).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(5, 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    #[test]
    fn weighted_index_respects_mass() {
        let mut r = rng();
        let w = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 8 * counts[2], "{counts:?}");
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0], 1.5);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[1e6, 0.0], 1.0);
        assert!(p[0] > 0.999);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_distinct(&mut r, 10, 4);
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(s.iter().all(|&x| x < 10));
        }
        assert_eq!(sample_distinct(&mut r, 3, 10).len(), 3, "k clamped to n");
    }
}
