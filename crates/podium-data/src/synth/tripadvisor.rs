//! TripAdvisor-like dataset preset.
//!
//! The paper's TripAdvisor repository has 4 475 users reviewing 50K
//! restaurants, 11 749 groups and rich per-user profiles (hundreds of
//! properties: demographics plus three kinds of aggregates over a deep
//! cuisine taxonomy). The preset reproduces those *ratios* at a
//! configurable scale; `scale = 1.0` matches the paper's user count.

use crate::derive::{DeriveOptions, PropertyKinds};

use super::SynthConfig;

/// Builds a TripAdvisor-like configuration at the given scale.
/// `scale = 1.0` ≈ the paper's 4 475 users; the experiment harness defaults
/// to a laptop-friendly fraction.
pub fn tripadvisor(scale: f64, seed: u64) -> SynthConfig {
    let users = ((4475.0 * scale).round() as usize).max(20);
    SynthConfig {
        name: format!("tripadvisor-like (scale {scale})"),
        seed,
        users,
        destinations: (users * 3).max(50),
        cities: (users / 40).clamp(5, 120),
        age_groups: 5,
        archetypes: 10,
        regions: 8,
        leaves_per_region: 10,
        topics: 25,
        mean_reviews_per_user: 18.0,
        review_dispersion: 0.9,
        rating_noise: 0.7,
        preference_gain: 0.8,
        zipf_exponent: 1.0,
        include_demographics: true,
        useful_votes: false,
        derive: DeriveOptions {
            kinds: PropertyKinds::all(),
            min_visits: 1,
            generalize: true,
            city_properties: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shape() {
        let cfg = tripadvisor(0.05, 1);
        assert_eq!(cfg.users, 224);
        assert!(cfg.include_demographics);
        assert!(cfg.derive.kinds.enthusiasm, "all three aggregate kinds");
        assert!(!cfg.useful_votes, "usefulness is Yelp-only in the paper");
    }

    #[test]
    fn full_scale_matches_paper_user_count() {
        let cfg = tripadvisor(1.0, 1);
        assert_eq!(cfg.users, 4475);
    }

    #[test]
    fn generates_rich_profiles() {
        let d = tripadvisor(0.03, 3).generate();
        // TripAdvisor-like: many properties relative to user count.
        assert!(
            d.repo.property_count() > 150,
            "property-rich: {}",
            d.repo.property_count()
        );
        assert!(d.repo.max_profile_size() > 30);
    }
}
