//! Yelp-like dataset preset.
//!
//! The paper's Yelp subset has 60K users (the most-active reviewers), 52K
//! restaurants and 8 491 groups — *more users but fewer groups* than
//! TripAdvisor "due to its simpler semantics" (§8.1). The preset mirrors
//! that: no demographics, only two aggregate property kinds, a flatter
//! taxonomy, but usefulness votes on reviews (the Usefulness metric is
//! Yelp-only).

use crate::derive::{DeriveOptions, PropertyKinds};

use super::SynthConfig;

/// Builds a Yelp-like configuration at the given scale. `scale = 1.0` ≈ the
/// paper's 60K users; the experiment harness defaults to a laptop-friendly
/// fraction.
pub fn yelp(scale: f64, seed: u64) -> SynthConfig {
    let users = ((60_000.0 * scale).round() as usize).max(20);
    SynthConfig {
        name: format!("yelp-like (scale {scale})"),
        seed,
        users,
        destinations: (users).max(50),
        cities: (users / 500).clamp(4, 60),
        age_groups: 0,
        archetypes: 8,
        regions: 5,
        leaves_per_region: 7,
        topics: 18,
        mean_reviews_per_user: 25.0, // "the 60K users with most reviews"
        review_dispersion: 0.8,
        rating_noise: 0.8,
        preference_gain: 0.7,
        zipf_exponent: 1.1,
        include_demographics: false,
        useful_votes: true,
        derive: DeriveOptions {
            kinds: PropertyKinds::simple(),
            min_visits: 1,
            generalize: true,
            city_properties: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shape() {
        let cfg = yelp(0.01, 1);
        assert_eq!(cfg.users, 600);
        assert!(!cfg.include_demographics);
        assert!(!cfg.derive.kinds.enthusiasm, "simpler semantics");
        assert!(cfg.useful_votes);
    }

    #[test]
    fn full_scale_matches_paper_user_count() {
        assert_eq!(yelp(1.0, 1).users, 60_000);
    }

    #[test]
    fn fewer_property_kinds_than_tripadvisor() {
        let y = yelp(0.004, 2).generate();
        let t = super::super::tripadvisor::tripadvisor(0.05, 2).generate();
        // Comparable user counts (240 vs 224) but Yelp-like must have fewer
        // distinct properties — the paper's "less room for maneuver".
        assert!(
            y.repo.property_count() < t.repo.property_count(),
            "yelp {} < tripadvisor {}",
            y.repo.property_count(),
            t.repo.property_count()
        );
    }

    #[test]
    fn useful_votes_are_generated() {
        let y = yelp(0.002, 5).generate();
        assert!(y.corpus.reviews.iter().any(|r| r.useful_votes > 0));
    }
}
