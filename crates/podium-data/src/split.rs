//! Holdout splitting for opinion-procurement simulation (§8.2).
//!
//! "We split the data into profiles used for selection, and data that
//! simulates the procured opinions." Evaluation destinations are held out:
//! profiles are derived from all *other* reviews, and the held-out reviews
//! become the ground-truth opinions revealed once a user is "asked".

use std::collections::HashSet;

use podium_core::profile::UserRepository;

use crate::reviews::DestinationId;
use crate::synth::SynthDataset;

/// A holdout split of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct HoldoutSplit {
    /// Destinations whose reviews are held out for evaluation.
    pub eval_destinations: Vec<DestinationId>,
    /// Profiles derived from the remaining reviews only.
    pub selection_repo: UserRepository,
}

/// Splits the dataset: the `count` most-reviewed destinations with at least
/// `min_reviews` reviews are held out (the paper evaluates on destinations
/// with many reviews — e.g. 50 TripAdvisor destinations averaging 90
/// reviews, 130 Yelp destinations averaging 1 730).
pub fn holdout_split(dataset: &SynthDataset, count: usize, min_reviews: usize) -> HoldoutSplit {
    let counts = dataset.corpus.review_counts();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&d| std::cmp::Reverse(counts[d]));
    let eval_destinations: Vec<DestinationId> = order
        .into_iter()
        .filter(|&d| counts[d] >= min_reviews)
        .take(count)
        .map(DestinationId::from_index)
        .collect();
    let held: HashSet<DestinationId> = eval_destinations.iter().copied().collect();
    let selection_repo = dataset.profiles_excluding(&|d| held.contains(&d));
    HoldoutSplit {
        eval_destinations,
        selection_repo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::DeriveOptions;
    use crate::synth::SynthConfig;

    fn dataset() -> SynthDataset {
        SynthConfig {
            name: "split-test".into(),
            seed: 11,
            users: 80,
            destinations: 60,
            cities: 4,
            age_groups: 2,
            archetypes: 3,
            regions: 3,
            leaves_per_region: 3,
            topics: 8,
            mean_reviews_per_user: 10.0,
            review_dispersion: 0.5,
            rating_noise: 0.7,
            preference_gain: 0.8,
            zipf_exponent: 1.0,
            include_demographics: true,
            useful_votes: true,
            derive: DeriveOptions::default(),
        }
        .generate()
    }

    #[test]
    fn holds_out_most_reviewed_destinations() {
        let d = dataset();
        let split = holdout_split(&d, 5, 2);
        assert_eq!(split.eval_destinations.len(), 5);
        let counts = d.corpus.review_counts();
        let min_held = split
            .eval_destinations
            .iter()
            .map(|&dd| counts[dd.index()])
            .min()
            .unwrap();
        let max_rest = (0..counts.len())
            .filter(|&dd| {
                !split
                    .eval_destinations
                    .contains(&DestinationId::from_index(dd))
            })
            .map(|dd| counts[dd])
            .max()
            .unwrap();
        assert!(min_held >= max_rest, "held-out are the busiest");
    }

    #[test]
    fn min_reviews_filter() {
        let d = dataset();
        let split = holdout_split(&d, 1000, 5);
        let counts = d.corpus.review_counts();
        for dd in &split.eval_destinations {
            assert!(counts[dd.index()] >= 5);
        }
    }

    #[test]
    fn selection_profiles_shrink() {
        let d = dataset();
        let split = holdout_split(&d, 10, 1);
        let full: usize = d.repo.iter().map(|(_, p)| p.len()).sum();
        let held: usize = split.selection_repo.iter().map(|(_, p)| p.len()).sum();
        assert!(held < full);
        assert_eq!(split.selection_repo.user_count(), d.repo.user_count());
    }
}
