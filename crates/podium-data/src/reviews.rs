//! Ground-truth opinions: destinations, reviews, topics and usefulness.
//!
//! The opinion-diversity experiments (§8.2) simulate procurement by
//! revealing the held-out reviews of selected users. A review carries the
//! signals the paper's metrics consume: a 1–5 star rating, the set of
//! prevalent *topics* it mentions, each with a sentiment, and the number of
//! "useful" votes it received (Yelp only).

use podium_core::ids::UserId;
use serde::{Deserialize, Serialize};

use crate::taxonomy::CategoryId;

/// Identifier of a destination (restaurant) being reviewed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DestinationId(pub u32);

impl DestinationId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// From index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("destination index exceeds u32::MAX"))
    }
}

/// Identifier of a review topic (food quality, service, price, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TopicId(pub u32);

impl TopicId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// From index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("topic index exceeds u32::MAX"))
    }
}

/// Sentiment of a topic mention within a review.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sentiment {
    /// The reviewer spoke positively about the topic.
    Positive,
    /// The reviewer spoke negatively about the topic.
    Negative,
}

/// A reviewed destination (restaurant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Destination {
    /// Display name.
    pub name: String,
    /// Leaf cuisine category.
    pub category: CategoryId,
    /// City index (into the dataset's city table).
    pub city: u32,
    /// The prevalent topics of this destination's reviews — the topic list
    /// the Topic+Sentiment Coverage metric measures against (§8.2).
    pub topics: Vec<TopicId>,
    /// Latent base quality on the 1–5 star scale (generator internal; kept
    /// for diagnostics).
    pub base_quality: f64,
}

/// One procured opinion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Review {
    /// The reviewing user.
    pub user: UserId,
    /// The destination reviewed.
    pub destination: DestinationId,
    /// Star rating in `1..=5`.
    pub rating: u8,
    /// Topics mentioned, each with a sentiment.
    pub topics: Vec<(TopicId, Sentiment)>,
    /// "Useful" votes received (the Usefulness metric, Yelp only).
    pub useful_votes: u32,
}

/// The full review corpus of a dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReviewCorpus {
    /// All destinations, indexed by [`DestinationId`].
    pub destinations: Vec<Destination>,
    /// All reviews, in generation order.
    pub reviews: Vec<Review>,
    /// Topic display names, indexed by [`TopicId`].
    pub topic_names: Vec<String>,
}

impl ReviewCorpus {
    /// Number of destinations.
    pub fn destination_count(&self) -> usize {
        self.destinations.len()
    }

    /// Number of reviews.
    pub fn review_count(&self) -> usize {
        self.reviews.len()
    }

    /// All reviews of one destination.
    pub fn reviews_of(&self, d: DestinationId) -> impl Iterator<Item = &Review> {
        self.reviews.iter().filter(move |r| r.destination == d)
    }

    /// Review counts per destination, indexed by [`DestinationId`].
    pub fn review_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.destinations.len()];
        for r in &self.reviews {
            counts[r.destination.index()] += 1;
        }
        counts
    }

    /// Mean rating of a destination (0.0 when unreviewed).
    pub fn mean_rating(&self, d: DestinationId) -> f64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for r in self.reviews_of(d) {
            sum += u64::from(r.rating);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> ReviewCorpus {
        ReviewCorpus {
            destinations: vec![
                Destination {
                    name: "Summer Pavilion".into(),
                    category: CategoryId(0),
                    city: 0,
                    topics: vec![TopicId(0), TopicId(1)],
                    base_quality: 4.0,
                },
                Destination {
                    name: "Cheap Eats Corner".into(),
                    category: CategoryId(1),
                    city: 1,
                    topics: vec![TopicId(1)],
                    base_quality: 2.5,
                },
            ],
            reviews: vec![
                Review {
                    user: UserId(0),
                    destination: DestinationId(0),
                    rating: 5,
                    topics: vec![(TopicId(0), Sentiment::Positive)],
                    useful_votes: 3,
                },
                Review {
                    user: UserId(1),
                    destination: DestinationId(0),
                    rating: 3,
                    topics: vec![(TopicId(1), Sentiment::Negative)],
                    useful_votes: 1,
                },
                Review {
                    user: UserId(0),
                    destination: DestinationId(1),
                    rating: 2,
                    topics: vec![],
                    useful_votes: 0,
                },
            ],
            topic_names: vec!["food".into(), "service".into()],
        }
    }

    #[test]
    fn reviews_of_filters_by_destination() {
        let c = corpus();
        assert_eq!(c.reviews_of(DestinationId(0)).count(), 2);
        assert_eq!(c.reviews_of(DestinationId(1)).count(), 1);
    }

    #[test]
    fn review_counts_and_means() {
        let c = corpus();
        assert_eq!(c.review_counts(), vec![2, 1]);
        assert!((c.mean_rating(DestinationId(0)) - 4.0).abs() < 1e-12);
        assert!((c.mean_rating(DestinationId(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_destination_mean_is_zero() {
        let mut c = corpus();
        c.reviews.clear();
        assert_eq!(c.mean_rating(DestinationId(0)), 0.0);
    }
}
