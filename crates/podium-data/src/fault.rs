//! Deterministic, seeded corruption injection for ingestion robustness
//! tests.
//!
//! A [`FaultInjector`] takes a *clean* profile document (the JSON
//! interchange format of [`crate::json`] or the unquoted CSV dialect
//! produced by [`crate::csv::profiles_to_csv`]) and applies a list of
//! [`FaultKind`]s, each defecting **exactly one distinct record**. That
//! contract is what makes quarantine accounting testable: a corpus
//! corrupted with `k` faults must load under
//! [`crate::load::LoadOptions::Lenient`] with exactly `k` quarantine
//! entries, and must be rejected under
//! [`crate::load::LoadOptions::Strict`] with record provenance.
//!
//! The first record is never targeted — it stays pristine as the donor
//! name for [`FaultKind::DuplicateUser`] (guaranteeing the duplicate
//! actually collides with an *accepted* record) and keeps every corrupted
//! corpus partially loadable. [`FaultKind::TruncateDocument`] always cuts
//! inside the final record, so the damage it does is also confined to one
//! record.
//!
//! All randomness comes from a splitmix64 stream seeded at construction:
//! the same seed, document, and fault list always produce byte-identical
//! corruption.

/// One class of corruption the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cut the document short inside its final record.
    TruncateDocument,
    /// Splice non-JSON/non-numeric garbage bytes into one record.
    GarbageBytes,
    /// Replace one score with a `NaN` token.
    NanScore,
    /// Replace one score with a value far outside `[0, 1]`.
    OutOfRangeScore,
    /// Rename one record to collide with the first record's name.
    DuplicateUser,
    /// Remove/mangle the record's required `name` field.
    MissingField,
}

impl FaultKind {
    /// Every fault kind.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TruncateDocument,
        FaultKind::GarbageBytes,
        FaultKind::NanScore,
        FaultKind::OutOfRangeScore,
        FaultKind::DuplicateUser,
        FaultKind::MissingField,
    ];
}

/// Seeded corruption source. See the module docs for the one-fault /
/// one-record contract.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// A new injector; identical seeds replay identical corruption.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, deterministic, and good enough for picking
        // corruption sites.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_range over an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Picks `k` distinct values from `pool` (deterministic partial
    /// Fisher–Yates). Returns `None` when the pool is too small.
    fn pick_distinct(&mut self, mut pool: Vec<usize>, k: usize) -> Option<Vec<usize>> {
        if pool.len() < k {
            return None;
        }
        for i in 0..k {
            let j = i + self.gen_range(pool.len() - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        Some(pool)
    }

    /// Corrupts a clean JSON profile document with `faults`, one distinct
    /// record per fault. Returns `None` when the document cannot honor the
    /// contract: fewer than `faults.len() + 1` records (the first record
    /// is never targeted), more than one [`FaultKind::TruncateDocument`],
    /// or a score-fault target without any numeric score to corrupt.
    pub fn corrupt_json(&mut self, clean: &str, faults: &[FaultKind]) -> Option<String> {
        let scan = crate::json::scan_user_records(clean).ok()?;
        if scan.trailing.is_some() {
            return None; // not a clean document
        }
        let records = scan.records;
        let n = records.len();
        let truncates = faults
            .iter()
            .filter(|f| **f == FaultKind::TruncateDocument)
            .count();
        if truncates > 1 || faults.len() + 1 > n {
            return None;
        }
        // Targets: truncation owns the last record; everything else draws
        // from records 1..(n-1 if truncating else n), all distinct.
        let others: Vec<FaultKind> = faults
            .iter()
            .copied()
            .filter(|f| *f != FaultKind::TruncateDocument)
            .collect();
        let upper = if truncates == 1 { n - 1 } else { n };
        let pool: Vec<usize> = (1..upper).collect();
        let targets = self.pick_distinct(pool, others.len())?;

        // Truncation goes first (while the last record's clean-text span is
        // still valid), then record-local edits from the highest span
        // downward so earlier offsets stay valid. Every other target lies
        // strictly before the truncated record, so the cut never disturbs
        // their spans.
        let mut edits: Vec<(usize, FaultKind)> = others
            .into_iter()
            .zip(targets)
            .map(|(f, t)| (t, f))
            .collect();
        edits.sort_by_key(|&(t, _)| std::cmp::Reverse(t));
        let donor_name = json_name_value(&clean[records[0].start..records[0].end])?;
        let mut text = clean.to_owned();
        if truncates == 1 {
            let span = records[n - 1];
            // Any proper prefix of a balanced object is unbalanced, so any
            // cut strictly inside the span truncates exactly this record.
            let mut cut = span.start + 1 + self.gen_range(span.end - span.start - 1);
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut.max(span.start + 1));
        }
        for (t, fault) in edits {
            let span = records[t];
            let local = text[span.start..span.end].to_owned();
            let patched = match fault {
                FaultKind::NanScore => replace_first_score(&local, "NaN")?,
                FaultKind::OutOfRangeScore => replace_first_score(&local, "42.5")?,
                FaultKind::DuplicateUser => replace_name_value(&local, &donor_name)?,
                FaultKind::MissingField => mangle_name_key(&local)?,
                FaultKind::GarbageBytes => {
                    let garbage: String = (0..1 + self.gen_range(8))
                        .map(|_| {
                            const SAFE: &[u8] = b"@#$%^&*;~";
                            SAFE[self.gen_range(SAFE.len())] as char
                        })
                        .collect();
                    let mut s = local.clone();
                    // Right after the opening `{`: stays brace-balanced so
                    // only this record is lost, but is no longer JSON.
                    s.insert_str(1, &garbage);
                    s
                }
                // podium-lint: allow(unreachable) — TruncateDocument is handled by the document-level branch, never per-record
                FaultKind::TruncateDocument => unreachable!("handled below"),
            };
            text.replace_range(span.start..span.end, &patched);
        }
        Some(text)
    }

    /// Corrupts a clean CSV profile document (the unquoted dialect written
    /// by [`crate::csv::profiles_to_csv`]) with `faults`, one distinct row
    /// per fault. Same contract and `None` conditions as
    /// [`FaultInjector::corrupt_json`].
    pub fn corrupt_csv(&mut self, clean: &str, faults: &[FaultKind]) -> Option<String> {
        let mut lines: Vec<String> = clean.lines().map(str::to_owned).collect();
        if lines.len() < 2 {
            return None;
        }
        let rows = lines.len() - 1; // minus header
        let truncates = faults
            .iter()
            .filter(|f| **f == FaultKind::TruncateDocument)
            .count();
        if truncates > 1 || faults.len() + 1 > rows {
            return None;
        }
        let others: Vec<FaultKind> = faults
            .iter()
            .copied()
            .filter(|f| *f != FaultKind::TruncateDocument)
            .collect();
        let upper = if truncates == 1 { rows - 1 } else { rows };
        let pool: Vec<usize> = (1..upper).collect();
        let targets = self.pick_distinct(pool, others.len())?;
        let donor_name = lines[1].split(',').next()?.to_owned();
        for (fault, t) in others.into_iter().zip(targets) {
            let row = &lines[1 + t];
            let mut fields: Vec<String> = row.split(',').map(str::to_owned).collect();
            match fault {
                FaultKind::NanScore | FaultKind::OutOfRangeScore | FaultKind::GarbageBytes => {
                    let col = fields
                        .iter()
                        .enumerate()
                        .skip(1)
                        .find(|(_, c)| !c.trim().is_empty())
                        .map(|(i, _)| i)?;
                    fields[col] = match fault {
                        FaultKind::NanScore => "NaN".into(),
                        FaultKind::OutOfRangeScore => "7.7".into(),
                        _ => format!("{}@#$", fields[col]),
                    };
                }
                FaultKind::DuplicateUser => fields[0] = donor_name.clone(),
                FaultKind::MissingField => {
                    fields.pop();
                    if fields.is_empty() {
                        return None;
                    }
                }
                // podium-lint: allow(unreachable) — TruncateDocument is handled by the document-level branch, never per-record
                FaultKind::TruncateDocument => unreachable!("handled below"),
            }
            lines[1 + t] = fields.join(",");
        }
        if truncates == 1 {
            let last = lines.len() - 1;
            // Cut at the row's last comma: the row loses a field and
            // becomes ragged no matter how many columns it has.
            let cut = lines[last].rfind(',')?;
            lines[last].truncate(cut);
        }
        Some(lines.join("\n") + "\n")
    }
}

/// One class of corruption for the *structured* JSON documents (taxonomy
/// and inference rules), applied by [`FaultInjector::corrupt_taxonomy`]
/// and [`FaultInjector::corrupt_rules`]. Same one-fault / one-record
/// contract as [`FaultKind`]: the corrupted document stays valid JSON and
/// each fault defects exactly one record, so `k` faults quarantine
/// exactly `k` records under Lenient and fail Strict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructuredFault {
    /// Remove/mangle a required field (`name` for taxonomy records,
    /// `premise`/`prefix` for rules).
    MissingField,
    /// Rename one taxonomy category to collide with the first record's
    /// name. Taxonomy only.
    DuplicateName,
    /// Point one category's `parent` at a name defined nowhere. Taxonomy
    /// only.
    UnknownReference,
    /// Close a cycle: a category becomes its own parent; an implication's
    /// conclusion becomes its premise.
    CycleEdge,
    /// Set an implication's `threshold` far outside `[0, 1]`. Rules only.
    BadThreshold,
    /// Set a rule's `type` to an unknown discriminator. Rules only.
    WrongType,
}

impl StructuredFault {
    /// Faults applicable to taxonomy documents.
    pub const TAXONOMY: [StructuredFault; 4] = [
        StructuredFault::MissingField,
        StructuredFault::DuplicateName,
        StructuredFault::UnknownReference,
        StructuredFault::CycleEdge,
    ];
    /// Faults applicable to inference-rule documents.
    pub const RULES: [StructuredFault; 4] = [
        StructuredFault::MissingField,
        StructuredFault::BadThreshold,
        StructuredFault::WrongType,
        StructuredFault::CycleEdge,
    ];
}

use serde::value::Value;

/// Returns the string value of `key` in an object record.
fn obj_str(rec: &Value, key: &str) -> Option<String> {
    rec.get(key).and_then(Value::as_str).map(str::to_owned)
}

/// Sets (or inserts) `key` in an object record.
fn obj_set(rec: &mut Value, key: &str, value: Value) -> Option<()> {
    let Value::Object(pairs) = rec else {
        return None;
    };
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => pairs.push((key.to_owned(), value)),
    }
    Some(())
}

/// Renames `key` in an object record (making the original field missing).
fn obj_rename_key(rec: &mut Value, key: &str, to: &str) -> Option<()> {
    let Value::Object(pairs) = rec else {
        return None;
    };
    let (k, _) = pairs.iter_mut().find(|(k, _)| k == key)?;
    *k = to.to_owned();
    Some(())
}

/// Removes `key` from an object record.
fn obj_remove(rec: &mut Value, key: &str) -> Option<()> {
    let Value::Object(pairs) = rec else {
        return None;
    };
    let at = pairs.iter().position(|(k, _)| k == key)?;
    pairs.remove(at);
    Some(())
}

impl FaultInjector {
    /// Corrupts a clean taxonomy JSON document (the format of
    /// [`crate::taxonomy::taxonomy_from_json`]) with `faults`, one
    /// distinct record per fault.
    ///
    /// Targets are restricted to records no other record references as a
    /// parent — defecting a referenced category would cascade-quarantine
    /// its whole subtree and break the `k` faults / `k` quarantines
    /// contract. The first record is never targeted (it donates its name
    /// for [`StructuredFault::DuplicateName`]). Returns `None` when the
    /// document cannot honor the contract: a fault not in
    /// [`StructuredFault::TAXONOMY`], or fewer unreferenced non-first
    /// records than faults.
    pub fn corrupt_taxonomy(&mut self, clean: &str, faults: &[StructuredFault]) -> Option<String> {
        if faults
            .iter()
            .any(|f| !StructuredFault::TAXONOMY.contains(f))
        {
            return None;
        }
        let mut doc: Value = serde_json::from_str(clean).ok()?;
        let records_ro = doc.get("categories")?.as_array()?;
        let names: Vec<String> = records_ro
            .iter()
            .map(|r| obj_str(r, "name"))
            .collect::<Option<_>>()?;
        let referenced: Vec<String> = records_ro
            .iter()
            .filter_map(|r| obj_str(r, "parent"))
            .collect();
        let donor = names.first()?.clone();
        // A parent name no record defines; lengthen until it cannot clash.
        let mut missing = "__missing_parent__".to_owned();
        while names.contains(&missing) {
            missing.push('_');
        }
        let pool: Vec<usize> = (1..names.len())
            .filter(|&i| !referenced.contains(&names[i]))
            .collect();
        let targets = self.pick_distinct(pool, faults.len())?;

        let Value::Object(top) = &mut doc else {
            return None;
        };
        let (_, Value::Array(records)) = top.iter_mut().find(|(k, _)| k == "categories")? else {
            return None;
        };
        for (&fault, &t) in faults.iter().zip(&targets) {
            let own_name = names[t].clone();
            let rec = &mut records[t];
            match fault {
                StructuredFault::MissingField => obj_rename_key(rec, "name", "xame")?,
                StructuredFault::DuplicateName => {
                    obj_set(rec, "name", Value::String(donor.clone()))?
                }
                StructuredFault::UnknownReference => {
                    obj_set(rec, "parent", Value::String(missing.clone()))?
                }
                StructuredFault::CycleEdge => obj_set(rec, "parent", Value::String(own_name))?,
                // podium-lint: allow(unreachable) — the applicable-fault filter above admits only the matched kinds
                _ => unreachable!("filtered above"),
            }
        }
        serde_json::to_string_pretty(&doc).ok()
    }

    /// Corrupts a clean inference-rules JSON document (the format of
    /// [`crate::inference::rules_from_json`]) with `faults`, one distinct
    /// record per fault.
    ///
    /// Rules do not cascade (rejecting one rule never invalidates
    /// another in a cycle-free document), so any record but the first is
    /// a candidate; [`StructuredFault::BadThreshold`] and
    /// [`StructuredFault::CycleEdge`] additionally need an `implies`
    /// record. Constrained faults pick their targets first. Returns
    /// `None` when a fault is not in [`StructuredFault::RULES`] or not
    /// enough compatible records exist.
    pub fn corrupt_rules(&mut self, clean: &str, faults: &[StructuredFault]) -> Option<String> {
        if faults.iter().any(|f| !StructuredFault::RULES.contains(f)) {
            return None;
        }
        let mut doc: Value = serde_json::from_str(clean).ok()?;
        let records_ro = doc.get("rules")?.as_array()?;
        let kinds: Vec<String> = records_ro
            .iter()
            .map(|r| obj_str(r, "type"))
            .collect::<Option<_>>()?;
        if faults.len() + 1 > kinds.len() {
            return None;
        }
        // Assign implies-only faults first so unconstrained ones cannot
        // starve them of targets.
        let mut order: Vec<StructuredFault> = faults.to_vec();
        order.sort_by_key(|f| {
            !matches!(
                f,
                StructuredFault::BadThreshold | StructuredFault::CycleEdge
            )
        });
        let mut free: Vec<usize> = (1..kinds.len()).collect();
        let mut assignment: Vec<(usize, StructuredFault)> = Vec::with_capacity(order.len());
        for fault in order {
            let eligible: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&i| {
                    !matches!(
                        fault,
                        StructuredFault::BadThreshold | StructuredFault::CycleEdge
                    ) || kinds[i] == "implies"
                })
                .collect();
            if eligible.is_empty() {
                return None;
            }
            let t = eligible[self.gen_range(eligible.len())];
            free.retain(|&i| i != t);
            assignment.push((t, fault));
        }

        let Value::Object(top) = &mut doc else {
            return None;
        };
        let (_, Value::Array(records)) = top.iter_mut().find(|(k, _)| k == "rules")? else {
            return None;
        };
        for (t, fault) in assignment {
            let rec = &mut records[t];
            match fault {
                StructuredFault::MissingField => {
                    let key = if kinds[t] == "implies" {
                        "premise"
                    } else {
                        "prefix"
                    };
                    obj_remove(rec, key)?
                }
                StructuredFault::BadThreshold => obj_set(
                    rec,
                    "threshold",
                    Value::Number(serde::value::Number::Float(42.5)),
                )?,
                StructuredFault::WrongType => {
                    obj_set(rec, "type", Value::String("frobnicate".to_owned()))?
                }
                StructuredFault::CycleEdge => {
                    let premise = obj_str(rec, "premise")?;
                    obj_set(rec, "conclusion", Value::String(premise))?
                }
                // podium-lint: allow(unreachable) — the applicable-fault filter above admits only the matched kinds
                _ => unreachable!("filtered above"),
            }
        }
        serde_json::to_string_pretty(&doc).ok()
    }
}

/// Extracts the value of the `"name"` field from a clean JSON record.
fn json_name_value(record: &str) -> Option<String> {
    let (_, key_end) = find_string_token(record, "name")?;
    let rest = &record[key_end + 1..]; // past the key's closing quote
    let open = rest.find('"')?;
    let close = rest[open + 1..].find('"')?;
    Some(rest[open + 1..open + 1 + close].to_owned())
}

/// Replaces the value of the `"name"` field with `new_name`.
fn replace_name_value(record: &str, new_name: &str) -> Option<String> {
    let (_, key_end) = find_string_token(record, "name")?;
    let rest = &record[key_end + 1..]; // past the key's closing quote
    let open = key_end + 1 + rest.find('"')? + 1;
    let close = open + record[open..].find('"')?;
    let mut out = record.to_owned();
    out.replace_range(open..close, new_name);
    Some(out)
}

/// Mangles the `"name"` key so the required field is missing.
fn mangle_name_key(record: &str) -> Option<String> {
    let (start, _) = find_string_token(record, "name")?;
    let mut out = record.to_owned();
    out.replace_range(start..start + 4, "xame");
    Some(out)
}

/// Finds the content span `(start, end)` of the first JSON string token
/// equal to `content`, scanning string-aware (escapes honored).
fn find_string_token(text: &str, content: &str) -> Option<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            let mut escaped = false;
            while j < bytes.len() {
                match bytes[j] {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= bytes.len() {
                return None;
            }
            if &text[start..j] == content {
                return Some((start, j));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    None
}

/// Replaces the first number that appears after the `"properties"` key
/// (outside strings) with `replacement`.
fn replace_first_score(record: &str, replacement: &str) -> Option<String> {
    let (_, props_end) = find_string_token(record, "properties")?;
    let bytes = record.as_bytes();
    let mut i = props_end + 1; // past the key's closing quote
    let mut in_string = false;
    let mut escaped = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
        } else if b == b'"' {
            in_string = true;
        } else if b.is_ascii_digit() || b == b'-' {
            let start = i;
            while i < bytes.len()
                && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                i += 1;
            }
            let mut out = record.to_owned();
            out.replace_range(start..i, replacement);
            return Some(out);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{DataErrorKind, LoadOptions};

    fn clean_json(users: usize) -> String {
        let mut repo = podium_core::profile::UserRepository::new();
        for i in 0..users {
            let u = repo.add_user(format!("u{i}"));
            let p = repo.intern_property(format!("p{}", i % 3));
            repo.set_score(u, p, 0.25).unwrap();
        }
        crate::json::profiles_to_json(&repo).unwrap()
    }

    #[test]
    fn injection_is_deterministic() {
        let doc = clean_json(6);
        let faults = [FaultKind::NanScore, FaultKind::DuplicateUser];
        let a = FaultInjector::new(7).corrupt_json(&doc, &faults).unwrap();
        let b = FaultInjector::new(7).corrupt_json(&doc, &faults).unwrap();
        let c = FaultInjector::new(8).corrupt_json(&doc, &faults).unwrap();
        assert_eq!(a, b, "same seed, same corruption");
        assert_ne!(a, c, "different seed, different sites");
    }

    #[test]
    fn each_json_fault_quarantines_exactly_one_record() {
        let doc = clean_json(8);
        for fault in FaultKind::ALL {
            let corrupted = FaultInjector::new(3)
                .corrupt_json(&doc, &[fault])
                .unwrap_or_else(|| panic!("{fault:?} not applicable"));
            let (repo, report) =
                crate::json::profiles_from_json_opts(&corrupted, LoadOptions::Lenient)
                    .unwrap_or_else(|e| panic!("{fault:?}: lenient load failed: {e}"));
            assert_eq!(report.quarantined_count(), 1, "{fault:?}");
            assert_eq!(report.accepted, 7, "{fault:?}");
            assert_eq!(repo.user_count(), 7, "{fault:?}");
            assert!(
                crate::json::profiles_from_json_opts(&corrupted, LoadOptions::Strict).is_err(),
                "{fault:?} must fail strict"
            );
        }
    }

    #[test]
    fn each_csv_fault_quarantines_exactly_one_row() {
        let mut repo = podium_core::profile::UserRepository::new();
        for i in 0..8 {
            let u = repo.add_user(format!("u{i}"));
            let p = repo.intern_property("p0");
            repo.set_score(u, p, 0.5).unwrap();
        }
        let doc = crate::csv::profiles_to_csv(&repo);
        for fault in FaultKind::ALL {
            let corrupted = FaultInjector::new(11)
                .corrupt_csv(&doc, &[fault])
                .unwrap_or_else(|| panic!("{fault:?} not applicable"));
            let (_, report) = crate::csv::profiles_from_csv_opts(&corrupted, LoadOptions::Lenient)
                .unwrap_or_else(|e| panic!("{fault:?}: lenient load failed: {e}"));
            assert_eq!(report.quarantined_count(), 1, "{fault:?}\n{corrupted}");
            assert_eq!(report.accepted, 7, "{fault:?}");
            assert!(
                crate::csv::profiles_from_csv_opts(&corrupted, LoadOptions::Strict).is_err(),
                "{fault:?} must fail strict"
            );
        }
    }

    #[test]
    fn duplicate_fault_collides_with_first_record() {
        let doc = clean_json(5);
        let corrupted = FaultInjector::new(1)
            .corrupt_json(&doc, &[FaultKind::DuplicateUser])
            .unwrap();
        let (_, report) =
            crate::json::profiles_from_json_opts(&corrupted, LoadOptions::Lenient).unwrap();
        match &report.quarantined[0].error.kind {
            DataErrorKind::Duplicate { name } => assert_eq!(name, "u0"),
            other => panic!("expected Duplicate, got {other:?}"),
        }
    }

    #[test]
    fn too_few_records_refused() {
        let doc = clean_json(2);
        assert!(FaultInjector::new(0)
            .corrupt_json(&doc, &[FaultKind::NanScore, FaultKind::GarbageBytes])
            .is_none());
    }

    #[test]
    fn each_taxonomy_fault_quarantines_exactly_one_record() {
        let doc = crate::taxonomy::taxonomy_to_json(&crate::taxonomy::Taxonomy::generate(3, 3));
        for fault in StructuredFault::TAXONOMY {
            let corrupted = FaultInjector::new(5)
                .corrupt_taxonomy(&doc, &[fault])
                .unwrap_or_else(|| panic!("{fault:?} not applicable"));
            let (_, report) = crate::taxonomy::taxonomy_from_json(&corrupted, LoadOptions::Lenient)
                .unwrap_or_else(|e| panic!("{fault:?}: lenient load failed: {e}"));
            assert_eq!(report.quarantined_count(), 1, "{fault:?}\n{corrupted}");
            assert_eq!(report.accepted, 12, "{fault:?}");
            assert!(
                crate::taxonomy::taxonomy_from_json(&corrupted, LoadOptions::Strict).is_err(),
                "{fault:?} must fail strict"
            );
        }
    }

    #[test]
    fn each_rules_fault_quarantines_exactly_one_record() {
        let mut engine = crate::inference::InferenceEngine::new();
        for i in 0..6 {
            engine = engine.with_rule(crate::inference::Rule::Implies {
                premise: format!("p{i}"),
                conclusion: format!("q{i}"),
                threshold: 0.5,
            });
        }
        engine = engine.with_rule(crate::inference::Rule::Functional {
            prefix: "livesIn ".into(),
        });
        let doc = crate::inference::rules_to_json(&engine);
        for fault in StructuredFault::RULES {
            let corrupted = FaultInjector::new(5)
                .corrupt_rules(&doc, &[fault])
                .unwrap_or_else(|| panic!("{fault:?} not applicable"));
            let (_, report) = crate::inference::rules_from_json(&corrupted, LoadOptions::Lenient)
                .unwrap_or_else(|e| panic!("{fault:?}: lenient load failed: {e}"));
            assert_eq!(report.quarantined_count(), 1, "{fault:?}\n{corrupted}");
            assert_eq!(report.accepted, 6, "{fault:?}");
            assert!(
                crate::inference::rules_from_json(&corrupted, LoadOptions::Strict).is_err(),
                "{fault:?} must fail strict"
            );
        }
    }

    #[test]
    fn structured_faults_reject_wrong_document_kind() {
        let taxonomy =
            crate::taxonomy::taxonomy_to_json(&crate::taxonomy::Taxonomy::example_cuisines());
        assert!(FaultInjector::new(0)
            .corrupt_taxonomy(&taxonomy, &[StructuredFault::BadThreshold])
            .is_none());
        let rules = crate::inference::rules_to_json(
            &crate::inference::InferenceEngine::new()
                .with_rule(crate::inference::Rule::Functional { prefix: "x".into() }),
        );
        assert!(FaultInjector::new(0)
            .corrupt_rules(&rules, &[StructuredFault::DuplicateName])
            .is_none());
        // Rules doc with no implies record cannot host an implies-only fault.
        assert!(FaultInjector::new(0)
            .corrupt_rules(&rules, &[StructuredFault::CycleEdge])
            .is_none());
    }

    #[test]
    fn structured_injection_is_deterministic() {
        let doc = crate::taxonomy::taxonomy_to_json(&crate::taxonomy::Taxonomy::generate(4, 4));
        let faults = [StructuredFault::CycleEdge, StructuredFault::MissingField];
        let a = FaultInjector::new(3)
            .corrupt_taxonomy(&doc, &faults)
            .unwrap();
        let b = FaultInjector::new(3)
            .corrupt_taxonomy(&doc, &faults)
            .unwrap();
        assert_eq!(a, b);
    }
}
