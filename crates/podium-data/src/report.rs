//! Persisted quarantine reports and replay.
//!
//! A lenient load ([`crate::load::LoadOptions::Lenient`]) produces a
//! [`LoadReport`] whose quarantine entries carry everything needed to find
//! and fix the defective records: error kind, provenance (record index,
//! line, name), and a snippet. This module makes that report a durable
//! artifact:
//!
//! * [`save_report`] serializes a report (plus the loader format it came
//!   from) to a self-contained JSON document;
//! * [`load_report`] reads it back, with the same Strict-style validation
//!   the loaders apply to data files;
//! * [`replay`] re-loads a (possibly edited) source document leniently and
//!   matches the saved entries against the fresh quarantine, classifying
//!   each as **fixed** or **still defective**, and surfacing any **new**
//!   defects the edit introduced.
//!
//! Matching is by record *name* when the saved entry has one (names are
//! stable across edits that insert or delete records) and by record index
//! otherwise (rules records, syntax-mangled records that never yielded a
//! name).

use serde_json::Value;

use crate::load::{
    DataError, DataErrorKind, LoadOptions, LoadReport, Provenance, QuarantinedRecord,
};

/// Source tag for report-file errors.
const SOURCE: &str = "quarantine report";

/// Which loader produced (and will replay) the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayFormat {
    /// [`crate::json::profiles_from_json_opts`].
    JsonProfiles,
    /// [`crate::csv::profiles_from_csv_opts`].
    CsvProfiles,
    /// [`crate::taxonomy::taxonomy_from_json`].
    Taxonomy,
    /// [`crate::inference::rules_from_json`].
    Rules,
}

impl ReplayFormat {
    /// All formats, for CLI enumeration.
    pub const ALL: [ReplayFormat; 4] = [
        ReplayFormat::JsonProfiles,
        ReplayFormat::CsvProfiles,
        ReplayFormat::Taxonomy,
        ReplayFormat::Rules,
    ];

    /// The stable tag stored in report files.
    pub fn tag(self) -> &'static str {
        match self {
            ReplayFormat::JsonProfiles => "json-profiles",
            ReplayFormat::CsvProfiles => "csv-profiles",
            ReplayFormat::Taxonomy => "taxonomy",
            ReplayFormat::Rules => "rules",
        }
    }

    /// Parses a tag back.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.tag() == tag)
    }

    /// Leniently loads `document` with this format's loader and returns
    /// just the accounting.
    pub fn lenient_report(self, document: &str) -> Result<LoadReport, DataError> {
        Ok(match self {
            ReplayFormat::JsonProfiles => {
                crate::json::profiles_from_json_opts(document, LoadOptions::Lenient)?.1
            }
            ReplayFormat::CsvProfiles => {
                crate::csv::profiles_from_csv_opts(document, LoadOptions::Lenient)?.1
            }
            ReplayFormat::Taxonomy => {
                crate::taxonomy::taxonomy_from_json(document, LoadOptions::Lenient)?.1
            }
            ReplayFormat::Rules => {
                crate::inference::rules_from_json(document, LoadOptions::Lenient)?.1
            }
        })
    }
}

/// One quarantine entry as persisted: owned strings only, so a report
/// outlives the loader that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedEntry {
    /// Stable error-kind tag ([`DataErrorKind::tag`]).
    pub kind: String,
    /// Human-readable error message.
    pub message: String,
    /// Loader source tag (e.g. `"json profiles"`).
    pub source: String,
    /// 0-based record index, when the fault was record-shaped.
    pub record: Option<usize>,
    /// 1-based source line, when derivable.
    pub line: Option<usize>,
    /// Parsed record name, when one existed.
    pub name: Option<String>,
    /// Truncated raw-record snippet.
    pub snippet: String,
}

impl SavedEntry {
    fn from_quarantined(q: &QuarantinedRecord) -> Self {
        Self {
            kind: q.error.kind.tag().to_owned(),
            message: q.error.to_string(),
            source: q.error.provenance.source.to_owned(),
            record: q.error.provenance.record,
            line: q.error.provenance.line,
            name: q.error.provenance.name.clone(),
            snippet: q.snippet.clone(),
        }
    }

    /// A one-line human-readable rendering (used by `quarantine inspect`).
    pub fn describe(&self) -> String {
        let mut place = String::new();
        if let Some(r) = self.record {
            place.push_str(&format!("record {r}"));
        }
        if let Some(l) = self.line {
            if !place.is_empty() {
                place.push_str(", ");
            }
            place.push_str(&format!("line {l}"));
        }
        if place.is_empty() {
            place.push_str("document");
        }
        if let Some(n) = &self.name {
            place.push_str(&format!(" ({n})"));
        }
        format!("[{}] {} — {}", self.kind, place, self.message)
    }
}

/// A persisted quarantine report.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedReport {
    /// Loader format of the source document.
    pub format: ReplayFormat,
    /// Records accepted by the original load.
    pub accepted: usize,
    /// The quarantined entries, in document order.
    pub entries: Vec<SavedEntry>,
}

fn opt_usize(n: Option<usize>) -> Value {
    match n {
        Some(n) => Value::Number(serde_json::Number::PosInt(n as u64)),
        None => Value::Null,
    }
}

fn opt_string(s: &Option<String>) -> Value {
    match s {
        Some(s) => Value::String(s.clone()),
        None => Value::Null,
    }
}

/// Serializes `report` to the persisted JSON format (pretty-printed; the
/// file is meant to be read by humans as well as `quarantine replay`).
pub fn save_report(report: &LoadReport, format: ReplayFormat) -> String {
    let entries: Vec<Value> = report
        .quarantined
        .iter()
        .map(|q| {
            let e = SavedEntry::from_quarantined(q);
            Value::Object(vec![
                ("kind".to_owned(), Value::String(e.kind)),
                ("message".to_owned(), Value::String(e.message)),
                ("source".to_owned(), Value::String(e.source)),
                ("record".to_owned(), opt_usize(e.record)),
                ("line".to_owned(), opt_usize(e.line)),
                ("name".to_owned(), opt_string(&e.name)),
                ("snippet".to_owned(), Value::String(e.snippet)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("format".to_owned(), Value::String(format.tag().to_owned())),
        (
            "accepted".to_owned(),
            Value::Number(serde_json::Number::PosInt(report.accepted as u64)),
        ),
        ("quarantined".to_owned(), Value::Array(entries)),
    ]);
    serde_json::to_string_pretty(&doc).expect("report serialization is infallible")
}

fn schema(message: impl Into<String>) -> DataError {
    DataError::new(
        DataErrorKind::Schema {
            message: message.into(),
        },
        Provenance::document(SOURCE),
    )
}

/// Parses a persisted report. Malformed report files are fatal (they are
/// artifacts this crate wrote, not noisy third-party data).
pub fn load_report(text: &str) -> Result<SavedReport, DataError> {
    let doc: Value = serde_json::from_str(text).map_err(|e| {
        DataError::new(
            DataErrorKind::Syntax {
                message: e.to_string(),
            },
            Provenance::document(SOURCE).at_line(e.line()),
        )
    })?;
    let format_tag = doc
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| schema("report needs a string \"format\""))?;
    let format = ReplayFormat::from_tag(format_tag)
        .ok_or_else(|| schema(format!("unknown report format '{format_tag}'")))?;
    let accepted = doc
        .get("accepted")
        .and_then(Value::as_u64)
        .ok_or_else(|| schema("report needs a numeric \"accepted\""))? as usize;
    let raw_entries = doc
        .get("quarantined")
        .and_then(Value::as_array)
        .ok_or_else(|| schema("report needs a \"quarantined\" array"))?;
    let mut entries = Vec::with_capacity(raw_entries.len());
    for (i, raw) in raw_entries.iter().enumerate() {
        let get_str = |key: &str| -> Result<String, DataError> {
            raw.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| schema(format!("entry {i} needs a string \"{key}\"")))
        };
        entries.push(SavedEntry {
            kind: get_str("kind")?,
            message: get_str("message")?,
            source: get_str("source")?,
            record: raw
                .get("record")
                .and_then(Value::as_u64)
                .map(|n| n as usize),
            line: raw.get("line").and_then(Value::as_u64).map(|n| n as usize),
            name: raw.get("name").and_then(Value::as_str).map(str::to_owned),
            snippet: get_str("snippet")?,
        });
    }
    Ok(SavedReport {
        format,
        accepted,
        entries,
    })
}

/// What became of one saved entry on replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayStatus {
    /// The record no longer quarantines — the edit fixed it.
    Fixed,
    /// The record still quarantines.
    StillDefective {
        /// The fresh error-kind tag (may differ from the saved one).
        kind: String,
        /// The fresh error message.
        message: String,
    },
}

/// One saved entry paired with its replay outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedEntry {
    /// The entry as it was saved.
    pub saved: SavedEntry,
    /// What happened on replay.
    pub status: ReplayStatus,
}

/// The full replay outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Records the fresh lenient load accepted.
    pub accepted: usize,
    /// Each saved entry with its fate.
    pub entries: Vec<ReplayedEntry>,
    /// Fresh quarantine entries that match no saved entry — defects the
    /// edit introduced (or that shifted identity).
    pub new_defects: Vec<SavedEntry>,
}

impl ReplayOutcome {
    /// Whether every saved defect is fixed and no new ones appeared.
    pub fn is_clean(&self) -> bool {
        self.new_defects.is_empty() && self.entries.iter().all(|e| e.status == ReplayStatus::Fixed)
    }

    /// Count of still-defective saved entries.
    pub fn still_defective(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e.status, ReplayStatus::Fixed))
            .count()
    }

    /// Count of fixed saved entries.
    pub fn fixed(&self) -> usize {
        self.entries.len() - self.still_defective()
    }
}

/// Re-loads `document` (typically the edited source file) with the
/// report's loader in Lenient mode and matches the saved entries against
/// the fresh quarantine. Document-level faults (unparseable envelope)
/// remain fatal, exactly as in a normal lenient load.
pub fn replay(saved: &SavedReport, document: &str) -> Result<ReplayOutcome, DataError> {
    let fresh = saved.format.lenient_report(document)?;
    let fresh_entries: Vec<SavedEntry> = fresh
        .quarantined
        .iter()
        .map(SavedEntry::from_quarantined)
        .collect();
    let mut consumed = vec![false; fresh_entries.len()];
    let mut entries = Vec::with_capacity(saved.entries.len());
    for entry in &saved.entries {
        // Name-first matching: names survive record insertion/deletion;
        // indices are the fallback identity for nameless records.
        let hit = fresh_entries.iter().enumerate().position(|(i, f)| {
            !consumed[i]
                && match (&entry.name, &f.name) {
                    (Some(a), Some(b)) => a == b,
                    _ => entry.record.is_some() && entry.record == f.record,
                }
        });
        let status = match hit {
            Some(i) => {
                consumed[i] = true;
                ReplayStatus::StillDefective {
                    kind: fresh_entries[i].kind.clone(),
                    message: fresh_entries[i].message.clone(),
                }
            }
            None => ReplayStatus::Fixed,
        };
        entries.push(ReplayedEntry {
            saved: entry.clone(),
            status,
        });
    }
    let new_defects = fresh_entries
        .into_iter()
        .zip(&consumed)
        .filter(|(_, &c)| !c)
        .map(|(f, _)| f)
        .collect();
    Ok(ReplayOutcome {
        accepted: fresh.accepted,
        entries,
        new_defects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultKind};
    use crate::json::{profiles_from_json_opts, profiles_to_json};

    fn clean_doc(users: usize) -> String {
        let mut repo = podium_core::profile::UserRepository::new();
        for i in 0..users {
            let u = repo.add_user(format!("u{i}"));
            let p = repo.intern_property(format!("p{}", i % 3));
            repo.set_score(u, p, 0.4).unwrap();
        }
        profiles_to_json(&repo).unwrap()
    }

    fn corrupted_report(doc: &str, faults: &[FaultKind]) -> (String, LoadReport) {
        let corrupted = FaultInjector::new(5).corrupt_json(doc, faults).unwrap();
        let (_, report) = profiles_from_json_opts(&corrupted, LoadOptions::Lenient).unwrap();
        (corrupted, report)
    }

    #[test]
    fn save_load_round_trip_preserves_entries() {
        let doc = clean_doc(8);
        let (_, report) = corrupted_report(&doc, &[FaultKind::NanScore, FaultKind::DuplicateUser]);
        let text = save_report(&report, ReplayFormat::JsonProfiles);
        let saved = load_report(&text).unwrap();
        assert_eq!(saved.format, ReplayFormat::JsonProfiles);
        assert_eq!(saved.accepted, report.accepted);
        assert_eq!(saved.entries.len(), 2);
        for (entry, q) in saved.entries.iter().zip(&report.quarantined) {
            assert_eq!(entry.kind, q.error.kind.tag());
            assert_eq!(entry.record, q.error.provenance.record);
            assert_eq!(entry.snippet, q.snippet);
            assert!(!entry.describe().is_empty());
        }
    }

    #[test]
    fn replay_against_fixed_document_reports_all_fixed() {
        let doc = clean_doc(8);
        let (_, report) = corrupted_report(&doc, &[FaultKind::OutOfRangeScore]);
        let saved = load_report(&save_report(&report, ReplayFormat::JsonProfiles)).unwrap();
        // "Editing" the file back to the clean original fixes everything.
        let outcome = replay(&saved, &doc).unwrap();
        assert!(outcome.is_clean(), "{outcome:?}");
        assert_eq!(outcome.fixed(), 1);
        assert_eq!(outcome.accepted, 8);
    }

    #[test]
    fn replay_against_unchanged_document_reports_still_defective() {
        let doc = clean_doc(8);
        let (corrupted, report) =
            corrupted_report(&doc, &[FaultKind::NanScore, FaultKind::MissingField]);
        let saved = load_report(&save_report(&report, ReplayFormat::JsonProfiles)).unwrap();
        let outcome = replay(&saved, &corrupted).unwrap();
        assert_eq!(outcome.still_defective(), 2, "{outcome:?}");
        assert!(outcome.new_defects.is_empty());
        assert!(!outcome.is_clean());
    }

    #[test]
    fn replay_surfaces_new_defects() {
        let doc = clean_doc(8);
        let (_, report) = corrupted_report(&doc, &[FaultKind::NanScore]);
        let saved = load_report(&save_report(&report, ReplayFormat::JsonProfiles)).unwrap();
        // The "edit" fixed the original defect but introduced a different
        // one (different seed picks a different record).
        let other = FaultInjector::new(99)
            .corrupt_json(&doc, &[FaultKind::DuplicateUser])
            .unwrap();
        let outcome = replay(&saved, &other).unwrap();
        // Either the original entry matched the new defect (same record by
        // chance) or it shows up as new; the counts must balance.
        assert_eq!(
            outcome.still_defective() + outcome.new_defects.len(),
            1,
            "{outcome:?}"
        );
    }

    #[test]
    fn replay_covers_every_format() {
        let taxonomy_doc = r#"{ "categories": [ { "name": "Food" },
            { "name": "Latin", "parent": "Fodo" } ] }"#;
        let (_, report) =
            crate::taxonomy::taxonomy_from_json(taxonomy_doc, LoadOptions::Lenient).unwrap();
        let saved = load_report(&save_report(&report, ReplayFormat::Taxonomy)).unwrap();
        let fixed_doc = r#"{ "categories": [ { "name": "Food" },
            { "name": "Latin", "parent": "Food" } ] }"#;
        let outcome = replay(&saved, fixed_doc).unwrap();
        assert!(outcome.is_clean(), "{outcome:?}");

        let rules_doc = r#"{ "rules": [ { "type": "implies", "premise": "a",
            "conclusion": "a" } ] }"#;
        let (_, report) =
            crate::inference::rules_from_json(rules_doc, LoadOptions::Lenient).unwrap();
        let saved = load_report(&save_report(&report, ReplayFormat::Rules)).unwrap();
        let outcome = replay(&saved, rules_doc).unwrap();
        assert_eq!(outcome.still_defective(), 1);
    }

    #[test]
    fn malformed_report_files_are_fatal() {
        for text in [
            "not json",
            "{}",
            r#"{"format":"martian","accepted":0,"quarantined":[]}"#,
            r#"{"format":"rules","accepted":0,"quarantined":[{"kind":"x"}]}"#,
        ] {
            assert!(load_report(text).is_err(), "{text}");
        }
    }
}
