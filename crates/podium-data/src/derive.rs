//! Derivation of aggregate profile properties from raw activity (§8.1).
//!
//! The paper's datasets contain two kinds of properties: ones explicit in
//! the raw data (age, residence) and ones *derived by aggregating user
//! activity* per category:
//!
//! * **Average Rating** — the user's mean rating for restaurants of a
//!   category, normalized by their overall mean rating;
//! * **Visit Frequency** — the fraction of the user's visits that fall in
//!   the category;
//! * **Enthusiasm Level** — the fraction of the user's total rating points
//!   given to the category.
//!
//! Categories are enriched through the taxonomy (generalization rules of
//! §3.1): a review of a *Mexican* restaurant also counts toward *Latin* and
//! every higher ancestor.

use podium_core::profile::UserRepository;
use serde::{Deserialize, Serialize};

use crate::load::{DataError, DataErrorKind, Provenance};
use crate::reviews::ReviewCorpus;
use crate::taxonomy::{CategoryId, Taxonomy};

/// Provenance source tag for derivation errors.
const SOURCE: &str = "review corpus";

/// Which derived property kinds to emit. The Yelp-like preset uses fewer
/// kinds than the TripAdvisor-like one ("less groups due to its simpler
/// semantics", §8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyKinds {
    /// Emit `avgRating <category>` properties.
    pub avg_rating: bool,
    /// Emit `visitFreq <category>` properties.
    pub visit_freq: bool,
    /// Emit `enthusiasm <category>` properties.
    pub enthusiasm: bool,
}

impl PropertyKinds {
    /// All three kinds (TripAdvisor-like).
    pub fn all() -> Self {
        Self {
            avg_rating: true,
            visit_freq: true,
            enthusiasm: true,
        }
    }

    /// Rating and visit frequency only (Yelp-like).
    pub fn simple() -> Self {
        Self {
            avg_rating: true,
            visit_freq: true,
            enthusiasm: false,
        }
    }
}

/// Options controlling property derivation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeriveOptions {
    /// Which derived property kinds to emit.
    pub kinds: PropertyKinds,
    /// Minimum number of category visits before aggregate properties are
    /// emitted for that (user, category) pair.
    pub min_visits: usize,
    /// Whether to generalize categories through the taxonomy (ancestors
    /// also receive aggregates).
    pub generalize: bool,
    /// Whether to additionally emit per-(leaf category, city) visit
    /// frequencies (`visitFreq <cat>@<city>`). This models the
    /// fine-grained, destination-localized properties that make the paper's
    /// real repositories so high-dimensional (up to 2 189 properties per
    /// TripAdvisor user) and produces many small, sparsely-populated
    /// groups.
    #[serde(default)]
    pub city_properties: bool,
}

impl Default for DeriveOptions {
    fn default() -> Self {
        Self {
            kinds: PropertyKinds::all(),
            min_visits: 1,
            generalize: true,
            city_properties: false,
        }
    }
}

/// Normalizes an average-rating ratio `r = mean_category / mean_overall`
/// into `[0, 1]` via the monotone map `r / (1 + r)`; `r = 1` (category rated
/// exactly at the user's overall average) maps to `0.5`.
pub fn normalize_rating_ratio(ratio: f64) -> f64 {
    if !ratio.is_finite() || ratio <= 0.0 {
        return 0.0;
    }
    (ratio / (1.0 + ratio)).clamp(0.0, 1.0)
}

/// Derives aggregate properties from `corpus` into `repo` for every user
/// appearing in the reviews. Users are addressed by their existing ids in
/// `repo`, which must therefore already contain all reviewers.
///
/// Reviews of destinations listed in `exclude` are skipped — this is the
/// holdout mechanism of §8.2 ("select users based on their profiles
/// *excluding* the data related to some destination").
///
/// # Errors
/// Returns [`DataErrorKind::UnknownReference`] when a review points at a
/// destination outside the corpus or a destination's category is not in
/// `taxonomy` — dangling references in hand-assembled or corrupted corpora
/// used to panic here.
pub fn derive_properties(
    repo: &mut UserRepository,
    corpus: &ReviewCorpus,
    taxonomy: &Taxonomy,
    options: &DeriveOptions,
    exclude: &dyn Fn(crate::reviews::DestinationId) -> bool,
) -> Result<(), DataError> {
    let n = repo.user_count();
    // Per-user accumulators over categories. Dense per-user maps keyed by
    // category id keep this pass O(reviews × taxonomy depth).
    #[derive(Default, Clone)]
    struct Acc {
        visits: u32,
        rating_sum: f64,
    }
    let mut per_user: Vec<std::collections::HashMap<CategoryId, Acc>> =
        vec![std::collections::HashMap::new(); n];
    // Per-user visit counts by (leaf category, city), for city_properties.
    let mut per_user_city: Vec<std::collections::HashMap<(CategoryId, u32), u32>> =
        vec![std::collections::HashMap::new(); n];
    let mut totals: Vec<Acc> = vec![Acc::default(); n];

    for (i, review) in corpus.reviews.iter().enumerate() {
        if exclude(review.destination) {
            continue;
        }
        let u = review.user.index();
        if u >= n {
            continue;
        }
        let dest = corpus
            .destinations
            .get(review.destination.index())
            .ok_or_else(|| {
                DataError::new(
                    DataErrorKind::UnknownReference {
                        reference: format!("destination #{}", review.destination.index()),
                    },
                    Provenance::record(SOURCE, i),
                )
            })?;
        if dest.category.index() >= taxonomy.len() {
            return Err(DataError::new(
                DataErrorKind::UnknownReference {
                    reference: format!("category #{} of '{}'", dest.category.index(), dest.name),
                },
                Provenance::record(SOURCE, i),
            ));
        }
        let rating = f64::from(review.rating);
        totals[u].visits += 1;
        totals[u].rating_sum += rating;
        let leaf = dest.category;
        if options.city_properties {
            *per_user_city[u].entry((leaf, dest.city)).or_default() += 1;
        }
        let cats = if options.generalize {
            taxonomy.ancestors_inclusive(leaf)
        } else {
            vec![leaf]
        };
        for c in cats {
            let acc = per_user[u].entry(c).or_default();
            acc.visits += 1;
            acc.rating_sum += rating;
        }
    }

    // Emit properties. Property labels are interned once per category.
    for u in 0..n {
        if totals[u].visits == 0 {
            continue;
        }
        let overall_mean = totals[u].rating_sum / f64::from(totals[u].visits);
        let total_points = totals[u].rating_sum;
        let uid = podium_core::ids::UserId::from_index(u);
        // Deterministic property order: sort categories by id.
        let mut cats: Vec<(&CategoryId, &Acc)> = per_user[u].iter().collect();
        cats.sort_by_key(|(c, _)| **c);
        for (c, acc) in cats {
            if (acc.visits as usize) < options.min_visits {
                continue;
            }
            let cat_name = taxonomy.name(*c);
            if options.kinds.avg_rating && overall_mean > 0.0 {
                let mean = acc.rating_sum / f64::from(acc.visits);
                let p = repo.intern_property(format!("avgRating {cat_name}"));
                let score = normalize_rating_ratio(mean / overall_mean);
                repo.set_score(uid, p, score)?;
            }
            if options.kinds.visit_freq {
                let p = repo.intern_property(format!("visitFreq {cat_name}"));
                let score = (f64::from(acc.visits) / f64::from(totals[u].visits)).clamp(0.0, 1.0);
                repo.set_score(uid, p, score)?;
            }
            if options.kinds.enthusiasm && total_points > 0.0 {
                let p = repo.intern_property(format!("enthusiasm {cat_name}"));
                let score = (acc.rating_sum / total_points).clamp(0.0, 1.0);
                repo.set_score(uid, p, score)?;
            }
        }
        if options.city_properties {
            let mut pairs: Vec<(&(CategoryId, u32), &u32)> = per_user_city[u].iter().collect();
            pairs.sort_by_key(|(k, _)| **k);
            for ((cat, city), &visits) in pairs {
                if (visits as usize) < options.min_visits {
                    continue;
                }
                let cat_name = taxonomy.name(*cat);
                let p = repo.intern_property(format!("visitFreq {cat_name}@city{city}"));
                let score = (f64::from(visits) / f64::from(totals[u].visits)).clamp(0.0, 1.0);
                repo.set_score(uid, p, score)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reviews::{Destination, DestinationId, Review};
    use podium_core::ids::UserId;

    fn fixture() -> (UserRepository, ReviewCorpus, Taxonomy) {
        let taxonomy = Taxonomy::example_cuisines();
        let mexican = taxonomy.find("Mexican").unwrap();
        let french = taxonomy.find("French").unwrap();
        let mut repo = UserRepository::new();
        repo.add_user("u0");
        repo.add_user("u1");
        let corpus = ReviewCorpus {
            destinations: vec![
                Destination {
                    name: "El Rancho".into(),
                    category: mexican,
                    city: 0,
                    topics: vec![],
                    base_quality: 4.0,
                },
                Destination {
                    name: "Le Bistro".into(),
                    category: french,
                    city: 0,
                    topics: vec![],
                    base_quality: 3.0,
                },
            ],
            reviews: vec![
                Review {
                    user: UserId(0),
                    destination: DestinationId(0),
                    rating: 5,
                    topics: vec![],
                    useful_votes: 0,
                },
                Review {
                    user: UserId(0),
                    destination: DestinationId(1),
                    rating: 3,
                    topics: vec![],
                    useful_votes: 0,
                },
                Review {
                    user: UserId(1),
                    destination: DestinationId(1),
                    rating: 4,
                    topics: vec![],
                    useful_votes: 0,
                },
            ],
            topic_names: vec![],
        };
        (repo, corpus, taxonomy)
    }

    #[test]
    fn derives_all_three_kinds() {
        let (mut repo, corpus, taxonomy) = fixture();
        derive_properties(
            &mut repo,
            &corpus,
            &taxonomy,
            &DeriveOptions::default(),
            &|_| false,
        )
        .unwrap();
        let u0 = UserId(0);
        // u0: ratings 5 (Mexican) and 3 (French); overall mean 4.
        let avg_mex = repo.property_id("avgRating Mexican").unwrap();
        // ratio 5/4 = 1.25 -> 1.25/2.25
        let expected = 1.25 / 2.25;
        assert!((repo.score(u0, avg_mex).unwrap() - expected).abs() < 1e-12);
        let vf_mex = repo.property_id("visitFreq Mexican").unwrap();
        assert!((repo.score(u0, vf_mex).unwrap() - 0.5).abs() < 1e-12);
        let en_mex = repo.property_id("enthusiasm Mexican").unwrap();
        assert!((repo.score(u0, en_mex).unwrap() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn generalization_creates_ancestor_properties() {
        // Example 3.2: avgRating Mexican enables deriving avgRating Latin.
        let (mut repo, corpus, taxonomy) = fixture();
        derive_properties(
            &mut repo,
            &corpus,
            &taxonomy,
            &DeriveOptions::default(),
            &|_| false,
        )
        .unwrap();
        let u0 = UserId(0);
        let avg_latin = repo.property_id("avgRating Latin").unwrap();
        let avg_mex = repo.property_id("avgRating Mexican").unwrap();
        assert_eq!(repo.score(u0, avg_latin), repo.score(u0, avg_mex));
        // The shared root aggregates everything: visitFreq Food = 1.
        let vf_food = repo.property_id("visitFreq Food").unwrap();
        assert_eq!(repo.score(u0, vf_food), Some(1.0));
    }

    #[test]
    fn no_generalization_when_disabled() {
        let (mut repo, corpus, taxonomy) = fixture();
        let opts = DeriveOptions {
            generalize: false,
            ..DeriveOptions::default()
        };
        derive_properties(&mut repo, &corpus, &taxonomy, &opts, &|_| false).unwrap();
        assert!(repo.property_id("avgRating Latin").is_none());
        assert!(repo.property_id("avgRating Mexican").is_some());
    }

    #[test]
    fn exclusion_removes_destination_influence() {
        let (mut repo, corpus, taxonomy) = fixture();
        derive_properties(
            &mut repo,
            &corpus,
            &taxonomy,
            &DeriveOptions::default(),
            &|d| d == DestinationId(0),
        )
        .unwrap();
        // Only French reviews remain; Mexican properties must not exist.
        assert!(repo.property_id("avgRating Mexican").is_none());
        let u0 = UserId(0);
        let vf_french = repo.property_id("visitFreq French").unwrap();
        assert_eq!(repo.score(u0, vf_french), Some(1.0));
    }

    #[test]
    fn min_visits_threshold() {
        let (mut repo, corpus, taxonomy) = fixture();
        let opts = DeriveOptions {
            min_visits: 2,
            ..DeriveOptions::default()
        };
        derive_properties(&mut repo, &corpus, &taxonomy, &opts, &|_| false).unwrap();
        // u0 visited each leaf once -> no leaf properties; but Food twice.
        assert!(repo.property_id("avgRating Mexican").is_none());
        let u0 = UserId(0);
        let vf_food = repo.property_id("visitFreq Food").unwrap();
        assert_eq!(repo.score(u0, vf_food), Some(1.0));
    }

    #[test]
    fn simple_kinds_skip_enthusiasm() {
        let (mut repo, corpus, taxonomy) = fixture();
        let opts = DeriveOptions {
            kinds: PropertyKinds::simple(),
            ..DeriveOptions::default()
        };
        derive_properties(&mut repo, &corpus, &taxonomy, &opts, &|_| false).unwrap();
        assert!(repo.property_id("enthusiasm Mexican").is_none());
        assert!(repo.property_id("avgRating Mexican").is_some());
    }

    #[test]
    fn normalize_rating_ratio_shape() {
        assert_eq!(normalize_rating_ratio(0.0), 0.0);
        assert!((normalize_rating_ratio(1.0) - 0.5).abs() < 1e-12);
        assert!(normalize_rating_ratio(4.0) > normalize_rating_ratio(1.0));
        assert!(normalize_rating_ratio(1e9) <= 1.0);
        assert_eq!(normalize_rating_ratio(f64::NAN), 0.0);
        assert_eq!(normalize_rating_ratio(-2.0), 0.0);
    }

    #[test]
    fn dangling_destination_is_an_error_not_a_panic() {
        let (mut repo, mut corpus, taxonomy) = fixture();
        corpus.reviews.push(Review {
            user: UserId(1),
            destination: DestinationId(99),
            rating: 2,
            topics: vec![],
            useful_votes: 0,
        });
        let err = derive_properties(
            &mut repo,
            &corpus,
            &taxonomy,
            &DeriveOptions::default(),
            &|_| false,
        )
        .unwrap_err();
        assert!(matches!(
            &err.kind,
            crate::load::DataErrorKind::UnknownReference { reference }
                if reference.contains("99")
        ));
        assert_eq!(err.provenance.record, Some(3), "points at the bad review");
        // Excluding the dangling destination sidesteps the error.
        derive_properties(
            &mut repo,
            &corpus,
            &taxonomy,
            &DeriveOptions::default(),
            &|d| d == DestinationId(99),
        )
        .unwrap();
    }

    #[test]
    fn users_without_reviews_get_no_properties() {
        let (mut repo, corpus, taxonomy) = fixture();
        let lurker = repo.add_user("lurker");
        derive_properties(
            &mut repo,
            &corpus,
            &taxonomy,
            &DeriveOptions::default(),
            &|_| false,
        )
        .unwrap();
        assert_eq!(repo.profile(lurker).unwrap().len(), 0);
    }
}
