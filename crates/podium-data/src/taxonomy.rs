//! Category taxonomies for profile enrichment (paper §3.1, Example 3.2).
//!
//! A taxonomy is a forest of named categories. Generalization rules walk the
//! ancestor chain: a user activity recorded for *Mexican* cuisine also
//! counts toward *Latin* cuisine and any higher ancestor, which is how the
//! dataset generators derive enriched aggregate properties.

use serde::{Deserialize, Serialize};

/// Identifier of a taxonomy category (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CategoryId(pub u32);

impl CategoryId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// From index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("category index exceeds u32::MAX"))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    name: String,
    parent: Option<CategoryId>,
    children: Vec<CategoryId>,
}

/// A category taxonomy (forest).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Taxonomy {
    nodes: Vec<Node>,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root category.
    pub fn add_root(&mut self, name: impl Into<String>) -> CategoryId {
        let id = CategoryId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Adds a child of `parent`.
    ///
    /// # Panics
    /// Panics if `parent` does not exist.
    pub fn add_child(&mut self, parent: CategoryId, name: impl Into<String>) -> CategoryId {
        assert!(parent.index() < self.nodes.len(), "unknown parent category");
        let id = CategoryId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the taxonomy has no categories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The category's name.
    pub fn name(&self, c: CategoryId) -> &str {
        &self.nodes[c.index()].name
    }

    /// The category's parent, if any.
    pub fn parent(&self, c: CategoryId) -> Option<CategoryId> {
        self.nodes[c.index()].parent
    }

    /// Direct children of a category.
    pub fn children(&self, c: CategoryId) -> &[CategoryId] {
        &self.nodes[c.index()].children
    }

    /// Finds a category by name (linear scan).
    pub fn find(&self, name: &str) -> Option<CategoryId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(CategoryId::from_index)
    }

    /// The ancestor chain of `c`, starting from `c` itself up to its root.
    /// This drives generalization: activity in `c` counts toward every
    /// returned category.
    pub fn ancestors_inclusive(&self, c: CategoryId) -> Vec<CategoryId> {
        let mut out = vec![c];
        let mut cur = c;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// All leaf categories (no children), in id order.
    pub fn leaves(&self) -> Vec<CategoryId> {
        (0..self.nodes.len())
            .map(CategoryId::from_index)
            .filter(|c| self.nodes[c.index()].children.is_empty())
            .collect()
    }

    /// Whether `descendant` is in the subtree of `ancestor` (inclusive).
    pub fn is_descendant(&self, descendant: CategoryId, ancestor: CategoryId) -> bool {
        self.ancestors_inclusive(descendant).contains(&ancestor)
    }

    /// A small curated cuisine taxonomy mirroring the paper's example
    /// (Mexican ⊂ Latin, plus a few siblings). Useful for tests and the
    /// quickstart example.
    pub fn example_cuisines() -> Self {
        let mut t = Self::new();
        let food = t.add_root("Food");
        let latin = t.add_child(food, "Latin");
        t.add_child(latin, "Mexican");
        t.add_child(latin, "Brazilian");
        let european = t.add_child(food, "European");
        t.add_child(european, "French");
        t.add_child(european, "Italian");
        let asian = t.add_child(food, "Asian");
        t.add_child(asian, "Japanese");
        t.add_child(asian, "Thai");
        t
    }

    /// Generates a synthetic cuisine taxonomy: one root, `regions` regional
    /// categories, `leaves_per_region` leaf cuisines each. Deterministic
    /// naming (`Region3`, `Cuisine3_2`).
    pub fn generate(regions: usize, leaves_per_region: usize) -> Self {
        let mut t = Self::new();
        let root = t.add_root("Food");
        for r in 0..regions {
            let region = t.add_child(root, format!("Region{r}"));
            for l in 0..leaves_per_region {
                t.add_child(region, format!("Cuisine{r}_{l}"));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_taxonomy_structure() {
        let t = Taxonomy::example_cuisines();
        let mexican = t.find("Mexican").unwrap();
        let latin = t.find("Latin").unwrap();
        let food = t.find("Food").unwrap();
        assert_eq!(t.parent(mexican), Some(latin));
        assert_eq!(t.parent(latin), Some(food));
        assert_eq!(t.parent(food), None);
        assert_eq!(
            t.ancestors_inclusive(mexican),
            vec![mexican, latin, food],
            "Example 3.2: Mexican generalizes to Latin (and Food)"
        );
    }

    #[test]
    fn leaves_have_no_children() {
        let t = Taxonomy::example_cuisines();
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 6);
        for l in leaves {
            assert!(t.children(l).is_empty());
        }
    }

    #[test]
    fn is_descendant() {
        let t = Taxonomy::example_cuisines();
        let mexican = t.find("Mexican").unwrap();
        let latin = t.find("Latin").unwrap();
        let asian = t.find("Asian").unwrap();
        assert!(t.is_descendant(mexican, latin));
        assert!(t.is_descendant(mexican, mexican));
        assert!(!t.is_descendant(mexican, asian));
        assert!(!t.is_descendant(latin, mexican));
    }

    #[test]
    fn generated_shape() {
        let t = Taxonomy::generate(4, 5);
        assert_eq!(t.len(), 1 + 4 + 20);
        assert_eq!(t.leaves().len(), 20);
        let leaf = t.find("Cuisine2_3").unwrap();
        let region = t.find("Region2").unwrap();
        assert_eq!(t.parent(leaf), Some(region));
    }

    #[test]
    fn find_missing_returns_none() {
        let t = Taxonomy::example_cuisines();
        assert_eq!(t.find("Klingon"), None);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn add_child_of_missing_parent_panics() {
        let mut t = Taxonomy::new();
        t.add_child(CategoryId(5), "orphan");
    }
}
