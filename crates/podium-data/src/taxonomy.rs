//! Category taxonomies for profile enrichment (paper §3.1, Example 3.2).
//!
//! A taxonomy is a forest of named categories. Generalization rules walk the
//! ancestor chain: a user activity recorded for *Mexican* cuisine also
//! counts toward *Latin* cuisine and any higher ancestor, which is how the
//! dataset generators derive enriched aggregate properties.

use std::collections::{HashMap, HashSet};

use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::load::{DataError, DataErrorKind, LoadOptions, LoadReport, Provenance};

/// Identifier of a taxonomy category (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CategoryId(pub u32);

impl CategoryId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// From index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("category index exceeds u32::MAX"))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    name: String,
    parent: Option<CategoryId>,
    children: Vec<CategoryId>,
}

/// A category taxonomy (forest).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Taxonomy {
    nodes: Vec<Node>,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root category.
    pub fn add_root(&mut self, name: impl Into<String>) -> CategoryId {
        let id = CategoryId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Adds a child of `parent`.
    ///
    /// # Panics
    /// Panics if `parent` does not exist.
    pub fn add_child(&mut self, parent: CategoryId, name: impl Into<String>) -> CategoryId {
        self.try_add_child(parent, name)
            .expect("unknown parent category")
    }

    /// Adds a child of `parent`, returning `None` instead of panicking when
    /// `parent` does not exist. This is the ingestion-safe variant used by
    /// [`taxonomy_from_json`].
    pub fn try_add_child(
        &mut self,
        parent: CategoryId,
        name: impl Into<String>,
    ) -> Option<CategoryId> {
        if parent.index() >= self.nodes.len() {
            return None;
        }
        let id = CategoryId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        Some(id)
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the taxonomy has no categories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The category's name.
    pub fn name(&self, c: CategoryId) -> &str {
        &self.nodes[c.index()].name
    }

    /// The category's parent, if any.
    pub fn parent(&self, c: CategoryId) -> Option<CategoryId> {
        self.nodes[c.index()].parent
    }

    /// Direct children of a category.
    pub fn children(&self, c: CategoryId) -> &[CategoryId] {
        &self.nodes[c.index()].children
    }

    /// Finds a category by name (linear scan).
    pub fn find(&self, name: &str) -> Option<CategoryId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(CategoryId::from_index)
    }

    /// The ancestor chain of `c`, starting from `c` itself up to its root.
    /// This drives generalization: activity in `c` counts toward every
    /// returned category.
    pub fn ancestors_inclusive(&self, c: CategoryId) -> Vec<CategoryId> {
        let mut out = vec![c];
        let mut cur = c;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// All leaf categories (no children), in id order.
    pub fn leaves(&self) -> Vec<CategoryId> {
        (0..self.nodes.len())
            .map(CategoryId::from_index)
            .filter(|c| self.nodes[c.index()].children.is_empty())
            .collect()
    }

    /// Whether `descendant` is in the subtree of `ancestor` (inclusive).
    pub fn is_descendant(&self, descendant: CategoryId, ancestor: CategoryId) -> bool {
        self.ancestors_inclusive(descendant).contains(&ancestor)
    }

    /// A small curated cuisine taxonomy mirroring the paper's example
    /// (Mexican ⊂ Latin, plus a few siblings). Useful for tests and the
    /// quickstart example.
    pub fn example_cuisines() -> Self {
        let mut t = Self::new();
        let food = t.add_root("Food");
        let latin = t.add_child(food, "Latin");
        t.add_child(latin, "Mexican");
        t.add_child(latin, "Brazilian");
        let european = t.add_child(food, "European");
        t.add_child(european, "French");
        t.add_child(european, "Italian");
        let asian = t.add_child(food, "Asian");
        t.add_child(asian, "Japanese");
        t.add_child(asian, "Thai");
        t
    }

    /// Generates a synthetic cuisine taxonomy: one root, `regions` regional
    /// categories, `leaves_per_region` leaf cuisines each. Deterministic
    /// naming (`Region3`, `Cuisine3_2`).
    pub fn generate(regions: usize, leaves_per_region: usize) -> Self {
        let mut t = Self::new();
        let root = t.add_root("Food");
        for r in 0..regions {
            let region = t.add_child(root, format!("Region{r}"));
            for l in 0..leaves_per_region {
                t.add_child(region, format!("Cuisine{r}_{l}"));
            }
        }
        t
    }
}

/// Loader source tag for [`Provenance`].
const SOURCE: &str = "taxonomy";

/// One parsed-but-not-yet-committed category record.
struct Candidate {
    record: usize,
    name: String,
    parent: Option<String>,
    raw: String,
}

/// How a candidate's parent chain resolves.
#[derive(Clone, Copy, PartialEq)]
enum Resolution {
    Unvisited,
    Rooted,
    Unknown,
    Cyclic,
}

/// Loads a taxonomy from the JSON interchange format:
///
/// ```json
/// { "categories": [ { "name": "Latin", "parent": "Food" },
///                   { "name": "Food" } ] }
/// ```
///
/// Forward references are allowed — a child may appear before its parent.
/// Defective records (missing `name`, duplicate names, parents that are
/// never defined, parent chains that form a cycle) are fatal under
/// [`LoadOptions::Strict`] and quarantined under [`LoadOptions::Lenient`].
/// A record whose ancestry passes through a cyclic or undefined parent is
/// itself unresolvable and is quarantined with the matching kind. A missing
/// or non-array `categories` key is a document-level fault, fatal in both
/// modes.
pub fn taxonomy_from_json(
    text: &str,
    opts: LoadOptions,
) -> Result<(Taxonomy, LoadReport), DataError> {
    let doc: Value = serde_json::from_str(text).map_err(|e| {
        DataError::new(
            DataErrorKind::Syntax {
                message: e.to_string(),
            },
            Provenance::document(SOURCE).at_line(e.line()),
        )
    })?;
    let records = doc
        .get("categories")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            DataError::new(
                DataErrorKind::Schema {
                    message: "no \"categories\" array found in document".into(),
                },
                Provenance::document(SOURCE),
            )
        })?;

    let mut report = LoadReport::default();
    let mut defects: Vec<(DataError, String)> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for (i, rec) in records.iter().enumerate() {
        let raw = serde_json::to_string(rec).unwrap_or_default();
        let prov = Provenance::record(SOURCE, i);
        let parsed = (|| {
            let obj_err = || {
                DataError::new(
                    DataErrorKind::Schema {
                        message: "category record is not an object with a string \"name\"".into(),
                    },
                    prov.clone(),
                )
            };
            if !rec.is_object() {
                return Err(obj_err());
            }
            let name = rec
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(obj_err)?;
            let parent = match rec.get("parent") {
                None | Some(Value::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| {
                            DataError::new(
                                DataErrorKind::Schema {
                                    message: "\"parent\" must be a string or null".into(),
                                },
                                prov.clone().named(name),
                            )
                        })?
                        .to_owned(),
                ),
            };
            if !seen.insert(name.to_owned()) {
                return Err(DataError::new(
                    DataErrorKind::Duplicate {
                        name: name.to_owned(),
                    },
                    prov.clone().named(name),
                ));
            }
            Ok(Candidate {
                record: i,
                name: name.to_owned(),
                parent,
                raw: raw.clone(),
            })
        })();
        match parsed {
            Ok(c) => candidates.push(c),
            Err(e) => defects.push((e, raw)),
        }
    }

    // Resolve every candidate's parent chain. Names may reference records
    // in any order, so resolution is a memoized walk over the candidate
    // set, flagging chains that leave it (Unknown) or revisit themselves
    // (Cyclic).
    let index: HashMap<&str, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    let mut state = vec![Resolution::Unvisited; candidates.len()];
    for start in 0..candidates.len() {
        if state[start] != Resolution::Unvisited {
            continue;
        }
        let mut chain = vec![start];
        let mut on_chain: HashSet<usize> = [start].into();
        let outcome = loop {
            let cur = *chain.last().expect("chain is non-empty");
            match state[cur] {
                Resolution::Rooted => break Resolution::Rooted,
                Resolution::Unknown => break Resolution::Unknown,
                Resolution::Cyclic => break Resolution::Cyclic,
                Resolution::Unvisited => {}
            }
            match &candidates[cur].parent {
                None => break Resolution::Rooted,
                Some(p) => match index.get(p.as_str()) {
                    None => break Resolution::Unknown,
                    Some(&next) if on_chain.contains(&next) => break Resolution::Cyclic,
                    Some(&next) => {
                        chain.push(next);
                        on_chain.insert(next);
                    }
                },
            }
        };
        for &i in &chain {
            if state[i] == Resolution::Unvisited {
                state[i] = outcome;
            }
        }
    }
    for (i, c) in candidates.iter().enumerate() {
        let error = match state[i] {
            Resolution::Rooted | Resolution::Unvisited => continue,
            Resolution::Unknown => DataError::new(
                DataErrorKind::UnknownReference {
                    reference: c.parent.clone().unwrap_or_default(),
                },
                Provenance::record(SOURCE, c.record).named(&c.name),
            ),
            Resolution::Cyclic => DataError::new(
                DataErrorKind::Cycle {
                    description: format!("parent chain of '{}' never reaches a root", c.name),
                },
                Provenance::record(SOURCE, c.record).named(&c.name),
            ),
        };
        defects.push((error, c.raw.clone()));
    }

    if let Some((first, _)) = defects
        .iter()
        .min_by_key(|(e, _)| e.provenance.record.unwrap_or(usize::MAX))
    {
        if !opts.is_lenient() {
            return Err(first.clone());
        }
    }
    defects.sort_by_key(|(e, _)| e.provenance.record.unwrap_or(usize::MAX));
    for (e, raw) in defects {
        report.quarantine(e, &raw);
    }

    // Commit rooted candidates in topological order: roots first, then
    // children whose parent is already in the taxonomy, until no progress.
    let mut taxonomy = Taxonomy::new();
    let mut pending: Vec<&Candidate> = candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| state[*i] == Resolution::Rooted)
        .map(|(_, c)| c)
        .collect();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|c| match &c.parent {
            None => {
                taxonomy.add_root(&c.name);
                report.accepted += 1;
                false
            }
            Some(p) => match taxonomy.find(p) {
                Some(pid) => {
                    taxonomy
                        .try_add_child(pid, &c.name)
                        .expect("parent id came from find()");
                    report.accepted += 1;
                    false
                }
                None => true,
            },
        });
        assert!(
            pending.len() < before,
            "rooted candidates must make topological progress"
        );
    }
    Ok((taxonomy, report))
}

/// Writes a taxonomy to the JSON interchange format read by
/// [`taxonomy_from_json`]. Categories are emitted in id order, which puts
/// every parent before its children (construction order guarantees it),
/// so the output round-trips under [`LoadOptions::Strict`].
pub fn taxonomy_to_json(taxonomy: &Taxonomy) -> String {
    let records: Vec<Value> = (0..taxonomy.len())
        .map(CategoryId::from_index)
        .map(|c| {
            let mut pairs = vec![(
                "name".to_owned(),
                Value::String(taxonomy.name(c).to_owned()),
            )];
            if let Some(p) = taxonomy.parent(c) {
                pairs.push((
                    "parent".to_owned(),
                    Value::String(taxonomy.name(p).to_owned()),
                ));
            }
            Value::Object(pairs)
        })
        .collect();
    let doc = Value::Object(vec![("categories".to_owned(), Value::Array(records))]);
    serde_json::to_string_pretty(&doc).expect("taxonomy serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_round_trips_strict() {
        let t = Taxonomy::example_cuisines();
        let doc = taxonomy_to_json(&t);
        let (back, report) = taxonomy_from_json(&doc, LoadOptions::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            let c = CategoryId::from_index(i);
            let b = back.find(t.name(c)).unwrap();
            assert_eq!(
                back.parent(b).map(|p| back.name(p)),
                t.parent(c).map(|p| t.name(p)),
                "parent of {}",
                t.name(c)
            );
        }
    }

    #[test]
    fn example_taxonomy_structure() {
        let t = Taxonomy::example_cuisines();
        let mexican = t.find("Mexican").unwrap();
        let latin = t.find("Latin").unwrap();
        let food = t.find("Food").unwrap();
        assert_eq!(t.parent(mexican), Some(latin));
        assert_eq!(t.parent(latin), Some(food));
        assert_eq!(t.parent(food), None);
        assert_eq!(
            t.ancestors_inclusive(mexican),
            vec![mexican, latin, food],
            "Example 3.2: Mexican generalizes to Latin (and Food)"
        );
    }

    #[test]
    fn leaves_have_no_children() {
        let t = Taxonomy::example_cuisines();
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 6);
        for l in leaves {
            assert!(t.children(l).is_empty());
        }
    }

    #[test]
    fn is_descendant() {
        let t = Taxonomy::example_cuisines();
        let mexican = t.find("Mexican").unwrap();
        let latin = t.find("Latin").unwrap();
        let asian = t.find("Asian").unwrap();
        assert!(t.is_descendant(mexican, latin));
        assert!(t.is_descendant(mexican, mexican));
        assert!(!t.is_descendant(mexican, asian));
        assert!(!t.is_descendant(latin, mexican));
    }

    #[test]
    fn generated_shape() {
        let t = Taxonomy::generate(4, 5);
        assert_eq!(t.len(), 1 + 4 + 20);
        assert_eq!(t.leaves().len(), 20);
        let leaf = t.find("Cuisine2_3").unwrap();
        let region = t.find("Region2").unwrap();
        assert_eq!(t.parent(leaf), Some(region));
    }

    #[test]
    fn find_missing_returns_none() {
        let t = Taxonomy::example_cuisines();
        assert_eq!(t.find("Klingon"), None);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn add_child_of_missing_parent_panics() {
        let mut t = Taxonomy::new();
        t.add_child(CategoryId(5), "orphan");
    }

    #[test]
    fn try_add_child_of_missing_parent_is_none() {
        let mut t = Taxonomy::new();
        assert!(t.try_add_child(CategoryId(5), "orphan").is_none());
        assert!(t.is_empty(), "failed insert leaves no partial state");
    }

    #[test]
    fn json_loader_accepts_forward_references() {
        let doc = r#"{ "categories": [
            { "name": "Mexican", "parent": "Latin" },
            { "name": "Latin", "parent": "Food" },
            { "name": "Food" }
        ] }"#;
        let (t, report) = taxonomy_from_json(doc, LoadOptions::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.accepted, 3);
        let mexican = t.find("Mexican").unwrap();
        let latin = t.find("Latin").unwrap();
        assert_eq!(t.parent(mexican), Some(latin));
    }

    #[test]
    fn json_loader_quarantines_unknown_parent_and_descendants() {
        let doc = r#"{ "categories": [
            { "name": "Food" },
            { "name": "Latin", "parent": "Fodo" },
            { "name": "Mexican", "parent": "Latin" },
            { "name": "Thai", "parent": "Food" }
        ] }"#;
        let (t, report) = taxonomy_from_json(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(report.accepted, 2, "Food and Thai survive");
        assert_eq!(report.quarantined_count(), 2);
        assert!(matches!(
            &report.quarantined[0].error.kind,
            DataErrorKind::UnknownReference { reference } if reference == "Fodo"
        ));
        assert!(
            matches!(
                &report.quarantined[1].error.kind,
                DataErrorKind::UnknownReference { .. }
            ),
            "Mexican's chain passes through the defective Latin"
        );
        assert!(t.find("Latin").is_none());
        let err = taxonomy_from_json(doc, LoadOptions::Strict).unwrap_err();
        assert_eq!(err.provenance.record, Some(1));
    }

    #[test]
    fn json_loader_detects_parent_cycles() {
        let doc = r#"{ "categories": [
            { "name": "Food" },
            { "name": "A", "parent": "B" },
            { "name": "B", "parent": "A" }
        ] }"#;
        let (t, report) = taxonomy_from_json(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined_count(), 2);
        for q in &report.quarantined {
            assert!(matches!(q.error.kind, DataErrorKind::Cycle { .. }));
        }
        assert_eq!(t.len(), 1);
        assert!(taxonomy_from_json(doc, LoadOptions::Strict).is_err());
    }

    #[test]
    fn json_loader_quarantines_duplicates_and_schema_faults() {
        let doc = r#"{ "categories": [
            { "name": "Food" },
            { "name": "Food" },
            { "parent": "Food" },
            "just a string"
        ] }"#;
        let (t, report) = taxonomy_from_json(doc, LoadOptions::Lenient).unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined_count(), 3);
        assert!(matches!(
            &report.quarantined[0].error.kind,
            DataErrorKind::Duplicate { name } if name == "Food"
        ));
        assert!(matches!(
            report.quarantined[1].error.kind,
            DataErrorKind::Schema { .. }
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn json_loader_document_faults_fatal_in_both_modes() {
        for doc in ["{ \"cats\": [] }", "{ \"categories\": [ { \"name\":"] {
            assert!(taxonomy_from_json(doc, LoadOptions::Strict).is_err());
            assert!(taxonomy_from_json(doc, LoadOptions::Lenient).is_err());
        }
    }
}
