//! Property tests for the fault-tolerant ingestion layer.
//!
//! Three contracts, checked against seeded corruption from
//! [`FaultInjector`] and against arbitrary byte-level mutation:
//!
//! * loaders never panic, whatever the input;
//! * a corpus corrupted with `k` record-level faults loads under
//!   `Lenient` with exactly `k` quarantine entries and `n - k` accepted
//!   records;
//! * the same corpus is rejected under `Strict` with a [`DataError`]
//!   carrying record or line provenance.

use podium_core::profile::UserRepository;
use podium_data::csv::{profiles_from_csv_opts, profiles_to_csv};
use podium_data::fault::{FaultInjector, FaultKind, StructuredFault};
use podium_data::inference::{rules_from_json, rules_to_json, InferenceEngine, Rule};
use podium_data::json::{profiles_from_json_opts, profiles_to_json};
use podium_data::load::LoadOptions;
use podium_data::taxonomy::{taxonomy_from_json, taxonomy_to_json, Taxonomy};
use proptest::prelude::*;

/// A clean repository: `users` users, each with at least one in-range
/// score, unique names.
fn clean_repo(users: usize) -> UserRepository {
    let mut repo = UserRepository::new();
    for i in 0..users {
        let u = repo.add_user(format!("u{i}"));
        for j in 0..1 + i % 3 {
            let p = repo.intern_property(format!("p{j}"));
            repo.set_score(u, p, (1 + i + j) as f64 / (users + 4) as f64)
                .unwrap();
        }
    }
    repo
}

/// Decodes a bitmask into a distinct fault subset.
fn faults_from_mask(mask: u8) -> Vec<FaultKind> {
    FaultKind::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, f)| *f)
        .collect()
}

/// Decodes a bitmask into a distinct structured-fault subset.
fn structured_from_mask(kinds: &[StructuredFault; 4], mask: u8) -> Vec<StructuredFault> {
    kinds
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, f)| *f)
        .collect()
}

/// A clean rules document: `implies` chain rules over disjoint labels (no
/// cycles) plus `functional` family rules.
fn clean_rules(implies: usize, functional: usize) -> String {
    let mut engine = InferenceEngine::new();
    for i in 0..implies {
        engine = engine.with_rule(Rule::Implies {
            premise: format!("p{i}"),
            conclusion: format!("q{i}"),
            threshold: 0.5,
        });
    }
    for i in 0..functional {
        engine = engine.with_rule(Rule::Functional {
            prefix: format!("fam{i} "),
        });
    }
    rules_to_json(&engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn json_quarantine_accounting_is_exact(
        seed in 0u64..u64::MAX,
        mask in 1u8..64,
        extra in 1usize..6,
    ) {
        let faults = faults_from_mask(mask);
        let k = faults.len();
        let n = k + 1 + extra;
        let clean = profiles_to_json(&clean_repo(n)).unwrap();
        let corrupted = FaultInjector::new(seed)
            .corrupt_json(&clean, &faults)
            .expect("n >= k + 2 records makes every fault applicable");

        let (repo, report) = profiles_from_json_opts(&corrupted, LoadOptions::Lenient)
            .expect("record-level faults are never fatal in lenient mode");
        prop_assert_eq!(report.quarantined_count(), k, "faults: {:?}", faults);
        prop_assert_eq!(report.accepted, n - k);
        prop_assert_eq!(repo.user_count(), n - k);

        let err = profiles_from_json_opts(&corrupted, LoadOptions::Strict)
            .expect_err("strict mode must reject a corrupted document");
        prop_assert!(
            err.provenance.record.is_some() || err.provenance.line.is_some(),
            "strict error must carry provenance: {}", err
        );
    }

    #[test]
    fn csv_quarantine_accounting_is_exact(
        seed in 0u64..u64::MAX,
        mask in 1u8..64,
        extra in 1usize..6,
    ) {
        let faults = faults_from_mask(mask);
        let k = faults.len();
        let n = k + 1 + extra;
        let clean = profiles_to_csv(&clean_repo(n));
        let corrupted = FaultInjector::new(seed)
            .corrupt_csv(&clean, &faults)
            .expect("n >= k + 2 rows makes every fault applicable");

        let (repo, report) = profiles_from_csv_opts(&corrupted, LoadOptions::Lenient)
            .expect("record-level faults are never fatal in lenient mode");
        prop_assert_eq!(report.quarantined_count(), k, "faults: {:?}\n{}", faults, corrupted);
        prop_assert_eq!(report.accepted, n - k);
        prop_assert_eq!(repo.user_count(), n - k);

        let err = profiles_from_csv_opts(&corrupted, LoadOptions::Strict)
            .expect_err("strict mode must reject a corrupted document");
        prop_assert!(
            err.provenance.record.is_some() || err.provenance.line.is_some(),
            "strict error must carry provenance: {}", err
        );
    }

    #[test]
    fn taxonomy_quarantine_accounting_is_exact(
        seed in 0u64..u64::MAX,
        mask in 1u8..16,
        regions in 2usize..5,
        leaves in 2usize..5,
    ) {
        let faults = structured_from_mask(&StructuredFault::TAXONOMY, mask);
        let k = faults.len();
        let n = 1 + regions + regions * leaves;
        let clean = taxonomy_to_json(&Taxonomy::generate(regions, leaves));
        let corrupted = FaultInjector::new(seed)
            .corrupt_taxonomy(&clean, &faults)
            .expect("generate(2.., 2..) has >= 4 unreferenced leaf records");

        let (taxonomy, report) = taxonomy_from_json(&corrupted, LoadOptions::Lenient)
            .expect("record-level faults are never fatal in lenient mode");
        prop_assert_eq!(report.quarantined_count(), k, "faults: {:?}\n{}", faults, corrupted);
        prop_assert_eq!(report.accepted, n - k);
        prop_assert_eq!(taxonomy.len(), n - k);

        let err = taxonomy_from_json(&corrupted, LoadOptions::Strict)
            .expect_err("strict mode must reject a corrupted document");
        prop_assert!(
            err.provenance.record.is_some() || err.provenance.line.is_some(),
            "strict error must carry provenance: {}", err
        );
    }

    #[test]
    fn rules_quarantine_accounting_is_exact(
        seed in 0u64..u64::MAX,
        mask in 1u8..16,
        implies in 4usize..8,
        functional in 1usize..4,
    ) {
        let faults = structured_from_mask(&StructuredFault::RULES, mask);
        let k = faults.len();
        let n = implies + functional;
        let clean = clean_rules(implies, functional);
        let corrupted = FaultInjector::new(seed)
            .corrupt_rules(&clean, &faults)
            .expect("4+ implies records host every fault combination");

        let (engine, report) = rules_from_json(&corrupted, LoadOptions::Lenient)
            .expect("record-level faults are never fatal in lenient mode");
        prop_assert_eq!(report.quarantined_count(), k, "faults: {:?}\n{}", faults, corrupted);
        prop_assert_eq!(report.accepted, n - k);
        prop_assert_eq!(engine.rules().len(), n - k);

        let err = rules_from_json(&corrupted, LoadOptions::Strict)
            .expect_err("strict mode must reject a corrupted document");
        prop_assert!(err.provenance.record.is_some(), "{}", err);
    }

    #[test]
    fn structured_corruption_never_panics_loaders(
        seed in 0u64..u64::MAX,
        tax_mask in 1u8..16,
        rule_mask in 1u8..16,
    ) {
        // Belt and suspenders over the accounting tests: whatever the
        // injector emits must never panic either loader in either mode.
        let taxonomy = taxonomy_to_json(&Taxonomy::generate(3, 3));
        let rules = clean_rules(5, 2);
        let mut injector = FaultInjector::new(seed);
        if let Some(doc) = injector
            .corrupt_taxonomy(&taxonomy, &structured_from_mask(&StructuredFault::TAXONOMY, tax_mask))
        {
            for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
                let _ = taxonomy_from_json(&doc, opts);
                let _ = rules_from_json(&doc, opts);
            }
        }
        if let Some(doc) = injector
            .corrupt_rules(&rules, &structured_from_mask(&StructuredFault::RULES, rule_mask))
        {
            for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
                let _ = taxonomy_from_json(&doc, opts);
                let _ = rules_from_json(&doc, opts);
            }
        }
    }

    #[test]
    fn loaders_never_panic_under_arbitrary_mutation(
        users in 1usize..8,
        edits in prop::collection::vec((0usize..100_000, 0u8..3, 0u8..=255), 1..12),
    ) {
        let json = profiles_to_json(&clean_repo(users)).unwrap();
        let csv = profiles_to_csv(&clean_repo(users));
        for base in [json, csv] {
            let mut bytes = base.into_bytes();
            for &(pos, op, byte) in &edits {
                if bytes.is_empty() {
                    break;
                }
                let at = pos % bytes.len();
                match op {
                    0 => bytes[at] = byte,
                    1 => bytes.insert(at, byte),
                    _ => {
                        bytes.remove(at);
                    }
                }
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            // Feed each mutant to BOTH loaders in both modes: no outcome is
            // asserted beyond "returns instead of panicking".
            for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
                let _ = profiles_from_json_opts(&mutated, opts);
                let _ = profiles_from_csv_opts(&mutated, opts);
            }
        }
    }

    #[test]
    fn structured_loaders_never_panic_under_arbitrary_mutation(
        pick in 0u8..2,
        edits in prop::collection::vec((0usize..100_000, 0u8..3, 0u8..=255), 1..12),
    ) {
        let base = if pick == 0 {
            r#"{ "categories": [ { "name": "Food" }, { "name": "Latin", "parent": "Food" },
                                 { "name": "Mexican", "parent": "Latin" } ] }"#
        } else {
            r#"{ "rules": [ { "type": "implies", "premise": "a", "conclusion": "b", "threshold": 0.5 },
                            { "type": "functional", "prefix": "livesIn " } ] }"#
        };
        let mut bytes = base.as_bytes().to_vec();
        for &(pos, op, byte) in &edits {
            if bytes.is_empty() {
                break;
            }
            let at = pos % bytes.len();
            match op {
                0 => bytes[at] = byte,
                1 => bytes.insert(at, byte),
                _ => {
                    bytes.remove(at);
                }
            }
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        for opts in [LoadOptions::Strict, LoadOptions::Lenient] {
            let _ = podium_data::taxonomy::taxonomy_from_json(&mutated, opts);
            let _ = podium_data::inference::rules_from_json(&mutated, opts);
        }
    }
}

/// Deterministic spot check outside the proptest harness: all six faults
/// at once, on both formats.
#[test]
fn full_fault_battery_round_trips() {
    let n = 10;
    let clean_json = profiles_to_json(&clean_repo(n)).unwrap();
    let clean_csv = profiles_to_csv(&clean_repo(n));
    for seed in 0..16 {
        let j = FaultInjector::new(seed)
            .corrupt_json(&clean_json, &FaultKind::ALL)
            .unwrap();
        let (_, report) = profiles_from_json_opts(&j, LoadOptions::Lenient).unwrap();
        assert_eq!(report.quarantined_count(), 6, "seed {seed}");
        assert_eq!(report.accepted, 4, "seed {seed}");

        let c = FaultInjector::new(seed)
            .corrupt_csv(&clean_csv, &FaultKind::ALL)
            .unwrap();
        let (_, report) = profiles_from_csv_opts(&c, LoadOptions::Lenient).unwrap();
        assert_eq!(report.quarantined_count(), 6, "seed {seed}");
        assert_eq!(report.accepted, 4, "seed {seed}");
    }
}
