//! Cross-variant equivalence: the eager, lazy-heap, and parallel lazy-heap
//! engines must produce *bit-identical* selections — same `users`, same
//! per-round `gains`, same `score`, same `covered_counts` — on randomized
//! instances with varying weights, coverage requirements above one, and
//! heavily overlapping groups.
//!
//! The guarantee holds under exact score arithmetic (integer-valued `f64`
//! weights as produced by every built-in scheme, `u64`, EBS) and the
//! `FirstUser` tie-break; see `crates/podium-core/src/engine/lazy.rs` for
//! the heap-invariant argument.

use podium_core::engine::{EngineVariant, SelectionEngine};
use podium_core::greedy::{greedy_select_opts, Selection, TieBreak};
use podium_core::group::GroupSet;
use podium_core::ids::UserId;
use podium_core::instance::DiversificationInstance;
use podium_core::lazy_greedy::lazy_greedy_select_filtered;
use podium_core::score::ScoreValue;
use podium_core::weights::{CovScheme, WeightScheme};

/// Tiny deterministic LCG so instances are reproducible without dev-deps.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random overlapping group structure: `groups` groups over `users` users,
/// sizes in `[1, max_size]`, duplicates deduplicated by `from_memberships`.
fn random_groups(seed: u64, users: usize, groups: usize, max_size: usize) -> GroupSet {
    let mut rng = Lcg(seed ^ 0x9E37_79B9_7F4A_7C15);
    let memberships: Vec<Vec<UserId>> = (0..groups)
        .map(|_| {
            let size = 1 + rng.below(max_size);
            (0..size).map(|_| UserId(rng.below(users) as u32)).collect()
        })
        .collect();
    GroupSet::from_memberships(users, memberships)
}

/// Asserts every engine variant and both legacy entry points return the
/// exact same selection as the eager reference.
fn assert_all_variants_identical<W: ScoreValue + PartialEq>(
    inst: &DiversificationInstance<W>,
    b: usize,
    eligible: Option<&[bool]>,
    context: &str,
) {
    let engine = SelectionEngine::new(inst);
    let reference = engine.eager(b, eligible, TieBreak::FirstUser);
    let candidates: [(&str, Selection<W>); 4] = [
        ("lazy_heap", engine.lazy(b, eligible)),
        ("lazy_heap_parallel", engine.lazy_parallel(b, eligible)),
        (
            "legacy_eager",
            greedy_select_opts(inst, b, eligible, TieBreak::FirstUser),
        ),
        (
            "legacy_lazy",
            lazy_greedy_select_filtered(inst, b, eligible),
        ),
    ];
    for (label, sel) in candidates {
        assert_eq!(sel.users, reference.users, "{context}: {label} users");
        assert_eq!(sel.gains, reference.gains, "{context}: {label} gains");
        assert_eq!(sel.score, reference.score, "{context}: {label} score");
        assert_eq!(
            sel.covered_counts, reference.covered_counts,
            "{context}: {label} covered_counts"
        );
    }
}

#[test]
fn builtin_schemes_agree_on_random_instances() {
    for seed in 0..20u64 {
        let users = 20 + (seed as usize % 7) * 13;
        let groups = random_groups(seed, users, 30 + seed as usize * 3, 9);
        for weight in [WeightScheme::Identical, WeightScheme::LinearBySize] {
            for cov in [CovScheme::Single, CovScheme::Proportional] {
                for b in [1usize, 4, 9] {
                    let inst = DiversificationInstance::from_schemes(&groups, weight, cov, b);
                    let ctx = format!("seed={seed} {weight:?}/{cov:?} b={b}");
                    assert_all_variants_identical(&inst, b, None, &ctx);
                }
            }
        }
    }
}

#[test]
fn custom_integer_valued_f64_weights_and_cov_above_one() {
    for seed in 30..42u64 {
        let groups = random_groups(seed, 60, 80, 12);
        let mut rng = Lcg(seed);
        // Integer-valued f64 weights (exact arithmetic), incl. zero weights,
        // and coverage requirements up to 4.
        let weights: Vec<f64> = (0..groups.len()).map(|_| rng.below(17) as f64).collect();
        let cov: Vec<u32> = (0..groups.len()).map(|_| 1 + rng.below(4) as u32).collect();
        let inst = DiversificationInstance::new(&groups, weights, cov);
        assert_all_variants_identical(&inst, 8, None, &format!("f64 seed={seed}"));
    }
}

#[test]
fn u64_weights_agree() {
    for seed in 50..60u64 {
        let groups = random_groups(seed, 45, 70, 8);
        let mut rng = Lcg(seed.wrapping_mul(3));
        let weights: Vec<u64> = (0..groups.len()).map(|_| rng.next() % 1000).collect();
        let cov: Vec<u32> = (0..groups.len()).map(|_| 1 + rng.below(3) as u32).collect();
        let inst = DiversificationInstance::new(&groups, weights, cov);
        assert_all_variants_identical(&inst, 6, None, &format!("u64 seed={seed}"));
    }
}

#[test]
fn ebs_weights_agree() {
    for seed in 70..76u64 {
        let groups = random_groups(seed, 40, 50, 7);
        let inst = DiversificationInstance::ebs(&groups, CovScheme::Proportional, 5);
        assert_all_variants_identical(&inst, 5, None, &format!("ebs seed={seed}"));
    }
}

#[test]
fn eligibility_filters_agree() {
    for seed in 80..90u64 {
        let users = 50;
        let groups = random_groups(seed, users, 60, 10);
        let mut rng = Lcg(seed ^ 0xDEAD_BEEF);
        let eligible: Vec<bool> = (0..users).map(|_| rng.below(4) != 0).collect();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            7,
        );
        let ctx = format!("eligible seed={seed}");
        assert_all_variants_identical(&inst, 7, Some(&eligible), &ctx);
    }
}

#[test]
fn budget_exceeding_population_agrees() {
    let groups = random_groups(99, 12, 25, 6);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        40,
    );
    assert_all_variants_identical(&inst, 40, None, "budget > population");
}

#[test]
fn contains_matches_linear_scan_on_engine_output() {
    let groups = random_groups(7, 64, 90, 11);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Proportional,
        10,
    );
    let sel = SelectionEngine::new(&inst).select(EngineVariant::LazyHeap, 10);
    for u in 0..64u32 {
        let u = UserId(u);
        assert_eq!(sel.contains(u), sel.users.contains(&u), "user {u:?}");
    }
}
