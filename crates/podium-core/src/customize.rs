//! Customization feedback and CUSTOM-DIVERSITY (paper §6).
//!
//! A client inspecting explanations can refine the selection through four
//! group subsets (Definition 6.1):
//!
//! * `𝒢₊` — "must have": every selected user must belong to at least one
//!   `𝒢₊` bucket of *each* property mentioned in `𝒢₊`;
//! * `𝒢₋` — "must not": selected users must belong to none of them;
//! * `𝒢_d` — "priority coverage": covered before anything else;
//! * `𝒢_d?` — "standard coverage": covered only to break ties among
//!   priority-optimal subsets. Groups in neither set are ignored.
//!
//! `𝒢₊`/`𝒢₋` refine the candidate pool to `𝒰'` (Definition 6.3); the
//! objective becomes lexicographic. The paper realizes the lexicographic
//! order as `score_Gd(U) · MAX-SCORE + score_Gd?(U)`; we instead run the
//! same greedy over exact [`LexPair`] values (documented deviation — same
//! semantics, no overflow; see `DESIGN.md`).

//! ```
//! use podium_core::customize::{custom_select, Feedback};
//! use podium_core::prelude::*;
//!
//! let mut repo = UserRepository::new();
//! let a = repo.add_user("a");
//! let b = repo.add_user("b");
//! let p = repo.intern_property("avgRating Mexican");
//! repo.set_score(a, p, 0.9).unwrap();
//! repo.set_score(b, p, 0.2).unwrap();
//! let buckets = BucketingConfig::paper_default().bucketize(&repo);
//! let groups = GroupSet::build(&repo, &buckets);
//!
//! // Must-have: the "high" Mexican bucket — only `a` qualifies.
//! let feedback = Feedback {
//!     must_have: vec![GroupId(1)],
//!     ..Feedback::default()
//! };
//! let sel = custom_select(
//!     &repo, &groups, WeightScheme::LinearBySize, CovScheme::Single, 2, &feedback,
//! ).unwrap();
//! assert_eq!(sel.pool_size, 1);
//! assert_eq!(sel.users(), &[a]);
//! ```

use std::collections::{HashMap, HashSet};

use crate::error::{CoreError, Result};
use crate::greedy::{greedy_select_opts, Selection, TieBreak};
use crate::group::{GroupKind, GroupSet};
use crate::ids::{GroupId, PropertyId, UserId};
use crate::instance::DiversificationInstance;
use crate::profile::UserRepository;
use crate::score::{LexPair, ScoreValue};
use crate::weights::{CovScheme, WeightScheme};

/// Customization feedback (Definition 6.1). Defaults: no filters, no
/// priority groups, every group at standard coverage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Feedback {
    /// `𝒢₊` — "must have" groups.
    pub must_have: Vec<GroupId>,
    /// `𝒢₋` — "must not" groups.
    pub must_not: Vec<GroupId>,
    /// `𝒢_d` — "priority coverage" groups.
    pub priority: Vec<GroupId>,
    /// `𝒢_d?` — "standard coverage" groups. `None` means the default
    /// `𝒢 − 𝒢_d` (every non-priority group).
    pub standard: Option<Vec<GroupId>>,
}

impl Feedback {
    /// An empty feedback: CUSTOM-DIVERSITY degenerates to BASE-DIVERSITY.
    pub fn none() -> Self {
        Self::default()
    }

    /// Validates that no group is simultaneously required and forbidden.
    pub fn validate(&self) -> Result<()> {
        let forbidden: HashSet<GroupId> = self.must_not.iter().copied().collect();
        if let Some(&g) = self.must_have.iter().find(|g| forbidden.contains(g)) {
            return Err(CoreError::ContradictoryFeedback(g));
        }
        Ok(())
    }

    /// The effective standard-coverage set: explicit `𝒢_d?` or the default
    /// `𝒢 − 𝒢_d`.
    pub fn standard_groups(&self, groups: &GroupSet) -> Vec<GroupId> {
        match &self.standard {
            Some(s) => s.clone(),
            None => {
                let pri: HashSet<GroupId> = self.priority.iter().copied().collect();
                groups.ids().filter(|g| !pri.contains(g)).collect()
            }
        }
    }
}

/// Computes the refined user pool `𝒰'` (Definition 6.3) as a per-user
/// eligibility mask over the *original* repository indexing.
///
/// For `𝒢₊`, requirements are grouped by property: a user qualifies if, for
/// every property appearing in `𝒢₊`, they belong to at least one of that
/// property's `𝒢₊` buckets ("if `𝒢₊` contains more than one bucket of some
/// property p, users need only belong to one of them"). `𝒢₋` groups must
/// all be avoided. Complex groups in `𝒢₊` are treated as their own
/// "property" (each must be individually satisfied).
pub fn refine_pool(groups: &GroupSet, feedback: &Feedback) -> Result<Vec<bool>> {
    feedback.validate()?;
    let n = groups.user_count();

    // Group must-have requirements by defining property.
    #[derive(Hash, PartialEq, Eq, Clone, Copy)]
    enum Requirement {
        Property(PropertyId),
        Complex(GroupId),
    }
    let mut required: HashMap<Requirement, Vec<GroupId>> = HashMap::new();
    for &g in &feedback.must_have {
        let key = match &groups.group(g)?.kind {
            GroupKind::Simple { property, .. } => Requirement::Property(*property),
            GroupKind::Complex { .. } => Requirement::Complex(g),
        };
        required.entry(key).or_default().push(g);
    }

    let mut eligible = vec![true; n];
    for (_, alternatives) in required.iter() {
        // User must belong to >= 1 alternative bucket of this property.
        let mut ok = vec![false; n];
        for &g in alternatives {
            for &u in &groups.group(g)?.members {
                ok[u.index()] = true;
            }
        }
        for u in 0..n {
            eligible[u] &= ok[u];
        }
    }
    for &g in &feedback.must_not {
        for &u in &groups.group(g)?.members {
            eligible[u.index()] = false;
        }
    }
    Ok(eligible)
}

/// The result of a customized selection.
#[derive(Debug, Clone)]
pub struct CustomSelection {
    /// The underlying selection; `score` is the lexicographic pair.
    pub selection: Selection<LexPair<f64>>,
    /// Number of users surviving the `𝒢₊`/`𝒢₋` refinement.
    pub pool_size: usize,
    /// Fraction of priority groups covered — the *Feedback Group Coverage*
    /// metric of Figure 4.
    pub feedback_group_coverage: f64,
}

impl CustomSelection {
    /// Selected users, in selection order.
    pub fn users(&self) -> &[UserId] {
        &self.selection.users
    }

    /// The priority-groups score (primary objective).
    pub fn priority_score(&self) -> f64 {
        self.selection.score.priority
    }

    /// The standard-groups score (tie-breaking objective).
    pub fn standard_score(&self) -> f64 {
        self.selection.score.standard
    }
}

/// Solves CUSTOM-DIVERSITY greedily (Proposition 6.5): refine the pool to
/// `𝒰'`, re-weight groups into exact lexicographic `(priority, standard)`
/// pairs, and run Algorithm 1. The `(1 − 1/e)` guarantee carries over
/// because the lexicographic score is still monotone submodular
/// (Lemma 6.6).
pub fn custom_select(
    repo: &UserRepository,
    groups: &GroupSet,
    weight: WeightScheme,
    cov: CovScheme,
    budget: usize,
    feedback: &Feedback,
) -> Result<CustomSelection> {
    let _ = repo; // the repository defines 𝒰; kept for API symmetry/validation
    let base = weight.weights(groups);
    let covs = cov.cov(groups, budget);
    let (selection, pool_size, feedback_group_coverage) =
        custom_select_weighted(groups, &base, &covs, budget, feedback)?;
    Ok(CustomSelection {
        selection,
        pool_size,
        feedback_group_coverage,
    })
}

/// The generic core of CUSTOM-DIVERSITY: works for *any* [`ScoreValue`]
/// weight vector (f64 Iden/LBS/custom, exact EBS, …), per the framework's
/// claim that the customization layer composes with every weight choice.
/// Returns the lexicographic selection, the refined pool size, and the
/// feedback group coverage.
pub fn custom_select_weighted<T: ScoreValue>(
    groups: &GroupSet,
    base_weights: &[T],
    covs: &[u32],
    budget: usize,
    feedback: &Feedback,
) -> Result<(Selection<LexPair<T>>, usize, f64)> {
    assert_eq!(base_weights.len(), groups.len(), "one weight per group");
    assert_eq!(covs.len(), groups.len(), "one coverage size per group");
    if budget == 0 {
        // Surfaced as an error rather than an empty selection: a zero
        // budget in a customization round is always a caller bug.
        return Err(CoreError::ZeroBudget);
    }
    let eligible = refine_pool(groups, feedback)?;
    let pool_size = eligible.iter().filter(|&&e| e).count();

    let pri: HashSet<GroupId> = feedback.priority.iter().copied().collect();
    let std_set: HashSet<GroupId> = feedback.standard_groups(groups).into_iter().collect();

    let weights: Vec<LexPair<T>> = groups
        .ids()
        .map(|g| {
            if pri.contains(&g) {
                LexPair::priority(base_weights[g.index()].clone())
            } else if std_set.contains(&g) {
                LexPair::standard(base_weights[g.index()].clone())
            } else {
                // Groups in neither set carry zero weight: ignored.
                LexPair::zero()
            }
        })
        .collect();
    let inst = DiversificationInstance::new(groups, weights, covs.to_vec());
    let selection = greedy_select_opts(&inst, budget, Some(&eligible), TieBreak::FirstUser);

    let feedback_group_coverage = if feedback.priority.is_empty() {
        1.0
    } else {
        let covered = feedback
            .priority
            .iter()
            .filter(|g| selection.covered_counts[g.index()] >= inst.cov(**g))
            .count();
        covered as f64 / feedback.priority.len() as f64
    };
    Ok((selection, pool_size, feedback_group_coverage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketingConfig;

    fn table2_setup() -> (UserRepository, GroupSet) {
        let repo = crate::testutil::table2();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        (repo, groups)
    }

    fn groups_of_props(groups: &GroupSet, repo: &UserRepository, prefix: &str) -> Vec<GroupId> {
        let mut out = Vec::new();
        for p in 0..repo.property_count() {
            let pid = PropertyId::from_index(p);
            if repo.property_label(pid).unwrap().starts_with(prefix) {
                out.extend(groups.groups_of_property(pid));
            }
        }
        out
    }

    #[test]
    fn example_64_refinement_excludes_carol() {
        let (repo, groups) = table2_setup();
        // Must-have: all buckets of avgRating Mexican -> users who rated
        // Mexican food at all. Carol did not.
        let feedback = Feedback {
            must_have: groups_of_props(&groups, &repo, "avgRating Mexican"),
            ..Feedback::default()
        };
        let eligible = refine_pool(&groups, &feedback).unwrap();
        let carol = repo.user_by_name("Carol").unwrap();
        assert!(!eligible[carol.index()]);
        assert_eq!(eligible.iter().filter(|&&e| e).count(), 4);
    }

    #[test]
    fn example_64_full_selection() {
        let (repo, groups) = table2_setup();
        let feedback = Feedback {
            must_have: groups_of_props(&groups, &repo, "avgRating Mexican"),
            priority: groups_of_props(&groups, &repo, "livesIn"),
            ..Feedback::default()
        };
        let sel = custom_select(
            &repo,
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
            &feedback,
        )
        .unwrap();
        // Best subset is still {Alice, Eve}: priority score 3 (Tokyo 2 +
        // Paris 1), tie-broken by standard score 14.
        let alice = repo.user_by_name("Alice").unwrap();
        let eve = repo.user_by_name("Eve").unwrap();
        assert_eq!(sel.users(), &[alice, eve]);
        assert_eq!(sel.priority_score(), 3.0);
        assert_eq!(sel.standard_score(), 14.0);
        assert_eq!(sel.pool_size, 4);
    }

    #[test]
    fn must_not_filters_members() {
        let (repo, groups) = table2_setup();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let tg = groups.groups_of_property(tokyo)[0];
        let feedback = Feedback {
            must_not: vec![tg],
            ..Feedback::default()
        };
        let eligible = refine_pool(&groups, &feedback).unwrap();
        let alice = repo.user_by_name("Alice").unwrap();
        let david = repo.user_by_name("David").unwrap();
        assert!(!eligible[alice.index()]);
        assert!(!eligible[david.index()]);
        assert_eq!(eligible.iter().filter(|&&e| e).count(), 3);
    }

    #[test]
    fn contradictory_feedback_rejected() {
        let (_, groups) = table2_setup();
        let g = GroupId(0);
        let feedback = Feedback {
            must_have: vec![g],
            must_not: vec![g],
            ..Feedback::default()
        };
        assert!(matches!(
            refine_pool(&groups, &feedback),
            Err(CoreError::ContradictoryFeedback(_))
        ));
    }

    #[test]
    fn zero_budget_rejected() {
        let (repo, groups) = table2_setup();
        let err = custom_select(
            &repo,
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            0,
            &Feedback::none(),
        )
        .unwrap_err();
        assert_eq!(err, CoreError::ZeroBudget);
    }

    #[test]
    fn empty_feedback_matches_base_diversity() {
        let (repo, groups) = table2_setup();
        let sel = custom_select(
            &repo,
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
            &Feedback::none(),
        )
        .unwrap();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let base = crate::greedy::greedy_select(&inst, 2);
        assert_eq!(sel.users(), base.users.as_slice());
        assert_eq!(sel.priority_score(), 0.0, "no priority groups");
        assert_eq!(sel.standard_score(), base.score);
        assert_eq!(sel.feedback_group_coverage, 1.0, "vacuously covered");
    }

    #[test]
    fn explicit_standard_set_ignores_other_groups() {
        // 𝒢_d? = ∅: only priority groups matter; any priority-optimal subset
        // is acceptable (Example 6.4's closing remark).
        let (repo, groups) = table2_setup();
        let feedback = Feedback {
            priority: groups_of_props(&groups, &repo, "livesIn"),
            standard: Some(Vec::new()),
            ..Feedback::default()
        };
        let sel = custom_select(
            &repo,
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
            &feedback,
        )
        .unwrap();
        assert_eq!(sel.priority_score(), 3.0, "max livesIn weight with 2 users");
        assert_eq!(sel.standard_score(), 0.0, "standard groups carry no weight");
    }

    #[test]
    fn feedback_group_coverage_measures_priority_cover() {
        let (repo, groups) = table2_setup();
        // Prioritize every livesIn group (4 of them) with budget 2: at most
        // 2 can be covered (one city per user; Tokyo has 2 residents but
        // only one is picked).
        let feedback = Feedback {
            priority: groups_of_props(&groups, &repo, "livesIn"),
            ..Feedback::default()
        };
        let sel = custom_select(
            &repo,
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
            &feedback,
        )
        .unwrap();
        assert!((sel.feedback_group_coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn must_have_alternatives_within_property() {
        // 𝒢₊ with two buckets of the same property: membership in either
        // suffices.
        let (repo, groups) = table2_setup();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let both = groups.groups_of_property(mex);
        assert_eq!(both.len(), 2);
        let feedback = Feedback {
            must_have: both,
            ..Feedback::default()
        };
        let eligible = refine_pool(&groups, &feedback).unwrap();
        // Alice (high), Bob (low), David (high), Eve (high) qualify.
        assert_eq!(eligible.iter().filter(|&&e| e).count(), 4);
    }

    #[test]
    fn ebs_weights_compose_with_customization() {
        // CUSTOM-DIVERSITY over exact EBS weights: the priority tier still
        // dominates, and within a tier larger groups dominate smaller ones.
        use crate::score::EbsValue;
        use crate::weights::ebs_weights;
        let (repo, groups) = table2_setup();
        let base: Vec<EbsValue> = ebs_weights(&groups);
        let covs = crate::weights::CovScheme::Single.cov(&groups, 2);
        let feedback = Feedback {
            priority: groups_of_props(&groups, &repo, "livesIn"),
            ..Feedback::default()
        };
        let (sel, pool, cov) = custom_select_weighted(&groups, &base, &covs, 2, &feedback).unwrap();
        assert_eq!(pool, 5, "no must-have filter");
        assert_eq!(sel.users.len(), 2);
        // Tokyo (the largest livesIn group) must be covered first under EBS.
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let tg = groups.groups_of_property(tokyo)[0];
        assert!(
            sel.covered_counts[tg.index()] >= 1,
            "largest priority group covered"
        );
        assert!(cov > 0.0);
    }

    #[test]
    fn weighted_variant_matches_f64_wrapper() {
        let (repo, groups) = table2_setup();
        let feedback = Feedback {
            must_have: groups_of_props(&groups, &repo, "avgRating Mexican"),
            priority: groups_of_props(&groups, &repo, "livesIn"),
            ..Feedback::default()
        };
        let via_wrapper = custom_select(
            &repo,
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
            &feedback,
        )
        .unwrap();
        let base = WeightScheme::LinearBySize.weights(&groups);
        let covs = CovScheme::Single.cov(&groups, 2);
        let (sel, pool, cov) = custom_select_weighted(&groups, &base, &covs, 2, &feedback).unwrap();
        assert_eq!(via_wrapper.users(), sel.users.as_slice());
        assert_eq!(via_wrapper.pool_size, pool);
        assert_eq!(via_wrapper.feedback_group_coverage, cov);
    }

    #[test]
    fn must_have_across_properties_is_conjunctive() {
        let (repo, groups) = table2_setup();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let mut must = groups.groups_of_property(tokyo);
        must.extend(groups.groups_of_property(mex));
        let feedback = Feedback {
            must_have: must,
            ..Feedback::default()
        };
        let eligible = refine_pool(&groups, &feedback).unwrap();
        // Tokyo residents who rated Mexican: Alice and David only.
        let alice = repo.user_by_name("Alice").unwrap();
        let david = repo.user_by_name("David").unwrap();
        let qualified: Vec<usize> = eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(qualified, vec![alice.index(), david.index()]);
    }
}
