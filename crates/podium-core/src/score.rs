//! Score value abstraction for group weights and selection scores.
//!
//! The paper's weight functions (Definition 3.6) produce values of very
//! different magnitudes: Iden and LBS are small integers, while EBS assigns
//! `wei(G) = (B+1)^ord(G)` — astronomically large exponents for repositories
//! with thousands of groups, far beyond `f64` range. Likewise, the
//! CUSTOM-DIVERSITY objective (§6) is a lexicographic combination
//! `score_Gd(U) · MAX-SCORE + score_Gd?(U)`.
//!
//! Rather than approximating these with floating point, the selection
//! algorithms are generic over a [`ScoreValue`] type:
//!
//! * [`f64`] — Iden, LBS and arbitrary custom weights;
//! * [`EbsValue`] — exact EBS weights represented as sparse base-`(B+1)`
//!   numbers (the marginal score of any subset has per-exponent digits
//!   bounded by `cov(G) ≤ B < B+1`, so digit-wise arithmetic never carries);
//! * [`LexPair`] — exact lexicographic `(priority, standard)` pairs used for
//!   CUSTOM-DIVERSITY instead of the paper's `MAX-SCORE` multiplication
//!   (documented deviation: identical semantics, no overflow).

/// Values that can serve as group weights and accumulated selection scores.
///
/// Implementations must form an ordered commutative monoid under addition,
/// with subtraction defined whenever the result stays non-negative (the
/// greedy algorithm only ever subtracts weights it previously added).
///
/// `Send + Sync` is required so the selection engine can evaluate marginal
/// contributions across scoped threads (the `parallel` feature); score
/// values are plain data, so every reasonable implementation satisfies it.
pub trait ScoreValue: Clone + PartialOrd + std::fmt::Debug + Send + Sync {
    /// The additive identity.
    fn zero() -> Self;
    /// `self += other`.
    fn add_assign(&mut self, other: &Self);
    /// `self -= other`. Callers guarantee `other` was previously added.
    fn sub_assign(&mut self, other: &Self);
    /// Whether this value equals [`ScoreValue::zero`].
    fn is_zero(&self) -> bool;
    /// A lossy scalar rendering for reports and explanations.
    fn as_f64(&self) -> f64;
    /// Whether this value is a well-formed weight. Exact integer-like types
    /// are always valid (the default); floating-point implementations must
    /// reject non-finite and negative values, which would silently corrupt
    /// greedy marginal arithmetic. Checked by
    /// [`crate::instance::DiversificationInstance::validate`].
    fn is_valid(&self) -> bool {
        true
    }
}

impl ScoreValue for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn add_assign(&mut self, other: &Self) {
        *self += *other;
    }
    #[inline]
    fn sub_assign(&mut self, other: &Self) {
        *self -= *other;
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    #[inline]
    fn as_f64(&self) -> f64 {
        *self
    }
    #[inline]
    fn is_valid(&self) -> bool {
        self.is_finite() && *self >= 0.0
    }
}

impl ScoreValue for u64 {
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn add_assign(&mut self, other: &Self) {
        *self = self
            .checked_add(*other)
            .expect("u64 score overflow; use f64 or EbsValue weights");
    }
    #[inline]
    fn sub_assign(&mut self, other: &Self) {
        *self = self
            .checked_sub(*other)
            .expect("u64 score underflow; subtracted weight was never added");
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0
    }
    #[inline]
    fn as_f64(&self) -> f64 {
        *self as f64
    }
}

/// Exact Enforced-By-Size (EBS) score: a sparse number in base `B+1`.
///
/// A single group's weight is `(B+1)^ord(G)`, stored as one `(ord, 1)` digit.
/// Selection scores are sums `Σ wei(G) · min{|U ∩ G|, cov(G)}`; every
/// coefficient is at most `cov(G) ≤ B`, i.e. strictly below the base, so
/// comparing two scores digit-wise from the highest exponent is exact and no
/// carry propagation is ever needed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EbsValue {
    /// `(exponent, coefficient)` pairs sorted by descending exponent, with
    /// all coefficients nonzero.
    digits: Vec<(u32, u32)>,
}

impl EbsValue {
    /// The weight of the group with size-order `ord`: `(B+1)^ord`.
    pub fn power(ord: u32) -> Self {
        Self {
            digits: vec![(ord, 1)],
        }
    }

    /// Borrow the `(exponent, coefficient)` digits, descending by exponent.
    pub fn digits(&self) -> &[(u32, u32)] {
        &self.digits
    }

    /// The highest exponent with a nonzero coefficient, if any.
    pub fn leading_exponent(&self) -> Option<u32> {
        self.digits.first().map(|&(e, _)| e)
    }
}

impl PartialOrd for EbsValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EbsValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Compare digit-by-digit from the most significant exponent.
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            match (self.digits.get(i), other.digits.get(j)) {
                (None, None) => return std::cmp::Ordering::Equal,
                (Some(_), None) => return std::cmp::Ordering::Greater,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(&(ea, ca)), Some(&(eb, cb))) => {
                    if ea != eb {
                        return ea.cmp(&eb);
                    }
                    if ca != cb {
                        return ca.cmp(&cb);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

impl ScoreValue for EbsValue {
    fn zero() -> Self {
        Self::default()
    }

    fn add_assign(&mut self, other: &Self) {
        if other.digits.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.digits.len() + other.digits.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.digits.len() || j < other.digits.len() {
            match (self.digits.get(i), other.digits.get(j)) {
                (Some(&(ea, ca)), Some(&(eb, cb))) => {
                    if ea > eb {
                        merged.push((ea, ca));
                        i += 1;
                    } else if eb > ea {
                        merged.push((eb, cb));
                        j += 1;
                    } else {
                        merged.push((ea, ca + cb));
                        i += 1;
                        j += 1;
                    }
                }
                (Some(&d), None) => {
                    merged.push(d);
                    i += 1;
                }
                (None, Some(&d)) => {
                    merged.push(d);
                    j += 1;
                }
                // podium-lint: allow(unreachable) — the merge loop runs only while either side has digits left
                (None, None) => unreachable!(),
            }
        }
        self.digits = merged;
    }

    fn sub_assign(&mut self, other: &Self) {
        for &(e, c) in &other.digits {
            match self.digits.binary_search_by(|&(ee, _)| e.cmp(&ee)) {
                Ok(idx) => {
                    let cur = &mut self.digits[idx].1;
                    assert!(*cur >= c, "EbsValue underflow at exponent {e}");
                    *cur -= c;
                    if *cur == 0 {
                        self.digits.remove(idx);
                    }
                }
                // podium-lint: allow(panic) — EBS underflow means corrupted marginal accounting; fail fast rather than serve wrong scores
                Err(_) => panic!("EbsValue underflow: missing exponent {e}"),
            }
        }
    }

    fn is_zero(&self) -> bool {
        self.digits.is_empty()
    }

    fn as_f64(&self) -> f64 {
        // Lossy: meaningful only for small exponents; reports use the
        // leading exponent otherwise.
        self.digits
            .iter()
            .map(|&(e, c)| c as f64 * 10f64.powi(e.min(300) as i32))
            .sum()
    }
}

/// Lexicographically ordered `(priority, standard)` score pair.
///
/// Implements the CUSTOM-DIVERSITY objective of §6 exactly: a subset is
/// better if it has a higher priority-group score, with the standard-group
/// score breaking ties — equivalent to the paper's
/// `score_Gd(U) · MAX-SCORE + score_Gd?(U)` without the overflow hazard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LexPair<T: ScoreValue> {
    /// Score accumulated from "priority coverage" groups (`𝒢_d`).
    pub priority: T,
    /// Score accumulated from "standard coverage" groups (`𝒢_d?`).
    pub standard: T,
}

impl<T: ScoreValue> LexPair<T> {
    /// A pure priority-group weight.
    pub fn priority(w: T) -> Self {
        Self {
            priority: w,
            standard: T::zero(),
        }
    }

    /// A pure standard-group weight.
    pub fn standard(w: T) -> Self {
        Self {
            priority: T::zero(),
            standard: w,
        }
    }
}

impl<T: ScoreValue> PartialOrd for LexPair<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        match self.priority.partial_cmp(&other.priority) {
            Some(std::cmp::Ordering::Equal) => self.standard.partial_cmp(&other.standard),
            ord => ord,
        }
    }
}

impl<T: ScoreValue> ScoreValue for LexPair<T> {
    fn zero() -> Self {
        Self {
            priority: T::zero(),
            standard: T::zero(),
        }
    }
    fn add_assign(&mut self, other: &Self) {
        self.priority.add_assign(&other.priority);
        self.standard.add_assign(&other.standard);
    }
    fn sub_assign(&mut self, other: &Self) {
        self.priority.sub_assign(&other.priority);
        self.standard.sub_assign(&other.standard);
    }
    fn is_zero(&self) -> bool {
        self.priority.is_zero() && self.standard.is_zero()
    }
    fn as_f64(&self) -> f64 {
        self.priority.as_f64() * 1e9 + self.standard.as_f64()
    }
    fn is_valid(&self) -> bool {
        self.priority.is_valid() && self.standard.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add<T: ScoreValue>(mut a: T, b: &T) -> T {
        a.add_assign(b);
        a
    }

    #[test]
    fn f64_score_value() {
        let mut x = f64::zero();
        assert!(x.is_zero());
        x.add_assign(&2.5);
        x.add_assign(&1.0);
        x.sub_assign(&0.5);
        assert_eq!(x, 3.0);
    }

    #[test]
    fn ebs_power_ordering_dominates() {
        // One group of order 5 beats any sum of lower-order groups with
        // small coefficients — the defining EBS property.
        let high = EbsValue::power(5);
        let mut low = EbsValue::zero();
        for ord in 0..5 {
            for _ in 0..7 {
                low.add_assign(&EbsValue::power(ord));
            }
        }
        assert!(high > low);
    }

    #[test]
    fn ebs_add_merges_digits() {
        let a = add(EbsValue::power(3), &EbsValue::power(1));
        let b = add(EbsValue::power(1), &EbsValue::power(3));
        assert_eq!(a, b);
        assert_eq!(a.digits(), &[(3, 1), (1, 1)]);
        let c = add(a.clone(), &EbsValue::power(3));
        assert_eq!(c.digits(), &[(3, 2), (1, 1)]);
    }

    #[test]
    fn ebs_sub_restores() {
        let mut x = EbsValue::zero();
        x.add_assign(&EbsValue::power(4));
        x.add_assign(&EbsValue::power(2));
        x.add_assign(&EbsValue::power(4));
        x.sub_assign(&EbsValue::power(4));
        assert_eq!(x.digits(), &[(4, 1), (2, 1)]);
        x.sub_assign(&EbsValue::power(4));
        x.sub_assign(&EbsValue::power(2));
        assert!(x.is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn ebs_sub_underflow_panics() {
        let mut x = EbsValue::power(1);
        x.sub_assign(&EbsValue::power(2));
    }

    #[test]
    fn ebs_comparison_tiebreaks_on_lower_digits() {
        let a = add(EbsValue::power(3), &EbsValue::power(1));
        let b = add(EbsValue::power(3), &EbsValue::power(0));
        assert!(a > b);
        let c = add(EbsValue::power(3), &EbsValue::power(1));
        assert_eq!(a.partial_cmp(&c), Some(std::cmp::Ordering::Equal));
    }

    #[test]
    fn ebs_leading_exponent() {
        assert_eq!(EbsValue::zero().leading_exponent(), None);
        let x = add(EbsValue::power(2), &EbsValue::power(7));
        assert_eq!(x.leading_exponent(), Some(7));
    }

    #[test]
    fn lexpair_priority_dominates() {
        let a = LexPair::<f64>::priority(1.0);
        let b = LexPair::<f64>::standard(1_000_000.0);
        assert!(a > b);
    }

    #[test]
    fn lexpair_standard_breaks_ties() {
        let mut a = LexPair::<f64>::priority(2.0);
        a.add_assign(&LexPair::standard(5.0));
        let mut b = LexPair::<f64>::priority(2.0);
        b.add_assign(&LexPair::standard(7.0));
        assert!(b > a);
    }

    #[test]
    fn lexpair_arithmetic() {
        let mut x = LexPair::<f64>::zero();
        assert!(x.is_zero());
        x.add_assign(&LexPair::priority(1.0));
        x.add_assign(&LexPair::standard(3.0));
        x.sub_assign(&LexPair::standard(1.0));
        assert_eq!(x.priority, 1.0);
        assert_eq!(x.standard, 2.0);
    }

    #[test]
    fn lexpair_nests_with_ebs() {
        // LexPair<EbsValue> composes: customization on top of EBS weights.
        let a = LexPair::<EbsValue>::priority(EbsValue::power(1));
        let b = LexPair::<EbsValue>::standard(EbsValue::power(9));
        assert!(a > b);
    }
}
