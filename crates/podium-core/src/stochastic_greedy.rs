//! Stochastic greedy selection (Mirzasoleiman et al., AAAI 2015).
//!
//! A third engine for BASE-DIVERSITY, in the spirit of the paper's §10
//! future-work direction of injecting randomness into the selection. Each
//! round evaluates only a random sample of `⌈(n/B)·ln(1/ε)⌉` candidates
//! instead of all of them, yielding a `(1 − 1/e − ε)` approximation *in
//! expectation* at a fraction of the marginal evaluations. Randomness is
//! fully determined by the seed.
//!
//! Compared here mainly as an ablation: on Podium-sized budgets the exact
//! greedy is already fast, but on very large repositories the sampling
//! variant trades a provably small amount of score for near-constant
//! per-round work.

use crate::greedy::Selection;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// Runs stochastic greedy with accuracy parameter `epsilon ∈ (0, 1)`.
///
/// Smaller `epsilon` means larger per-round samples (more work, better
/// score). `epsilon = 0` degenerates to full scans (exact greedy behavior
/// up to tie-breaking). The sampling loop runs in [`crate::engine`] over
/// CSR adjacency; the RNG stream and hence the selections are unchanged.
pub fn stochastic_greedy_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    epsilon: f64,
    seed: u64,
) -> Selection<W> {
    crate::engine::stochastic_once(inst, b, epsilon, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::group::GroupSet;
    use crate::ids::UserId;
    use crate::weights::{CovScheme, WeightScheme};

    fn random_instance(seed: u64, users: usize, groups: usize) -> GroupSet {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            (state >> 33) as usize
        };
        let memberships: Vec<Vec<UserId>> = (0..groups)
            .map(|_| {
                let size = 1 + next() % (users / 2 + 1);
                let mut m: Vec<UserId> = (0..size)
                    .map(|_| UserId::from_index(next() % users))
                    .collect();
                m.sort();
                m.dedup();
                m
            })
            .collect();
        GroupSet::from_memberships(users, memberships)
    }

    #[test]
    fn epsilon_zero_is_a_full_scan_greedy() {
        // With ε = 0 every round scans all candidates, so each accepted gain
        // is a true argmax; the total score matches the deterministic greedy
        // up to tie-breaking (ties can steer greedy to different — rarely
        // slightly different-scoring — optima, so compare within 2%).
        for seed in 0..10 {
            let g = random_instance(seed, 20, 30);
            let inst = DiversificationInstance::from_schemes(
                &g,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                5,
            );
            let exact = greedy_select(&inst, 5);
            let stoch = stochastic_greedy_select(&inst, 5, 0.0, seed);
            assert!(
                (stoch.score - exact.score).abs() <= 0.02 * exact.score,
                "seed {seed}: {} vs {}",
                stoch.score,
                exact.score
            );
            // First gain must be the global argmax — identical by definition.
            assert_eq!(stoch.gains[0], exact.gains[0], "seed {seed}");
        }
    }

    #[test]
    fn small_epsilon_stays_close_to_greedy() {
        let mut total_exact = 0.0;
        let mut total_stoch = 0.0;
        for seed in 0..20 {
            let g = random_instance(seed + 100, 40, 60);
            let inst = DiversificationInstance::from_schemes(
                &g,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                6,
            );
            total_exact += greedy_select(&inst, 6).score;
            total_stoch += stochastic_greedy_select(&inst, 6, 0.1, seed).score;
        }
        assert!(
            total_stoch >= 0.85 * total_exact,
            "stochastic {total_stoch} vs exact {total_exact}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = random_instance(7, 25, 40);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            5,
        );
        let a = stochastic_greedy_select(&inst, 5, 0.2, 9);
        let b = stochastic_greedy_select(&inst, 5, 0.2, 9);
        assert_eq!(a.users, b.users);
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn no_duplicates_within_budget() {
        let g = random_instance(3, 15, 20);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            20,
        );
        let sel = stochastic_greedy_select(&inst, 20, 0.3, 1);
        let mut sorted = sel.users.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), sel.users.len());
        assert_eq!(sel.users.len(), 15, "pool exhausted");
    }

    #[test]
    fn score_matches_recomputation() {
        let g = random_instance(11, 30, 45);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Proportional,
            6,
        );
        let sel = stochastic_greedy_select(&inst, 6, 0.25, 4);
        assert!((sel.score - inst.score_of(&sel.users)).abs() < 1e-9);
    }

    #[test]
    fn zero_budget() {
        let g = random_instance(1, 5, 5);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            1,
        );
        let sel = stochastic_greedy_select(&inst, 0, 0.1, 0);
        assert!(sel.users.is_empty());
    }
}
