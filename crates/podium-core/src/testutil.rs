//! Shared test fixtures (compiled only for tests).

use crate::profile::UserRepository;

/// Builds the paper's Table 2 repository: five users (Alice, Bob, Carol,
/// David, Eve) over six properties. Used by tests that reproduce the
/// running examples (3.5, 3.8, 4.3, 5.2, 6.2, 6.4).
pub(crate) fn table2() -> UserRepository {
    let mut repo = UserRepository::new();
    for name in ["Alice", "Bob", "Carol", "David", "Eve"] {
        repo.add_user(name);
    }
    let mut set = |user: &str, prop: &str, score: f64| {
        let u = repo.user_by_name(user).unwrap();
        let p = repo.intern_property(prop);
        repo.set_score(u, p, score).unwrap();
    };
    set("Alice", "livesIn Tokyo", 1.0);
    set("Bob", "livesIn NYC", 1.0);
    set("Carol", "livesIn Bali", 1.0);
    set("David", "livesIn Tokyo", 1.0);
    set("Eve", "livesIn Paris", 1.0);
    set("Alice", "ageGroup 50-64", 1.0);
    set("Carol", "ageGroup 50-64", 1.0);
    set("Alice", "avgRating Mexican", 0.95);
    set("Bob", "avgRating Mexican", 0.3);
    set("David", "avgRating Mexican", 0.75);
    set("Eve", "avgRating Mexican", 0.8);
    set("Alice", "visitFreq Mexican", 0.8);
    set("Bob", "visitFreq Mexican", 0.25);
    set("David", "visitFreq Mexican", 0.6);
    set("Eve", "visitFreq Mexican", 0.45);
    set("Alice", "avgRating CheapEats", 0.1);
    set("Bob", "avgRating CheapEats", 0.9);
    set("Carol", "avgRating CheapEats", 0.45);
    set("Eve", "avgRating CheapEats", 0.6);
    set("Alice", "visitFreq CheapEats", 0.6);
    set("Bob", "visitFreq CheapEats", 0.85);
    set("Carol", "visitFreq CheapEats", 0.2);
    set("Eve", "visitFreq CheapEats", 0.3);
    repo
}
