//! Algorithm 1 (eager greedy) over CSR storage.
//!
//! Logic and edge order are identical to the historical nested-`Vec`
//! implementation in [`crate::greedy`] (which now delegates here); only the
//! adjacency representation changed, so selections — users, gains, score,
//! covered counts — are bit-for-bit the same.

use crate::greedy::{Selection, TieBreak};
use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

use super::csr::CsrGraph;

/// Eager greedy selection of at most `b` users, maintaining every
/// candidate's marginal contribution decrementally (lines 2–10 of
/// Algorithm 1).
pub(super) fn eager_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
    tie_break: TieBreak,
) -> Selection<W> {
    let n = csr.user_count();
    if let Some(e) = eligible {
        assert_eq!(e.len(), n, "one eligibility flag per user");
    }
    let weights = inst.weights();

    // Line 2: marg_{u,𝒰} = Σ_{G ∋ u} wei(G) for eligible users. Groups with
    // zero weight or zero coverage are skipped up front (the "remove links"
    // optimization of §4).
    let mut available: Vec<bool> = (0..n).map(|u| eligible.is_none_or(|e| e[u])).collect();
    let mut cov_rem: Vec<u32> = inst.covs().to_vec();
    let mut marg: Vec<W> = vec![W::zero(); n];
    for u in 0..n {
        if !available[u] {
            continue;
        }
        for &g in csr.groups_of(u) {
            let gi = g as usize;
            if cov_rem[gi] > 0 && !weights[gi].is_zero() {
                marg[u].add_assign(&weights[gi]);
            }
        }
    }

    let mut rng_state = match tie_break {
        TieBreak::Seeded(seed) => seed ^ 0x9E37_79B9_7F4A_7C15,
        TieBreak::FirstUser => 0,
    };
    let mut users = Vec::with_capacity(b.min(n));
    let mut gains = Vec::with_capacity(b.min(n));
    let mut score = W::zero();
    let mut covered_counts = vec![0u32; csr.group_count()];

    // Lines 3–10.
    for _ in 0..b {
        // Line 5: argmax over available users.
        let best = match tie_break {
            TieBreak::FirstUser => argmax_first(&marg, &available),
            TieBreak::Seeded(_) => argmax_seeded(&marg, &available, &mut rng_state),
        };
        let Some(u) = best else { break }; // line 4: pool exhausted

        // Line 6: move u from 𝒰 to U.
        available[u] = false;
        score.add_assign(&marg[u]);
        gains.push(marg[u].clone());
        users.push(UserId::from_index(u));

        // Lines 7–10: update coverage and the marginal contributions.
        for &g in csr.groups_of(u) {
            let gi = g as usize;
            covered_counts[gi] += 1;
            if cov_rem[gi] == 0 {
                continue; // group was already fully covered
            }
            cov_rem[gi] -= 1;
            if cov_rem[gi] == 0 && !weights[gi].is_zero() {
                // Group newly fully covered: it no longer contributes to any
                // other member's marginal contribution (line 10).
                for &m in csr.members_of(gi) {
                    let mi = m as usize;
                    if available[mi] {
                        marg[mi].sub_assign(&weights[gi]);
                    }
                }
            }
        }
    }

    Selection::from_parts(users, gains, score, covered_counts)
}

/// First-index argmax: ties go to the smallest user id (strictly-greater
/// replacement test, so `a > b` — i.e. `partial_cmp == Some(Greater)` —
/// is the exact replacement condition).
fn argmax_first<W: ScoreValue>(marg: &[W], available: &[bool]) -> Option<usize> {
    let mut best: Option<(usize, &W)> = None;
    for (u, (m, &ok)) in marg.iter().zip(available).enumerate() {
        if !ok {
            continue;
        }
        let replace = match best {
            None => true,
            Some((_, bm)) => m.partial_cmp(bm) == Some(std::cmp::Ordering::Greater),
        };
        if replace {
            best = Some((u, m));
        }
    }
    best.map(|(u, _)| u)
}

/// Reservoir-samples uniformly among the argmax users with a splitmix64
/// stream, so runs are reproducible for a fixed seed.
fn argmax_seeded<W: ScoreValue>(marg: &[W], available: &[bool], state: &mut u64) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut ties = 0u64;
    for u in 0..marg.len() {
        if !available[u] {
            continue;
        }
        let ord = match best {
            None => std::cmp::Ordering::Greater,
            Some(b) => marg[u]
                .partial_cmp(&marg[b])
                .unwrap_or(std::cmp::Ordering::Less),
        };
        match ord {
            std::cmp::Ordering::Greater => {
                best = Some(u);
                ties = 1;
            }
            std::cmp::Ordering::Equal => {
                ties += 1;
                if splitmix64(state).is_multiple_of(ties) {
                    best = Some(u);
                }
            }
            std::cmp::Ordering::Less => {}
        }
    }
    best
}

/// The splitmix64 PRNG step (public-domain constant stream); enough for tie
/// shuffling without pulling a full RNG dependency into the core crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
