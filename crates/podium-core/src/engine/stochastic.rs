//! Stochastic greedy (Mirzasoleiman et al., AAAI 2015) over CSR storage.
//!
//! Same sampling scheme, RNG stream, and edge order as the historical
//! implementation in [`crate::stochastic_greedy`] (which now delegates
//! here), so selections are unchanged for a fixed seed.

use crate::greedy::Selection;
use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

use super::csr::CsrGraph;

/// Stochastic greedy with accuracy parameter `epsilon ∈ (0, 1)`; each round
/// evaluates a fresh random sample of `⌈(n/B)·ln(1/ε)⌉` candidates.
pub(super) fn stochastic_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    epsilon: f64,
    seed: u64,
) -> Selection<W> {
    let n = csr.user_count();
    let b_eff = b.min(n);
    if b_eff == 0 {
        return Selection::from_parts(
            Vec::new(),
            Vec::new(),
            W::zero(),
            vec![0; csr.group_count()],
        );
    }
    let weights = inst.weights();

    // Sample size per round: ⌈(n/B) · ln(1/ε)⌉, clamped to [1, n].
    let sample_size = if epsilon <= 0.0 {
        n
    } else {
        let s = (n as f64 / b_eff as f64) * (1.0 / epsilon).ln();
        (s.ceil() as usize).clamp(1, n)
    };

    let mut cov_rem: Vec<u32> = inst.covs().to_vec();
    let mut available: Vec<u32> = (0..n as u32).collect();
    let mut rng_state = seed ^ 0x5851_F42D_4C95_7F2D;
    let mut next_u64 = move || {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let gain_of = |u: u32, cov_rem: &[u32]| -> W {
        let mut gain = W::zero();
        for &g in csr.groups_of(u as usize) {
            let gi = g as usize;
            if cov_rem[gi] > 0 {
                gain.add_assign(&weights[gi]);
            }
        }
        gain
    };

    let mut users = Vec::with_capacity(b_eff);
    let mut gains = Vec::with_capacity(b_eff);
    let mut score = W::zero();
    let mut covered_counts = vec![0u32; csr.group_count()];

    for _ in 0..b_eff {
        if available.is_empty() {
            break;
        }
        // Partial Fisher–Yates: move a fresh random sample to the front.
        let k = sample_size.min(available.len());
        for i in 0..k {
            let j = i + (next_u64() as usize) % (available.len() - i);
            available.swap(i, j);
        }
        // Best of the sample.
        let mut best_idx = 0usize;
        let mut best_gain = gain_of(available[0], &cov_rem);
        for (i, &u) in available.iter().enumerate().take(k).skip(1) {
            let gain = gain_of(u, &cov_rem);
            if gain
                .partial_cmp(&best_gain)
                .is_some_and(|o| o == std::cmp::Ordering::Greater)
            {
                best_gain = gain;
                best_idx = i;
            }
        }
        let u = available.swap_remove(best_idx);
        score.add_assign(&best_gain);
        gains.push(best_gain);
        users.push(UserId(u));
        for &g in csr.groups_of(u as usize) {
            let gi = g as usize;
            covered_counts[gi] += 1;
            if cov_rem[gi] > 0 {
                cov_rem[gi] -= 1;
            }
        }
    }

    Selection::from_parts(users, gains, score, covered_counts)
}
