//! Heap-based lazy greedy (CELF) over CSR storage.
//!
//! A max-heap holds one entry per candidate, each carrying the marginal
//! gain computed in some earlier round. Submodularity makes every stale
//! entry an *upper bound* on the candidate's current marginal, which gives
//! the heap invariant this module relies on:
//!
//! > If the entry at the top of the heap was computed in the current round
//! > (is *fresh*), it is the exact argmax — every other entry's bound,
//! > and hence its true marginal, orders at or below it.
//!
//! Ties order by smaller user id (see [`HeapEntry`]'s `Ord`), matching the
//! eager algorithm's first-index argmax, so under exact `ScoreValue`
//! arithmetic (integer-valued `f64` weights, `u64`, `EbsValue`,
//! `LexPair` of these) the lazy selection is bit-identical to the eager
//! one: same users, gains, score, and covered counts.
//!
//! Stale tops are refreshed in *bursts*: up to [`super::par::refresh_burst_cap`]
//! consecutive stale entries are popped together and re-evaluated through
//! [`super::par::map_gains`], which chunks them across scoped threads when
//! the `parallel` feature is on and the burst is large. With the feature
//! off — or on a single-worker machine, where batching cannot pay for the
//! extra refreshes — the cap is 1: the classic one-at-a-time CELF refresh.
//! The burst size never affects the selected sequence (bounds only
//! tighten), so every cap yields the same bit-identical result.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::greedy::Selection;
use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

use super::csr::CsrGraph;
use super::par;

/// A (possibly stale) upper bound on one candidate's marginal gain.
struct HeapEntry<W> {
    gain: W,
    user: u32,
    /// Selection round in which `gain` was computed.
    round: u32,
}

impl<W: ScoreValue> PartialEq for HeapEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<W: ScoreValue> Eq for HeapEntry<W> {}
impl<W: ScoreValue> PartialOrd for HeapEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W: ScoreValue> Ord for HeapEntry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("score values must be totally ordered (no NaN)")
            // Tie-break toward the smaller user id, matching the eager
            // algorithm's deterministic FirstUser policy.
            .then_with(|| other.user.cmp(&self.user))
    }
}

/// The round tag given to warm-start seed entries: never equal to the
/// current round (rounds count committed selections, bounded by the user
/// count, which [`CsrGraph`] keeps below `u32::MAX`), so every seed is
/// refreshed to its exact marginal before it can be committed.
const SEED_ROUND: u32 = u32::MAX;

/// Sequential CELF: one-at-a-time refresh, single-threaded initial gains.
pub(super) fn lazy_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
) -> Selection<W> {
    lazy_core(
        inst,
        csr,
        b,
        eligible,
        None,
        1,
        |candidates: &[u32], eval: &(dyn Fn(u32) -> W + Sync)| {
            candidates.iter().map(|&u| eval(u)).collect()
        },
        None,
    )
    .0
}

/// CELF with a warm-started heap: the round-0 candidate scan is replaced
/// by caller-provided `(user, bound)` seeds — one per candidate — where
/// each bound must be an upper bound on that user's round-0 marginal
/// gain. Seeds enter the heap tagged [`SEED_ROUND`], so they are always
/// stale: each is re-evaluated exactly before any commit, which keeps the
/// selection bit-identical to the unseeded run for *any* valid bounds.
/// See [`super::lazy_select_seeded_deadline`] for the public contract.
pub(super) fn lazy_select_seeded_interruptible<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    seeds: &[(u32, W)],
    should_stop: &mut dyn FnMut(usize) -> bool,
) -> (Selection<W>, bool) {
    lazy_core(
        inst,
        csr,
        b,
        None,
        Some(seeds),
        1,
        |candidates: &[u32], eval: &(dyn Fn(u32) -> W + Sync)| {
            candidates.iter().map(|&u| eval(u)).collect()
        },
        Some(should_stop),
    )
}

/// Sequential CELF with an interrupt hook polled between greedy rounds —
/// the deadline mechanism of serving callers. See
/// [`super::lazy_select_deadline`] for the contract.
pub(super) fn lazy_select_interruptible<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
    should_stop: &mut dyn FnMut(usize) -> bool,
) -> (Selection<W>, bool) {
    lazy_core(
        inst,
        csr,
        b,
        eligible,
        None,
        1,
        |candidates: &[u32], eval: &(dyn Fn(u32) -> W + Sync)| {
            candidates.iter().map(|&u| eval(u)).collect()
        },
        Some(should_stop),
    )
}

/// Parallel-capable CELF: initial gains and large refresh bursts are
/// chunked across scoped threads when the `parallel` feature is enabled;
/// otherwise the evaluation strategy degrades to a sequential map and the
/// refresh burst cap drops to 1. Selections are identical either way.
pub(super) fn lazy_select_parallel<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
) -> Selection<W> {
    lazy_core(
        inst,
        csr,
        b,
        eligible,
        None,
        par::refresh_burst_cap(),
        |ids: &[u32], eval: &(dyn Fn(u32) -> W + Sync)| par::map_gains(ids, eval),
        None,
    )
    .0
}

/// The shared CELF loop, generic over the batch evaluation strategy.
///
/// `evaluate(candidates, eval)` must return `eval(u)` for every candidate
/// in input order; the sequential and scoped-thread strategies only differ
/// in scheduling.
///
/// `seeds`, when present, replaces the round-0 scan: the heap is built
/// from the given `(user, upper bound)` pairs tagged [`SEED_ROUND`] (i.e.
/// permanently stale), enumerating the full candidate set — mutually
/// exclusive with `eligible`. Since commits only ever happen on fresh
/// entries, and any stale pop is refreshed to its exact marginal first,
/// valid upper bounds yield the same selection the scan would.
///
/// `interrupt`, when present, is polled with the number of committed
/// selections before the initial scan and after every committed round; a
/// `true` return stops the loop. The second component of the return value
/// is `false` iff the loop was stopped early this way — the partial
/// selection is still exactly the greedy prefix of the full run.
#[allow(clippy::too_many_arguments)]
fn lazy_core<W, E>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
    seeds: Option<&[(u32, W)]>,
    burst_cap: usize,
    evaluate: E,
    mut interrupt: Option<&mut dyn FnMut(usize) -> bool>,
) -> (Selection<W>, bool)
where
    W: ScoreValue,
    E: Fn(&[u32], &(dyn Fn(u32) -> W + Sync)) -> Vec<W>,
{
    let n = csr.user_count();
    if let Some(e) = eligible {
        assert_eq!(e.len(), n, "one eligibility flag per user");
        assert!(
            seeds.is_none(),
            "seeds enumerate the candidate set themselves; combine them \
             with an eligibility filter by omitting ineligible users"
        );
    }
    if interrupt.as_mut().is_some_and(|stop| stop(0)) {
        let sel = Selection::from_parts(
            Vec::new(),
            Vec::new(),
            W::zero(),
            vec![0u32; csr.group_count()],
        );
        return (sel, false);
    }
    let weights = inst.weights();
    let mut cov_rem: Vec<u32> = inst.covs().to_vec();
    let burst_cap = burst_cap.max(1);

    // The current marginal of `u` given the remaining coverages. Skipping
    // zero-weight groups mirrors the eager initialization ("remove links",
    // §4); it never changes the sum.
    let fresh_gain = |u: u32, cov_rem: &[u32]| -> W {
        let mut gain = W::zero();
        for &g in csr.groups_of(u as usize) {
            let gi = g as usize;
            if cov_rem[gi] > 0 && !weights[gi].is_zero() {
                gain.add_assign(&weights[gi]);
            }
        }
        gain
    };

    // Round-0 bounds: either caller-provided seed bounds (warm start, no
    // scan) or the exact initial marginals — the one full scan this
    // algorithm performs, and the main parallelization target.
    let mut heap: BinaryHeap<HeapEntry<W>> = match seeds {
        Some(seeds) => seeds
            .iter()
            .map(|(user, gain)| HeapEntry {
                gain: gain.clone(),
                user: *user,
                round: SEED_ROUND,
            })
            .collect(),
        None => {
            let candidates: Vec<u32> = (0..n as u32)
                .filter(|&u| eligible.is_none_or(|e| e[u as usize]))
                .collect();
            let initial = evaluate(&candidates, &|u| fresh_gain(u, &cov_rem));
            candidates
                .iter()
                .zip(initial)
                .map(|(&user, gain)| HeapEntry {
                    gain,
                    user,
                    round: 0,
                })
                .collect()
        }
    };

    let mut users = Vec::with_capacity(b.min(n));
    let mut gains = Vec::with_capacity(b.min(n));
    let mut score = W::zero();
    let mut covered_counts = vec![0u32; csr.group_count()];
    let mut round = 0u32;
    let mut completed = true;

    while users.len() < b {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // Fresh top entry: by the heap invariant it is the true argmax.
            score.add_assign(&top.gain);
            gains.push(top.gain);
            users.push(UserId(top.user));
            for &g in csr.groups_of(top.user as usize) {
                let gi = g as usize;
                covered_counts[gi] += 1;
                if cov_rem[gi] > 0 {
                    cov_rem[gi] -= 1;
                }
            }
            round += 1;
            if users.len() < b && interrupt.as_mut().is_some_and(|stop| stop(users.len())) {
                completed = false;
                break;
            }
            continue;
        }
        // Stale upper bound: refresh and reinsert. The classic cap-1 CELF
        // refresh stays allocation-free — it runs tens of thousands of
        // times per selection.
        if burst_cap == 1 {
            let gain = fresh_gain(top.user, &cov_rem);
            heap.push(HeapEntry {
                gain,
                user: top.user,
                round,
            });
            continue;
        }
        // Gather a burst of consecutive stale tops, refresh them all
        // through the batch evaluator, and reinsert. Refreshing extra
        // entries is wasted work at worst — bounds only tighten, never
        // loosen — so the invariant (and the selected sequence) is
        // unaffected.
        let mut batch = vec![top];
        while batch.len() < burst_cap {
            match heap.peek() {
                Some(e) if e.round != round => {
                    batch.push(heap.pop().expect("peeked entry exists"));
                }
                _ => break,
            }
        }
        let ids: Vec<u32> = batch.iter().map(|e| e.user).collect();
        let refreshed = evaluate(&ids, &|u| fresh_gain(u, &cov_rem));
        for (user, gain) in ids.into_iter().zip(refreshed) {
            heap.push(HeapEntry { gain, user, round });
        }
    }

    (
        Selection::from_parts(users, gains, score, covered_counts),
        completed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSet;
    use crate::weights::{CovScheme, WeightScheme};

    /// Any burst cap must select the identical sequence: extra refreshes
    /// only tighten bounds.
    #[test]
    fn burst_cap_never_changes_the_selection() {
        let mut state = 11u64;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % m as u64) as usize
        };
        let users = 40;
        let memberships: Vec<Vec<UserId>> = (0..55)
            .map(|_| {
                (0..1 + next(9))
                    .map(|_| UserId(next(users) as u32))
                    .collect()
            })
            .collect();
        let groups = GroupSet::from_memberships(users, memberships);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Proportional,
            10,
        );
        let csr = CsrGraph::from_group_set(&groups);
        let seq = |ids: &[u32], eval: &(dyn Fn(u32) -> f64 + Sync)| -> Vec<f64> {
            ids.iter().map(|&u| eval(u)).collect()
        };
        let reference = lazy_core(&inst, &csr, 10, None, None, 1, seq, None).0;
        for cap in [2usize, 3, 7, 64, 4096] {
            let sel = lazy_core(&inst, &csr, 10, None, None, cap, seq, None).0;
            assert_eq!(sel.users, reference.users, "cap {cap}");
            assert_eq!(sel.gains, reference.gains, "cap {cap}");
            assert_eq!(sel.score, reference.score, "cap {cap}");
            assert_eq!(sel.covered_counts, reference.covered_counts, "cap {cap}");
        }
    }

    /// Seeding with any valid upper bounds — exact initial gains, loose
    /// bounds, or a mix — must reproduce the unseeded selection exactly.
    #[test]
    fn seeded_heap_is_bit_identical_for_any_valid_bounds() {
        let mut state = 99u64;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % m as u64) as usize
        };
        let users = 35;
        let memberships: Vec<Vec<UserId>> = (0..50)
            .map(|_| {
                let mut m: Vec<UserId> = (0..1 + next(8))
                    .map(|_| UserId(next(users) as u32))
                    .collect();
                m.sort();
                m.dedup();
                m
            })
            .collect();
        let groups = GroupSet::from_memberships(users, memberships);
        let csr = CsrGraph::from_group_set(&groups);
        for (w, c) in [
            (WeightScheme::LinearBySize, CovScheme::Proportional),
            (WeightScheme::Identical, CovScheme::Single),
        ] {
            let inst = DiversificationInstance::from_schemes(&groups, w, c, 9);
            let reference = lazy_select(&inst, &csr, 9, None);
            // Exact initial gains as seeds.
            let exact: Vec<(u32, f64)> = (0..users as u32)
                .map(|u| {
                    let gain: f64 = csr
                        .groups_of(u as usize)
                        .iter()
                        .map(|&g| inst.weights()[g as usize])
                        .sum();
                    (u, gain)
                })
                .collect();
            // Loosened bounds: per-user slack never changes the result.
            let loose: Vec<(u32, f64)> = exact
                .iter()
                .map(|&(u, g)| (u, g + (u % 7) as f64))
                .collect();
            for seeds in [&exact, &loose] {
                let (sel, completed) =
                    lazy_select_seeded_interruptible(&inst, &csr, 9, seeds, &mut |_| false);
                assert!(completed);
                assert_eq!(sel.users, reference.users, "{w:?}/{c:?}");
                assert_eq!(sel.gains, reference.gains, "{w:?}/{c:?}");
                assert_eq!(sel.score, reference.score, "{w:?}/{c:?}");
                assert_eq!(sel.covered_counts, reference.covered_counts, "{w:?}/{c:?}");
            }
            // Seeded + interrupt still yields the exact greedy prefix.
            let (partial, completed) =
                lazy_select_seeded_interruptible(&inst, &csr, 9, &exact, &mut |k| k >= 3);
            assert!(!completed);
            assert_eq!(partial.users, reference.users[..3]);
        }
    }

    /// Interrupting after `k` committed rounds must yield exactly the
    /// uninterrupted selection's length-`k` greedy prefix.
    #[test]
    fn interrupt_yields_exact_greedy_prefix() {
        let users = 25;
        let memberships: Vec<Vec<UserId>> = (0..30)
            .map(|g| {
                (0..users)
                    .filter(|u| (u * 7 + g * 3) % 5 == 0)
                    .map(|u| UserId(u as u32))
                    .collect()
            })
            .collect();
        let groups = GroupSet::from_memberships(users, memberships);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            8,
        );
        let csr = CsrGraph::from_group_set(&groups);
        let full = lazy_select(&inst, &csr, 8, None);
        for k in 0..full.users.len() {
            let (partial, completed) =
                lazy_select_interruptible(&inst, &csr, 8, None, &mut |done| done >= k);
            assert!(!completed, "stop at {k} must report incompletion");
            assert_eq!(partial.users, full.users[..k], "prefix at {k}");
            assert_eq!(partial.gains, full.gains[..k], "gains at {k}");
        }
        let (all, completed) = lazy_select_interruptible(&inst, &csr, 8, None, &mut |_| false);
        assert!(completed);
        assert_eq!(all.users, full.users);
        assert_eq!(all.score, full.score);
        assert_eq!(all.covered_counts, full.covered_counts);
    }
}
