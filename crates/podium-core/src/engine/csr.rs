//! Compressed-sparse-row (CSR) storage of the bipartite user ↔ group graph.
//!
//! [`crate::group::GroupSet`] keeps one `Vec` per group and one `Vec` per
//! user — convenient to build incrementally, but the selection hot loops
//! chase a pointer per adjacency list. [`CsrGraph`] flattens both directions
//! into two offset/adjacency array pairs (ids as raw `u32`), so a candidate
//! scan walks a single contiguous buffer. The group set stays the
//! construction front-end; a `CsrGraph` is derived from it once per
//! selection run (`O(|V| + |E|)`) and is immutable afterwards.

use crate::group::GroupSet;
use crate::ids::UserId;

/// Flat bidirectional adjacency of users and groups.
///
/// Both directions preserve the `GroupSet` ordering: `groups_of(u)` lists
/// group indices in ascending order and `members_of(g)` lists user indices
/// in ascending order, exactly like their nested-`Vec` counterparts — so
/// algorithms ported to CSR traversal visit edges in the same sequence and
/// stay bit-identical to the originals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `user_adj[user_offsets[u]..user_offsets[u + 1]]` = groups of user `u`.
    user_offsets: Vec<u32>,
    user_adj: Vec<u32>,
    /// `group_adj[group_offsets[g]..group_offsets[g + 1]]` = members of `g`.
    group_offsets: Vec<u32>,
    group_adj: Vec<u32>,
}

impl CsrGraph {
    /// Builds the CSR graph of a group set.
    pub fn from_group_set(groups: &GroupSet) -> Self {
        let lists: Vec<&[UserId]> = groups.iter().map(|(_, g)| g.members.as_slice()).collect();
        Self::from_member_lists(groups.user_count(), &lists)
    }

    /// Builds the CSR graph from one sorted member list per group (groups in
    /// id order) — the shared back-end of [`CsrGraph::from_group_set`] and
    /// [`crate::incremental::IncrementalGroups::snapshot_csr`].
    pub fn from_member_lists(user_count: usize, lists: &[&[UserId]]) -> Self {
        let edges: usize = lists.iter().map(|m| m.len()).sum();
        assert!(
            user_count < u32::MAX as usize,
            "user count exceeds u32 range"
        );
        assert!(
            lists.len() < u32::MAX as usize,
            "group count exceeds u32 range"
        );
        assert!(edges < u32::MAX as usize, "edge count exceeds u32 range");

        // Group side: concatenation of the member lists.
        let mut group_offsets = Vec::with_capacity(lists.len() + 1);
        let mut group_adj = Vec::with_capacity(edges);
        group_offsets.push(0u32);
        let mut degree = vec![0u32; user_count];
        for members in lists {
            for &u in *members {
                group_adj.push(u.index() as u32);
                degree[u.index()] += 1;
            }
            group_offsets.push(group_adj.len() as u32);
        }

        // User side: counting sort by user. Groups are appended in ascending
        // id order, so each user's slice comes out ascending as well.
        let mut user_offsets = Vec::with_capacity(user_count + 1);
        user_offsets.push(0u32);
        for d in &degree {
            let last = *user_offsets.last().expect("seeded with 0");
            user_offsets.push(last + d);
        }
        let mut cursor: Vec<u32> = user_offsets[..user_count].to_vec();
        let mut user_adj = vec![0u32; edges];
        for (g, members) in lists.iter().enumerate() {
            for &u in *members {
                let c = &mut cursor[u.index()];
                user_adj[*c as usize] = g as u32;
                *c += 1;
            }
        }

        let csr = Self {
            user_offsets,
            user_adj,
            group_offsets,
            group_adj,
        };
        debug_assert!(
            csr.validate().is_ok(),
            "CSR construction violated its invariants: {}",
            csr.validate().unwrap_err()
        );
        csr
    }

    /// Checks the structural invariants of the CSR representation: offset
    /// arrays start at zero, are non-decreasing, and terminate at their
    /// adjacency length; adjacency ids are in range; every row is strictly
    /// ascending; and the two directions encode the same edge set.
    ///
    /// `O(|E| log deg)`. Construction `debug_assert!`s this, so building the
    /// selection engine under `RUSTFLAGS="-C debug-assertions"` catches
    /// corrupted group data (unsorted or duplicated member lists) before the
    /// greedy loops consume it.
    pub fn validate(&self) -> Result<(), String> {
        let users = self.user_count();
        let groups = self.group_count();
        for (side, offsets, adj, fanout) in [
            ("user", &self.user_offsets, &self.user_adj, groups),
            ("group", &self.group_offsets, &self.group_adj, users),
        ] {
            if offsets.first() != Some(&0) {
                return Err(format!("{side} offsets do not start at 0"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{side} offsets are not non-decreasing"));
            }
            if *offsets.last().expect("offsets are non-empty") as usize != adj.len() {
                return Err(format!(
                    "{side} offsets end at {} but adjacency has {} edges",
                    offsets.last().expect("offsets are non-empty"),
                    adj.len()
                ));
            }
            if let Some(&x) = adj.iter().find(|&&x| x as usize >= fanout) {
                return Err(format!("{side} adjacency id {x} out of range ({fanout})"));
            }
        }
        if self.user_adj.len() != self.group_adj.len() {
            return Err(format!(
                "direction edge counts disagree: {} vs {}",
                self.user_adj.len(),
                self.group_adj.len()
            ));
        }
        for u in 0..users {
            if self.groups_of(u).windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("groups_of({u}) is not strictly ascending"));
            }
        }
        for g in 0..groups {
            let members = self.members_of(g);
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("members_of({g}) is not strictly ascending"));
            }
            // Transpose consistency: every (g, u) edge must appear as g in
            // u's (sorted) group row. Combined with equal edge counts this
            // makes the directions encode identical edge sets.
            for &u in members {
                if self
                    .groups_of(u as usize)
                    .binary_search(&(g as u32))
                    .is_err()
                {
                    return Err(format!("edge (g{g}, u{u}) missing from the user direction"));
                }
            }
        }
        Ok(())
    }

    /// Number of users (rows of the user → group direction).
    #[inline]
    pub fn user_count(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Number of groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Number of membership edges `Σ_G |G|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.user_adj.len()
    }

    /// The group indices user `u` belongs to, ascending.
    #[inline]
    pub fn groups_of(&self, u: usize) -> &[u32] {
        let lo = self.user_offsets[u] as usize;
        let hi = self.user_offsets[u + 1] as usize;
        &self.user_adj[lo..hi]
    }

    /// The member (user) indices of group `g`, ascending.
    #[inline]
    pub fn members_of(&self, g: usize) -> &[u32] {
        let lo = self.group_offsets[g] as usize;
        let hi = self.group_offsets[g + 1] as usize;
        &self.group_adj[lo..hi]
    }

    /// `|{G | u ∈ G}|`.
    #[inline]
    pub fn user_degree(&self, u: usize) -> usize {
        (self.user_offsets[u + 1] - self.user_offsets[u]) as usize
    }

    /// `|G|` for group `g`.
    #[inline]
    pub fn group_size(&self, g: usize) -> usize {
        (self.group_offsets[g + 1] - self.group_offsets[g]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GroupId;

    fn demo() -> GroupSet {
        // G0 = {0,1}, G1 = {1,2}, G2 = {3}, G3 = {} is impossible via
        // from_memberships (empty groups still get an id there).
        GroupSet::from_memberships(
            5,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(1), UserId(2)],
                vec![UserId(3)],
            ],
        )
    }

    #[test]
    fn mirrors_group_set_links() {
        let groups = demo();
        let csr = CsrGraph::from_group_set(&groups);
        assert_eq!(csr.user_count(), groups.user_count());
        assert_eq!(csr.group_count(), groups.len());
        assert_eq!(csr.edge_count(), 5);
        for u in 0..groups.user_count() {
            let expect: Vec<u32> = groups
                .groups_of(UserId::from_index(u))
                .iter()
                .map(|g| g.index() as u32)
                .collect();
            assert_eq!(csr.groups_of(u), expect.as_slice(), "user {u}");
            assert_eq!(csr.user_degree(u), expect.len());
        }
        for (gid, g) in groups.iter() {
            let expect: Vec<u32> = g.members.iter().map(|u| u.index() as u32).collect();
            assert_eq!(csr.members_of(gid.index()), expect.as_slice(), "{gid}");
            assert_eq!(csr.group_size(gid.index()), g.size());
        }
    }

    #[test]
    fn adjacency_is_sorted_both_ways() {
        let groups = demo();
        let csr = CsrGraph::from_group_set(&groups);
        for u in 0..csr.user_count() {
            assert!(csr.groups_of(u).windows(2).all(|w| w[0] < w[1]));
        }
        for g in 0..csr.group_count() {
            assert!(csr.members_of(g).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_graph() {
        let groups = GroupSet::from_memberships(0, vec![]);
        let csr = CsrGraph::from_group_set(&groups);
        assert_eq!(csr.user_count(), 0);
        assert_eq!(csr.group_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn validate_accepts_constructed_graphs() {
        for groups in [demo(), GroupSet::from_memberships(0, vec![])] {
            let csr = CsrGraph::from_group_set(&groups);
            assert_eq!(csr.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_corrupted_graphs() {
        let base = CsrGraph::from_group_set(&demo());
        // Out-of-range adjacency id.
        let mut bad = base.clone();
        bad.group_adj[0] = 99;
        assert!(bad.validate().unwrap_err().contains("out of range"));
        // Unsorted member row (swap two members of G0 = {0, 1}).
        let mut bad = base.clone();
        bad.group_adj.swap(0, 1);
        assert!(bad.validate().is_err());
        // Offsets that no longer cover the adjacency.
        let mut bad = base;
        if let Some(o) = bad.user_offsets.last_mut() {
            *o += 1;
        }
        assert!(bad.validate().unwrap_err().contains("offsets"));
    }

    #[test]
    fn isolated_users_have_empty_slices() {
        let groups = GroupSet::from_memberships(3, vec![vec![UserId(1)]]);
        let csr = CsrGraph::from_group_set(&groups);
        assert!(csr.groups_of(0).is_empty());
        assert_eq!(csr.groups_of(1), &[0]);
        assert!(csr.groups_of(2).is_empty());
        let _ = GroupId(0);
    }
}
