//! Compressed-sparse-row (CSR) storage of the bipartite user ↔ group graph.
//!
//! [`crate::group::GroupSet`] keeps one `Vec` per group and one `Vec` per
//! user — convenient to build incrementally, but the selection hot loops
//! chase a pointer per adjacency list. [`CsrGraph`] flattens both directions
//! into two offset/adjacency array pairs (ids as raw `u32`), so a candidate
//! scan walks a single contiguous buffer. The group set stays the
//! construction front-end; a `CsrGraph` is derived from it once per
//! selection run (`O(|V| + |E|)`) and is immutable afterwards.

use crate::group::GroupSet;
use crate::ids::UserId;

/// Flat bidirectional adjacency of users and groups.
///
/// Both directions preserve the `GroupSet` ordering: `groups_of(u)` lists
/// group indices in ascending order and `members_of(g)` lists user indices
/// in ascending order, exactly like their nested-`Vec` counterparts — so
/// algorithms ported to CSR traversal visit edges in the same sequence and
/// stay bit-identical to the originals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `user_adj[user_offsets[u]..user_offsets[u + 1]]` = groups of user `u`.
    user_offsets: Vec<u32>,
    user_adj: Vec<u32>,
    /// `group_adj[group_offsets[g]..group_offsets[g + 1]]` = members of `g`.
    group_offsets: Vec<u32>,
    group_adj: Vec<u32>,
}

impl Default for CsrGraph {
    /// The empty graph: no users, no groups, no edges.
    fn default() -> Self {
        Self {
            user_offsets: vec![0],
            user_adj: Vec::new(),
            group_offsets: vec![0],
            group_adj: Vec::new(),
        }
    }
}

impl CsrGraph {
    /// Builds the CSR graph of a group set.
    pub fn from_group_set(groups: &GroupSet) -> Self {
        let lists: Vec<&[UserId]> = groups.iter().map(|(_, g)| g.members.as_slice()).collect();
        Self::from_member_lists(groups.user_count(), &lists)
    }

    /// Builds the CSR graph from one sorted member list per group (groups in
    /// id order) — the shared back-end of [`CsrGraph::from_group_set`] and
    /// [`crate::incremental::IncrementalGroups::snapshot_csr`].
    pub fn from_member_lists(user_count: usize, lists: &[&[UserId]]) -> Self {
        let mut csr = Self::default();
        csr.assign_from_member_lists(user_count, lists);
        csr
    }

    /// In-place variant of [`CsrGraph::from_member_lists`]: overwrites `self`
    /// with the CSR of `lists`, reusing all four buffers. A writer that
    /// publishes one snapshot per epoch calls this on a recycled graph
    /// instead of allocating a fresh one. The result is exactly what
    /// `from_member_lists(user_count, lists)` returns.
    pub fn assign_from_member_lists(&mut self, user_count: usize, lists: &[&[UserId]]) {
        let edges: usize = lists.iter().map(|m| m.len()).sum();
        assert!(
            user_count < u32::MAX as usize,
            "user count exceeds u32 range"
        );
        assert!(
            lists.len() < u32::MAX as usize,
            "group count exceeds u32 range"
        );
        assert!(edges < u32::MAX as usize, "edge count exceeds u32 range");

        // Group side: concatenation of the member lists. Degrees accumulate
        // into `user_offsets[u + 1]` so no scratch vector is needed.
        self.group_offsets.clear();
        self.group_offsets.reserve(lists.len() + 1);
        self.group_offsets.push(0u32);
        self.group_adj.clear();
        self.group_adj.reserve(edges);
        self.user_offsets.clear();
        self.user_offsets.resize(user_count + 1, 0u32);
        for members in lists {
            for &u in *members {
                self.group_adj.push(u.index() as u32);
                self.user_offsets[u.index() + 1] += 1;
            }
            self.group_offsets.push(self.group_adj.len() as u32);
        }
        for i in 1..=user_count {
            self.user_offsets[i] += self.user_offsets[i - 1];
        }

        // User side: counting sort by user, using the offsets themselves as
        // write cursors. Groups are appended in ascending id order, so each
        // user's slice comes out ascending as well.
        self.user_adj.clear();
        self.user_adj.resize(edges, 0u32);
        for (g, members) in lists.iter().enumerate() {
            for &u in *members {
                let c = &mut self.user_offsets[u.index()];
                self.user_adj[*c as usize] = g as u32;
                *c += 1;
            }
        }
        // Each cursor has advanced to the start of the next row; shift the
        // array right by one to restore the offset invariant.
        self.user_offsets.copy_within(0..user_count, 1);
        self.user_offsets[0] = 0;

        debug_assert!(
            self.validate().is_ok(),
            "CSR construction violated its invariants: {}",
            self.validate().unwrap_err()
        );
    }

    /// Patches `self` into the CSR of `lists` (the new epoch), using `base`
    /// — the CSR of the previous epoch over the *same* group universe and
    /// user count — to skip per-edge work for untouched users.
    ///
    /// `changed` names, in ascending user order, every user whose group row
    /// differs from `base`, paired with their new (strictly ascending) group
    /// row; users not listed must have rows identical to `base`. The group
    /// side is a bulk copy of `lists`; the user side splices the changed
    /// rows between `memcpy`s of the unchanged spans of `base`. The result
    /// is bit-identical to `from_member_lists(base.user_count(), lists)`.
    ///
    /// # Panics
    /// Panics if `lists` does not have exactly `base.group_count()` groups
    /// or the changed rows disagree with the member lists on the edge count.
    pub fn patch_from(
        &mut self,
        base: &CsrGraph,
        lists: &[&[UserId]],
        changed: &[(u32, Vec<u32>)],
    ) {
        let user_count = base.user_count();
        assert_eq!(
            lists.len(),
            base.group_count(),
            "CSR patch requires an unchanged group universe"
        );
        let edges: usize = lists.iter().map(|m| m.len()).sum();
        assert!(edges < u32::MAX as usize, "edge count exceeds u32 range");
        debug_assert!(
            changed.windows(2).all(|w| w[0].0 < w[1].0),
            "changed rows must be strictly ascending by user"
        );

        // Group side: bulk copy of the new member lists.
        self.group_offsets.clear();
        self.group_offsets.reserve(lists.len() + 1);
        self.group_offsets.push(0u32);
        self.group_adj.clear();
        self.group_adj.reserve(edges);
        for members in lists {
            for &u in *members {
                self.group_adj.push(u.index() as u32);
            }
            self.group_offsets.push(self.group_adj.len() as u32);
        }

        // User offsets: degrees change only for the changed users.
        self.user_offsets.clear();
        self.user_offsets.reserve(user_count + 1);
        self.user_offsets.push(0u32);
        let mut ci = 0usize;
        let mut running = 0u32;
        for u in 0..user_count {
            let deg = match changed.get(ci) {
                Some(&(cu, ref row)) if cu as usize == u => {
                    ci += 1;
                    row.len() as u32
                }
                _ => base.user_degree(u) as u32,
            };
            running += deg;
            self.user_offsets.push(running);
        }
        assert_eq!(
            running as usize, edges,
            "changed rows disagree with the member lists on the edge count"
        );

        // User adjacency: memcpy the unchanged spans, splice changed rows.
        self.user_adj.clear();
        self.user_adj.reserve(edges);
        let mut next_unchanged = 0usize;
        for &(u, ref row) in changed {
            let u = u as usize;
            let lo = base.user_offsets[next_unchanged] as usize;
            let hi = base.user_offsets[u] as usize;
            self.user_adj.extend_from_slice(&base.user_adj[lo..hi]);
            self.user_adj.extend_from_slice(row);
            next_unchanged = u + 1;
        }
        let lo = base.user_offsets[next_unchanged] as usize;
        self.user_adj.extend_from_slice(&base.user_adj[lo..]);

        debug_assert!(
            self.validate().is_ok(),
            "CSR patch violated the invariants: {}",
            self.validate().unwrap_err()
        );
    }

    /// Checks the structural invariants of the CSR representation: offset
    /// arrays start at zero, are non-decreasing, and terminate at their
    /// adjacency length; adjacency ids are in range; every row is strictly
    /// ascending; and the two directions encode the same edge set.
    ///
    /// `O(|E| log deg)`. Construction `debug_assert!`s this, so building the
    /// selection engine under `RUSTFLAGS="-C debug-assertions"` catches
    /// corrupted group data (unsorted or duplicated member lists) before the
    /// greedy loops consume it.
    pub fn validate(&self) -> Result<(), String> {
        let users = self.user_count();
        let groups = self.group_count();
        for (side, offsets, adj, fanout) in [
            ("user", &self.user_offsets, &self.user_adj, groups),
            ("group", &self.group_offsets, &self.group_adj, users),
        ] {
            if offsets.first() != Some(&0) {
                return Err(format!("{side} offsets do not start at 0"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{side} offsets are not non-decreasing"));
            }
            if *offsets.last().expect("offsets are non-empty") as usize != adj.len() {
                return Err(format!(
                    "{side} offsets end at {} but adjacency has {} edges",
                    offsets.last().expect("offsets are non-empty"),
                    adj.len()
                ));
            }
            if let Some(&x) = adj.iter().find(|&&x| x as usize >= fanout) {
                return Err(format!("{side} adjacency id {x} out of range ({fanout})"));
            }
        }
        if self.user_adj.len() != self.group_adj.len() {
            return Err(format!(
                "direction edge counts disagree: {} vs {}",
                self.user_adj.len(),
                self.group_adj.len()
            ));
        }
        for u in 0..users {
            if self.groups_of(u).windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("groups_of({u}) is not strictly ascending"));
            }
        }
        for g in 0..groups {
            let members = self.members_of(g);
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("members_of({g}) is not strictly ascending"));
            }
            // Transpose consistency: every (g, u) edge must appear as g in
            // u's (sorted) group row. Combined with equal edge counts this
            // makes the directions encode identical edge sets.
            for &u in members {
                if self
                    .groups_of(u as usize)
                    .binary_search(&(g as u32))
                    .is_err()
                {
                    return Err(format!("edge (g{g}, u{u}) missing from the user direction"));
                }
            }
        }
        Ok(())
    }

    /// Number of users (rows of the user → group direction).
    #[inline]
    pub fn user_count(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Number of groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Number of membership edges `Σ_G |G|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.user_adj.len()
    }

    /// The group indices user `u` belongs to, ascending.
    #[inline]
    pub fn groups_of(&self, u: usize) -> &[u32] {
        let lo = self.user_offsets[u] as usize;
        let hi = self.user_offsets[u + 1] as usize;
        &self.user_adj[lo..hi]
    }

    /// The member (user) indices of group `g`, ascending.
    #[inline]
    pub fn members_of(&self, g: usize) -> &[u32] {
        let lo = self.group_offsets[g] as usize;
        let hi = self.group_offsets[g + 1] as usize;
        &self.group_adj[lo..hi]
    }

    /// `|{G | u ∈ G}|`.
    #[inline]
    pub fn user_degree(&self, u: usize) -> usize {
        (self.user_offsets[u + 1] - self.user_offsets[u]) as usize
    }

    /// `|G|` for group `g`.
    #[inline]
    pub fn group_size(&self, g: usize) -> usize {
        (self.group_offsets[g + 1] - self.group_offsets[g]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GroupId;

    fn demo() -> GroupSet {
        // G0 = {0,1}, G1 = {1,2}, G2 = {3}, G3 = {} is impossible via
        // from_memberships (empty groups still get an id there).
        GroupSet::from_memberships(
            5,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(1), UserId(2)],
                vec![UserId(3)],
            ],
        )
    }

    #[test]
    fn mirrors_group_set_links() {
        let groups = demo();
        let csr = CsrGraph::from_group_set(&groups);
        assert_eq!(csr.user_count(), groups.user_count());
        assert_eq!(csr.group_count(), groups.len());
        assert_eq!(csr.edge_count(), 5);
        for u in 0..groups.user_count() {
            let expect: Vec<u32> = groups
                .groups_of(UserId::from_index(u))
                .iter()
                .map(|g| g.index() as u32)
                .collect();
            assert_eq!(csr.groups_of(u), expect.as_slice(), "user {u}");
            assert_eq!(csr.user_degree(u), expect.len());
        }
        for (gid, g) in groups.iter() {
            let expect: Vec<u32> = g.members.iter().map(|u| u.index() as u32).collect();
            assert_eq!(csr.members_of(gid.index()), expect.as_slice(), "{gid}");
            assert_eq!(csr.group_size(gid.index()), g.size());
        }
    }

    #[test]
    fn adjacency_is_sorted_both_ways() {
        let groups = demo();
        let csr = CsrGraph::from_group_set(&groups);
        for u in 0..csr.user_count() {
            assert!(csr.groups_of(u).windows(2).all(|w| w[0] < w[1]));
        }
        for g in 0..csr.group_count() {
            assert!(csr.members_of(g).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_graph() {
        let groups = GroupSet::from_memberships(0, vec![]);
        let csr = CsrGraph::from_group_set(&groups);
        assert_eq!(csr.user_count(), 0);
        assert_eq!(csr.group_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn validate_accepts_constructed_graphs() {
        for groups in [demo(), GroupSet::from_memberships(0, vec![])] {
            let csr = CsrGraph::from_group_set(&groups);
            assert_eq!(csr.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_corrupted_graphs() {
        let base = CsrGraph::from_group_set(&demo());
        // Out-of-range adjacency id.
        let mut bad = base.clone();
        bad.group_adj[0] = 99;
        assert!(bad.validate().unwrap_err().contains("out of range"));
        // Unsorted member row (swap two members of G0 = {0, 1}).
        let mut bad = base.clone();
        bad.group_adj.swap(0, 1);
        assert!(bad.validate().is_err());
        // Offsets that no longer cover the adjacency.
        let mut bad = base;
        if let Some(o) = bad.user_offsets.last_mut() {
            *o += 1;
        }
        assert!(bad.validate().unwrap_err().contains("offsets"));
    }

    #[test]
    fn default_is_the_valid_empty_graph() {
        let csr = CsrGraph::default();
        assert_eq!(csr.user_count(), 0);
        assert_eq!(csr.group_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.validate(), Ok(()));
        assert_eq!(csr, CsrGraph::from_member_lists(0, &[]));
    }

    #[test]
    fn assign_into_reused_buffer_matches_fresh_build() {
        let big = demo();
        let small =
            GroupSet::from_memberships(2, vec![vec![UserId(0)], vec![UserId(0), UserId(1)]]);
        let mut out = CsrGraph::from_group_set(&big);
        // Overwrite a larger graph with a smaller one and vice versa.
        let small_lists: Vec<&[UserId]> = small.iter().map(|(_, g)| g.members.as_slice()).collect();
        out.assign_from_member_lists(small.user_count(), &small_lists);
        assert_eq!(out, CsrGraph::from_group_set(&small));
        let big_lists: Vec<&[UserId]> = big.iter().map(|(_, g)| g.members.as_slice()).collect();
        out.assign_from_member_lists(big.user_count(), &big_lists);
        assert_eq!(out, CsrGraph::from_group_set(&big));
    }

    #[test]
    fn patch_from_matches_fresh_build() {
        // Base: G0 = {0,1}, G1 = {1,2}, G2 = {3} over 5 users.
        let base = CsrGraph::from_group_set(&demo());
        // New epoch, same universe: user 1 leaves G1, user 4 joins G1 and
        // G2. Changed rows: user 1 -> [0], user 4 -> [1, 2].
        let g0 = [UserId(0), UserId(1)];
        let g1 = [UserId(2), UserId(4)];
        let g2 = [UserId(3), UserId(4)];
        let lists: Vec<&[UserId]> = vec![&g0, &g1, &g2];
        let mut patched = CsrGraph::default();
        patched.patch_from(&base, &lists, &[(1, vec![0]), (4, vec![1, 2])]);
        assert_eq!(patched, CsrGraph::from_member_lists(5, &lists));

        // An empty delta is the identity.
        let b0 = [UserId(0), UserId(1)];
        let b1 = [UserId(1), UserId(2)];
        let b2 = [UserId(3)];
        let base_lists: Vec<&[UserId]> = vec![&b0, &b1, &b2];
        let mut same = CsrGraph::default();
        same.patch_from(&base, &base_lists, &[]);
        assert_eq!(same, base);
    }

    #[test]
    #[should_panic(expected = "unchanged group universe")]
    fn patch_from_rejects_a_changed_universe() {
        let base = CsrGraph::from_group_set(&demo());
        let g0 = [UserId(0)];
        let lists: Vec<&[UserId]> = vec![&g0];
        CsrGraph::default().patch_from(&base, &lists, &[]);
    }

    #[test]
    fn isolated_users_have_empty_slices() {
        let groups = GroupSet::from_memberships(3, vec![vec![UserId(1)]]);
        let csr = CsrGraph::from_group_set(&groups);
        assert!(csr.groups_of(0).is_empty());
        assert_eq!(csr.groups_of(1), &[0]);
        assert!(csr.groups_of(2).is_empty());
        let _ = GroupId(0);
    }
}
