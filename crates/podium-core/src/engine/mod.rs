//! The high-throughput selection engine: CSR group storage, heap-based
//! lazy greedy, and (optionally) multi-threaded marginal evaluation.
//!
//! The historical entry points — [`crate::greedy::greedy_select`],
//! [`crate::lazy_greedy::lazy_greedy_select`],
//! [`crate::stochastic_greedy::stochastic_greedy_select`] — remain the
//! stable API and now delegate here; their results are unchanged. This
//! module additionally exposes the pieces for callers that select
//! repeatedly from the same group set:
//!
//! * [`CsrGraph`] — the flat bipartite user ↔ group adjacency, built once
//!   from a [`GroupSet`] in `O(|V| + |E|)` and shared across runs;
//! * [`SelectionEngine`] — couples an instance with its CSR graph and runs
//!   any [`EngineVariant`];
//! * the `parallel` cargo feature (default **off**, zero new dependencies)
//!   — chunks marginal evaluations across `std::thread::scope` workers for
//!   the [`EngineVariant::LazyHeapParallel`] paths; with the feature off
//!   those paths fall back to the sequential implementation.
//!
//! Complexity: eager greedy is `O(|E| + B·n + Σ_{covered G} |G|)`; the
//! lazy heap replaces the `B·n` argmax scans and the member-side updates
//! with `O(|E|)` heapify plus `O(r·(log n + deg))` for the `r` entries it
//! actually refreshes — typically `r ≪ n` (the CELF effect).

pub mod csr;
mod eager;
mod lazy;
mod par;
mod stochastic;

pub use csr::CsrGraph;

use crate::greedy::{Selection, TieBreak};
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// Which selection algorithm the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineVariant {
    /// Algorithm 1 with decremental marginal maintenance (the paper's
    /// eager update scheme).
    Eager,
    /// CELF lazy greedy over a max-heap of stale upper bounds; selections
    /// are bit-identical to [`EngineVariant::Eager`] under the `FirstUser`
    /// tie-break and exact score arithmetic.
    LazyHeap,
    /// [`EngineVariant::LazyHeap`] with initial gains and large refresh
    /// bursts chunked across scoped threads (`parallel` feature; sequential
    /// fallback when the feature is off or the pool is small).
    LazyHeapParallel,
}

impl EngineVariant {
    /// Every variant, for benchmark sweeps.
    pub const ALL: [EngineVariant; 3] = [
        EngineVariant::Eager,
        EngineVariant::LazyHeap,
        EngineVariant::LazyHeapParallel,
    ];

    /// A stable snake_case label for reports and benchmark ids.
    pub fn label(self) -> &'static str {
        match self {
            EngineVariant::Eager => "eager",
            EngineVariant::LazyHeap => "lazy_heap",
            EngineVariant::LazyHeapParallel => "lazy_heap_parallel",
        }
    }
}

/// A diversification instance coupled with the CSR form of its group graph.
///
/// Building the engine performs the one-time `O(|V| + |E|)` CSR
/// construction; every selection after that walks flat arrays only.
#[derive(Debug, Clone)]
pub struct SelectionEngine<'i, W: ScoreValue> {
    inst: &'i DiversificationInstance<'i, W>,
    csr: CsrGraph,
}

impl<'i, W: ScoreValue> SelectionEngine<'i, W> {
    /// Builds the engine (and the CSR graph) for an instance.
    ///
    /// Under debug assertions the instance is structurally validated
    /// ([`DiversificationInstance::validate`]) and the freshly built CSR
    /// graph checks its own invariants — selector harnesses running with
    /// `RUSTFLAGS="-C debug-assertions"` therefore vet every instance they
    /// select from. Release builds skip both checks.
    pub fn new(inst: &'i DiversificationInstance<'i, W>) -> Self {
        debug_assert!(
            inst.validate().is_ok(),
            "refusing to build engine: {}",
            inst.validate().unwrap_err()
        );
        let csr = CsrGraph::from_group_set(inst.groups());
        Self { inst, csr }
    }

    /// The CSR graph, for callers that want raw adjacency access.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The underlying instance.
    pub fn instance(&self) -> &'i DiversificationInstance<'i, W> {
        self.inst
    }

    /// Runs `variant` with budget `b` (no eligibility filter, `FirstUser`
    /// ties).
    pub fn select(&self, variant: EngineVariant, b: usize) -> Selection<W> {
        match variant {
            EngineVariant::Eager => self.eager(b, None, TieBreak::FirstUser),
            EngineVariant::LazyHeap => self.lazy(b, None),
            EngineVariant::LazyHeapParallel => self.lazy_parallel(b, None),
        }
    }

    /// Eager greedy (Algorithm 1) with an optional eligibility filter and
    /// tie-break policy.
    pub fn eager(&self, b: usize, eligible: Option<&[bool]>, tie_break: TieBreak) -> Selection<W> {
        eager::eager_select(self.inst, &self.csr, b, eligible, tie_break)
    }

    /// Sequential CELF lazy greedy. `FirstUser` tie-break only — for
    /// `Seeded` ties use [`SelectionEngine::eager`], whose reservoir
    /// sampling needs the full candidate scan.
    pub fn lazy(&self, b: usize, eligible: Option<&[bool]>) -> Selection<W> {
        lazy::lazy_select(self.inst, &self.csr, b, eligible)
    }

    /// CELF lazy greedy with multi-threaded marginal evaluation (`parallel`
    /// feature; sequential fallback otherwise). Same selection as
    /// [`SelectionEngine::lazy`].
    pub fn lazy_parallel(&self, b: usize, eligible: Option<&[bool]>) -> Selection<W> {
        lazy::lazy_select_parallel(self.inst, &self.csr, b, eligible)
    }

    /// Stochastic greedy (see [`crate::stochastic_greedy`]).
    pub fn stochastic(&self, b: usize, epsilon: f64, seed: u64) -> Selection<W> {
        stochastic::stochastic_select(self.inst, &self.csr, b, epsilon, seed)
    }
}

/// Sequential CELF lazy greedy against a caller-provided, prebuilt CSR
/// graph — the entry point for serving layers that keep one [`CsrGraph`]
/// per repository snapshot and select from it across many requests without
/// paying the `O(|V| + |E|)` rebuild that [`SelectionEngine::new`] performs.
///
/// `csr` must have been built from `inst.groups()` (or an equivalent
/// member-list ordering); this is checked under debug assertions.
pub fn lazy_select_csr<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
) -> Selection<W> {
    debug_assert_eq!(csr.user_count(), inst.user_count(), "csr/instance users");
    debug_assert_eq!(
        csr.group_count(),
        inst.groups().len(),
        "csr/instance groups"
    );
    lazy::lazy_select(inst, csr, b, eligible)
}

/// [`lazy_select_csr`] with a deadline hook: `should_stop(selected)` is
/// polled before the initial candidate scan and after every committed
/// greedy round, with the number of users selected so far. Returning
/// `true` stops the run; the returned flag is `false` iff that happened.
///
/// An interrupted selection is still exactly the greedy *prefix* of the
/// full run — submodularity gives it the usual `(1 − 1/e)` guarantee for
/// its own (smaller) budget — so serving callers can either return the
/// partial result marked as truncated or map it to a deadline error.
pub fn lazy_select_deadline<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    eligible: Option<&[bool]>,
    should_stop: &mut dyn FnMut(usize) -> bool,
) -> (Selection<W>, bool) {
    debug_assert_eq!(csr.user_count(), inst.user_count(), "csr/instance users");
    debug_assert_eq!(
        csr.group_count(),
        inst.groups().len(),
        "csr/instance groups"
    );
    lazy::lazy_select_interruptible(inst, csr, b, eligible, should_stop)
}

/// [`lazy_select_deadline`] with a warm-started CELF heap for incremental
/// serving: instead of the `O(|E|)` round-0 candidate scan, the heap is
/// seeded from `seeds` — one `(user, bound)` pair per candidate, where
/// each bound is an *upper bound* on that user's round-0 marginal gain
/// (for the schemes shipped in [`crate::weights`], the round-0 gain is
/// `Σ_{G ∋ u} w_G`, since every group starts with positive remaining
/// coverage). Writers that maintain these bounds across epochs — exact
/// re-computation for users whose memberships changed, monotone slack for
/// the rest — make the first selection on a freshly published epoch skip
/// the full scan.
///
/// Every seed enters the heap permanently stale, so it is re-evaluated to
/// its exact marginal before it can be committed: for any valid bounds the
/// selection is **bit-identical** to [`lazy_select_csr`] (same users,
/// gains, score, and covered counts, under the `FirstUser` tie-break). A
/// bound *below* the true round-0 gain voids that guarantee.
pub fn lazy_select_seeded_deadline<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    csr: &CsrGraph,
    b: usize,
    seeds: &[(u32, W)],
    should_stop: &mut dyn FnMut(usize) -> bool,
) -> (Selection<W>, bool) {
    debug_assert_eq!(csr.user_count(), inst.user_count(), "csr/instance users");
    debug_assert_eq!(
        csr.group_count(),
        inst.groups().len(),
        "csr/instance groups"
    );
    lazy::lazy_select_seeded_interruptible(inst, csr, b, seeds, should_stop)
}

/// Crate-internal one-shot helpers for the delegating legacy entry points
/// (they build the CSR graph per call; the engine type amortizes it).
pub(crate) fn eager_once<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    eligible: Option<&[bool]>,
    tie_break: TieBreak,
) -> Selection<W> {
    debug_assert!(
        inst.validate().is_ok(),
        "invalid instance: {}",
        inst.validate().unwrap_err()
    );
    let csr = CsrGraph::from_group_set(inst.groups());
    eager::eager_select(inst, &csr, b, eligible, tie_break)
}

/// One-shot sequential lazy greedy (see [`eager_once`]).
pub(crate) fn lazy_once<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    eligible: Option<&[bool]>,
) -> Selection<W> {
    let csr = CsrGraph::from_group_set(inst.groups());
    lazy::lazy_select(inst, &csr, b, eligible)
}

/// One-shot stochastic greedy (see [`eager_once`]).
pub(crate) fn stochastic_once<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    epsilon: f64,
    seed: u64,
) -> Selection<W> {
    let csr = CsrGraph::from_group_set(inst.groups());
    stochastic::stochastic_select(inst, &csr, b, epsilon, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSet;
    use crate::ids::UserId;
    use crate::weights::{CovScheme, WeightScheme};

    fn random_groups(seed: u64, users: usize, groups: usize) -> GroupSet {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let memberships: Vec<Vec<UserId>> = (0..groups)
            .map(|_| {
                let size = 1 + next() % users;
                let mut m: Vec<UserId> = (0..size)
                    .map(|_| UserId::from_index(next() % users))
                    .collect();
                m.sort();
                m.dedup();
                m
            })
            .collect();
        GroupSet::from_memberships(users, memberships)
    }

    #[test]
    fn all_variants_agree_exactly() {
        for seed in 0..12 {
            let g = random_groups(seed, 30, 45);
            let inst = DiversificationInstance::from_schemes(
                &g,
                WeightScheme::LinearBySize,
                CovScheme::Proportional,
                6,
            );
            let engine = SelectionEngine::new(&inst);
            let eager = engine.select(EngineVariant::Eager, 6);
            for variant in [EngineVariant::LazyHeap, EngineVariant::LazyHeapParallel] {
                let sel = engine.select(variant, 6);
                assert_eq!(sel.users, eager.users, "seed {seed} {variant:?}");
                assert_eq!(sel.gains, eager.gains, "seed {seed} {variant:?}");
                assert_eq!(sel.score, eager.score, "seed {seed} {variant:?}");
                assert_eq!(
                    sel.covered_counts, eager.covered_counts,
                    "seed {seed} {variant:?}"
                );
            }
        }
    }

    #[test]
    fn engine_matches_legacy_entry_points() {
        let g = random_groups(5, 20, 30);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            5,
        );
        let engine = SelectionEngine::new(&inst);
        let legacy = crate::greedy::greedy_select(&inst, 5);
        assert_eq!(engine.select(EngineVariant::Eager, 5), legacy);
        let legacy_lazy = crate::lazy_greedy::lazy_greedy_select(&inst, 5);
        assert_eq!(engine.select(EngineVariant::LazyHeap, 5), legacy_lazy);
        let legacy_stoch = crate::stochastic_greedy::stochastic_greedy_select(&inst, 5, 0.2, 9);
        assert_eq!(engine.stochastic(5, 0.2, 9), legacy_stoch);
    }

    #[test]
    fn eligibility_respected_by_every_variant() {
        let g = random_groups(2, 10, 15);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            3,
        );
        let engine = SelectionEngine::new(&inst);
        let mut eligible = vec![true; 10];
        eligible[0] = false;
        eligible[4] = false;
        let eager = engine.eager(3, Some(&eligible), TieBreak::FirstUser);
        let lazy = engine.lazy(3, Some(&eligible));
        let par = engine.lazy_parallel(3, Some(&eligible));
        assert_eq!(eager.users, lazy.users);
        assert_eq!(eager.users, par.users);
        for sel in [&eager, &lazy, &par] {
            assert!(!sel.contains(UserId(0)));
            assert!(!sel.contains(UserId(4)));
        }
    }

    #[test]
    fn csr_reuse_entry_point_matches_engine() {
        let g = random_groups(7, 25, 40);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            6,
        );
        let engine = SelectionEngine::new(&inst);
        let via_engine = engine.lazy(6, None);
        let csr = CsrGraph::from_group_set(&g);
        let via_csr = lazy_select_csr(&inst, &csr, 6, None);
        assert_eq!(via_csr, via_engine);
        let (complete, finished) = lazy_select_deadline(&inst, &csr, 6, None, &mut |_| false);
        assert!(finished);
        assert_eq!(complete, via_engine);
        let (truncated, finished) = lazy_select_deadline(&inst, &csr, 6, None, &mut |k| k >= 2);
        assert!(!finished);
        assert_eq!(truncated.users, via_engine.users[..2]);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = EngineVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["eager", "lazy_heap", "lazy_heap_parallel"]);
    }
}
