//! Multi-threaded marginal evaluation behind the `parallel` cargo feature.
//!
//! Built on `std::thread::scope` only — no extra crate dependencies. With
//! the feature disabled (the default) every helper degrades to its
//! sequential form, so downstream code can call the parallel-capable engine
//! paths unconditionally. With the feature enabled, candidate slices are
//! chunked across `available_parallelism()` workers; small inputs still run
//! sequentially because scoped-thread startup would dominate.

/// Inputs below this size are evaluated sequentially even with the
/// `parallel` feature on: spawning scoped workers costs tens of
/// microseconds, which only pays off across hundreds of marginal
/// evaluations.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
pub(crate) const MIN_PARALLEL_EVALS: usize = 512;

/// Upper bound on how many stale heap entries a lazy-greedy refresh burst
/// may pop at once (see [`super::lazy`]). `1` disables bursting and yields
/// the classic one-at-a-time CELF refresh.
///
/// Bursting exists solely to hand [`map_gains`] batches large enough to
/// chunk across workers: every popped entry was a stale heap *top*, but
/// only the first refresh is guaranteed necessary, so a burst below the
/// parallel threshold is pure wasted work. Hence the cap is 1 — classic
/// CELF — unless the `parallel` feature is on *and* the machine actually
/// has multiple workers, in which case long stale cascades are refreshed
/// [`MIN_PARALLEL_EVALS`] at a time across the thread pool.
pub(crate) fn refresh_burst_cap() -> usize {
    #[cfg(feature = "parallel")]
    if workers() > 1 {
        return MIN_PARALLEL_EVALS;
    }
    1
}

/// Worker-pool size, probed once per process: `available_parallelism()`
/// reads cgroup limits from the filesystem on Linux, far too slow to call
/// per refresh.
#[cfg(feature = "parallel")]
fn workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Evaluates `eval` over every candidate in `users`, preserving order.
///
/// Feature `parallel` + large input: chunked over scoped threads.
/// Otherwise: a plain sequential map. Results are identical either way —
/// each evaluation is independent and written back in input order.
#[cfg(feature = "parallel")]
pub(crate) fn map_gains<W, F>(users: &[u32], eval: F) -> Vec<W>
where
    W: Send,
    F: Fn(u32) -> W + Sync,
{
    let workers = workers();
    if workers <= 1 || users.len() < MIN_PARALLEL_EVALS {
        return users.iter().map(|&u| eval(u)).collect();
    }
    let chunk = users.len().div_ceil(workers);
    let eval = &eval;
    std::thread::scope(|scope| {
        let handles: Vec<_> = users
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(|&u| eval(u)).collect::<Vec<W>>()))
            .collect();
        let mut out = Vec::with_capacity(users.len());
        for h in handles {
            out.extend(h.join().expect("marginal evaluation worker panicked"));
        }
        out
    })
}

/// Sequential fallback compiled when the `parallel` feature is off.
#[cfg(not(feature = "parallel"))]
pub(crate) fn map_gains<W, F>(users: &[u32], eval: F) -> Vec<W>
where
    F: Fn(u32) -> W,
{
    users.iter().map(|&u| eval(u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let users: Vec<u32> = (0..2000).rev().collect();
        let out = map_gains(&users, |u| u as u64 * 3);
        assert_eq!(out.len(), users.len());
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(out[i], u as u64 * 3);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(map_gains(&[], |u| u).is_empty());
        assert_eq!(map_gains(&[7], |u| u + 1), vec![8]);
    }
}
