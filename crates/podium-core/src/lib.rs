//! # podium-core
//!
//! Core library of **Podium**, a framework for selecting *diverse* subsets of
//! users for opinion procurement, reproducing the EDBT 2020 paper
//! *"Diverse User Selection for Opinion Procurement"* (Amsterdamer &
//! Goldreich).
//!
//! Podium implements **coverage-based** diversification: given a repository
//! of high-dimensional user profiles, it forms (possibly overlapping)
//! population groups from the profile properties, assigns each group a weight
//! and a required coverage, and then selects a budget-bounded user subset
//! maximizing the total weight of covered groups. The objective is monotone
//! submodular, so greedy selection yields a `(1 - 1/e)` approximation of the
//! optimum (Proposition 4.4 of the paper).
//!
//! ## Pipeline
//!
//! 1. Build a [`profile::UserRepository`] of sparse `property -> score`
//!    profiles with scores normalized to `[0, 1]`.
//! 2. Split each property's score range into buckets with a
//!    [`bucket::BucketStrategy`] (equal-width, quantile, Jenks natural
//!    breaks, 1-D k-means, KDE valleys, or a 1-D Gaussian-mixture EM).
//! 3. Materialize simple groups `G_{p,b}` into a [`group::GroupSet`].
//! 4. Choose weight ([`weights::WeightScheme`]) and coverage
//!    ([`weights::CovScheme`]) functions and assemble a
//!    [`instance::DiversificationInstance`].
//! 5. Run [`greedy::greedy_select`] (or [`lazy_greedy::lazy_greedy_select`],
//!    or the exhaustive [`exact::exact_select`] on tiny instances).
//! 6. Inspect the selection with [`explain`] and refine it with
//!    [`customize`] feedback.
//!
//! ## Quick example (the paper's Table 2 running example)
//!
//! ```
//! use podium_core::prelude::*;
//!
//! let mut repo = UserRepository::new();
//! let alice = repo.add_user("Alice");
//! let bob = repo.add_user("Bob");
//! let lives_tokyo = repo.intern_property("livesIn Tokyo");
//! let mexican = repo.intern_property("avgRating Mexican");
//! repo.set_score(alice, lives_tokyo, 1.0).unwrap();
//! repo.set_score(alice, mexican, 0.95).unwrap();
//! repo.set_score(bob, mexican, 0.3).unwrap();
//!
//! let buckets = BucketingConfig::paper_default().bucketize(&repo);
//! let groups = GroupSet::build(&repo, &buckets);
//! let inst = DiversificationInstance::from_schemes(
//!     &groups, WeightScheme::LinearBySize, CovScheme::Single, 2,
//! );
//! let sel = greedy_select(&inst, 2);
//! assert!(sel.users.len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod customize;
pub mod engine;
pub mod error;
pub mod exact;
pub mod explain;
pub mod greedy;
pub mod group;
pub mod ids;
pub mod incremental;
pub mod instance;
pub mod lazy_greedy;
pub mod pipeline;
pub mod profile;
pub mod reduction;
pub mod score;
pub mod stochastic_greedy;
pub mod submodular;
#[cfg(test)]
pub(crate) mod testutil;
pub mod weights;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::bucket::{Bucket, BucketSet, BucketStrategy, BucketingConfig};
    pub use crate::customize::{custom_select, CustomSelection, Feedback};
    pub use crate::engine::{CsrGraph, EngineVariant, SelectionEngine};
    pub use crate::error::{CoreError, Result};
    pub use crate::exact::exact_select;
    pub use crate::explain::{explain_group, explain_subset_group, explain_user, SelectionReport};
    pub use crate::greedy::{greedy_select, Selection};
    pub use crate::group::{GroupExpr, GroupSet, SimpleGroup};
    pub use crate::ids::{BucketIdx, GroupId, PropertyId, UserId};
    pub use crate::instance::DiversificationInstance;
    pub use crate::lazy_greedy::lazy_greedy_select;
    pub use crate::pipeline::{FittedPodium, Podium};
    pub use crate::profile::{Profile, UserRepository};
    pub use crate::score::{EbsValue, LexPair, ScoreValue};
    pub use crate::stochastic_greedy::stochastic_greedy_select;
    pub use crate::weights::{CovScheme, WeightScheme};
}
