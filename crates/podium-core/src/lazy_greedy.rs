//! Lazy greedy selection (CELF-style) — an optimization of Algorithm 1.
//!
//! Submodularity guarantees that a user's marginal contribution can only
//! shrink as the selection grows, so stale heap entries are upper bounds: if
//! the top of the heap is fresh, it is the true argmax and no other user
//! needs re-evaluation. This typically evaluates far fewer marginals than
//! the eager algorithm while returning a selection with the *same score*
//! (the selected users may differ among equal-score ties).
//!
//! Exposed as an ablation target: `benches/ablation.rs` compares it against
//! the paper's eager update scheme.
//!
//! The heap loop itself lives in [`crate::engine`] (CSR traversal, optional
//! multi-threaded marginal evaluation behind the `parallel` feature); this
//! module keeps the stable sequential entry points. Under the `FirstUser`
//! tie-break and exact score arithmetic the lazy selection is bit-identical
//! to the eager one — same users, gains, score, and covered counts.

use crate::greedy::Selection;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// Runs lazy greedy selection of at most `b` users.
pub fn lazy_greedy_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
) -> Selection<W> {
    lazy_greedy_select_filtered(inst, b, None)
}

/// Lazy greedy with an optional per-user eligibility filter (see
/// [`crate::greedy::greedy_select_opts`]).
pub fn lazy_greedy_select_filtered<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    eligible: Option<&[bool]>,
) -> Selection<W> {
    crate::engine::lazy_once(inst, b, eligible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::group::GroupSet;
    use crate::ids::UserId;
    use crate::weights::{CovScheme, WeightScheme};

    fn random_instance(seed: u64, users: usize, groups: usize) -> GroupSet {
        // Tiny deterministic LCG so this test needs no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let memberships: Vec<Vec<UserId>> = (0..groups)
            .map(|_| {
                let size = 1 + next() % users;
                let mut m: Vec<UserId> = (0..size)
                    .map(|_| UserId::from_index(next() % users))
                    .collect();
                m.sort();
                m.dedup();
                m
            })
            .collect();
        GroupSet::from_memberships(users, memberships)
    }

    #[test]
    fn matches_eager_score_on_random_instances() {
        for seed in 0..20 {
            let g = random_instance(seed, 12, 25);
            let inst = DiversificationInstance::from_schemes(
                &g,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                4,
            );
            let eager = greedy_select(&inst, 4);
            let lazy = lazy_greedy_select(&inst, 4);
            assert_eq!(
                lazy.score, eager.score,
                "seed {seed}: lazy and eager greedy must achieve equal scores"
            );
            assert_eq!(lazy.score, inst.score_of(&lazy.users), "seed {seed}");
        }
    }

    #[test]
    fn identical_selection_under_unique_maxima() {
        let g = GroupSet::from_memberships(
            3,
            vec![vec![UserId(0)], vec![UserId(0), UserId(1)], vec![UserId(2)]],
        );
        let inst = DiversificationInstance::new(&g, vec![4.0, 2.0, 3.0], vec![1; 3]);
        let eager = greedy_select(&inst, 2);
        let lazy = lazy_greedy_select(&inst, 2);
        assert_eq!(eager.users, lazy.users);
        assert_eq!(eager.gains, lazy.gains);
    }

    #[test]
    fn respects_budget_and_pool() {
        let g = random_instance(3, 6, 10);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            10,
        );
        let sel = lazy_greedy_select(&inst, 10);
        assert_eq!(sel.users.len(), 6, "pool exhausted");
        let mut sorted = sel.users.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "no duplicates");
    }

    #[test]
    fn eligibility_filter() {
        let g =
            GroupSet::from_memberships(3, vec![vec![UserId(0)], vec![UserId(1)], vec![UserId(2)]]);
        let inst = DiversificationInstance::new(&g, vec![9.0, 1.0, 2.0], vec![1; 3]);
        let sel = lazy_greedy_select_filtered(&inst, 1, Some(&[false, true, true]));
        assert_eq!(sel.users, vec![UserId(2)]);
    }

    #[test]
    fn proportional_coverage() {
        let g = GroupSet::from_memberships(3, vec![vec![UserId(0), UserId(1), UserId(2)]]);
        let inst = DiversificationInstance::new(&g, vec![1.0], vec![2]);
        let sel = lazy_greedy_select(&inst, 3);
        assert_eq!(sel.score, 2.0);
    }
}
