//! Lazy greedy selection (CELF-style) — an optimization of Algorithm 1.
//!
//! Submodularity guarantees that a user's marginal contribution can only
//! shrink as the selection grows, so stale heap entries are upper bounds: if
//! the top of the heap is fresh, it is the true argmax and no other user
//! needs re-evaluation. This typically evaluates far fewer marginals than
//! the eager algorithm while returning a selection with the *same score*
//! (the selected users may differ among equal-score ties).
//!
//! Exposed as an ablation target: `benches/ablation.rs` compares it against
//! the paper's eager update scheme.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::greedy::Selection;
use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

struct HeapEntry<W> {
    gain: W,
    user: u32,
    /// Selection round in which `gain` was computed.
    round: u32,
}

impl<W: ScoreValue> PartialEq for HeapEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<W: ScoreValue> Eq for HeapEntry<W> {}
impl<W: ScoreValue> PartialOrd for HeapEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W: ScoreValue> Ord for HeapEntry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("score values must be totally ordered (no NaN)")
            // Tie-break toward the smaller user id, matching the eager
            // algorithm's deterministic FirstUser policy.
            .then_with(|| other.user.cmp(&self.user))
    }
}

/// Runs lazy greedy selection of at most `b` users.
pub fn lazy_greedy_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
) -> Selection<W> {
    lazy_greedy_select_filtered(inst, b, None)
}

/// Lazy greedy with an optional per-user eligibility filter (see
/// [`crate::greedy::greedy_select_opts`]).
pub fn lazy_greedy_select_filtered<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    eligible: Option<&[bool]>,
) -> Selection<W> {
    let groups = inst.groups();
    let n = groups.user_count();
    if let Some(e) = eligible {
        assert_eq!(e.len(), n, "one eligibility flag per user");
    }
    let mut cov_rem: Vec<u32> = groups.ids().map(|g| inst.cov(g)).collect();

    // The current marginal of u given remaining coverages.
    let fresh_gain = |u: usize, cov_rem: &[u32]| -> W {
        let mut gain = W::zero();
        for &g in groups.groups_of(UserId::from_index(u)) {
            if cov_rem[g.index()] > 0 {
                gain.add_assign(inst.weight(g));
            }
        }
        gain
    };

    let mut heap: BinaryHeap<HeapEntry<W>> = (0..n)
        .filter(|&u| eligible.is_none_or(|e| e[u]))
        .map(|u| HeapEntry {
            gain: fresh_gain(u, &cov_rem),
            user: u as u32,
            round: 0,
        })
        .collect();

    let mut users = Vec::with_capacity(b.min(n));
    let mut gains = Vec::with_capacity(b.min(n));
    let mut score = W::zero();
    let mut covered_counts = vec![0u32; groups.len()];
    let mut round = 0u32;

    while users.len() < b {
        let Some(top) = heap.pop() else { break };
        if top.round != round {
            // Stale upper bound: refresh and reinsert.
            let gain = fresh_gain(top.user as usize, &cov_rem);
            heap.push(HeapEntry {
                gain,
                user: top.user,
                round,
            });
            continue;
        }
        // Fresh top entry: by submodularity it is the true argmax.
        let uid = UserId(top.user);
        score.add_assign(&top.gain);
        gains.push(top.gain);
        users.push(uid);
        for &g in groups.groups_of(uid) {
            let gi = g.index();
            covered_counts[gi] += 1;
            if cov_rem[gi] > 0 {
                cov_rem[gi] -= 1;
            }
        }
        round += 1;
    }

    Selection {
        users,
        gains,
        score,
        covered_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::group::GroupSet;
    use crate::weights::{CovScheme, WeightScheme};

    fn random_instance(seed: u64, users: usize, groups: usize) -> GroupSet {
        // Tiny deterministic LCG so this test needs no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let memberships: Vec<Vec<UserId>> = (0..groups)
            .map(|_| {
                let size = 1 + next() % users;
                let mut m: Vec<UserId> = (0..size)
                    .map(|_| UserId::from_index(next() % users))
                    .collect();
                m.sort();
                m.dedup();
                m
            })
            .collect();
        GroupSet::from_memberships(users, memberships)
    }

    #[test]
    fn matches_eager_score_on_random_instances() {
        for seed in 0..20 {
            let g = random_instance(seed, 12, 25);
            let inst = DiversificationInstance::from_schemes(
                &g,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                4,
            );
            let eager = greedy_select(&inst, 4);
            let lazy = lazy_greedy_select(&inst, 4);
            assert_eq!(
                lazy.score, eager.score,
                "seed {seed}: lazy and eager greedy must achieve equal scores"
            );
            assert_eq!(lazy.score, inst.score_of(&lazy.users), "seed {seed}");
        }
    }

    #[test]
    fn identical_selection_under_unique_maxima() {
        let g = GroupSet::from_memberships(
            3,
            vec![
                vec![UserId(0)],
                vec![UserId(0), UserId(1)],
                vec![UserId(2)],
            ],
        );
        let inst = DiversificationInstance::new(&g, vec![4.0, 2.0, 3.0], vec![1; 3]);
        let eager = greedy_select(&inst, 2);
        let lazy = lazy_greedy_select(&inst, 2);
        assert_eq!(eager.users, lazy.users);
        assert_eq!(eager.gains, lazy.gains);
    }

    #[test]
    fn respects_budget_and_pool() {
        let g = random_instance(3, 6, 10);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            10,
        );
        let sel = lazy_greedy_select(&inst, 10);
        assert_eq!(sel.users.len(), 6, "pool exhausted");
        let mut sorted = sel.users.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "no duplicates");
    }

    #[test]
    fn eligibility_filter() {
        let g = GroupSet::from_memberships(
            3,
            vec![vec![UserId(0)], vec![UserId(1)], vec![UserId(2)]],
        );
        let inst = DiversificationInstance::new(&g, vec![9.0, 1.0, 2.0], vec![1; 3]);
        let sel = lazy_greedy_select_filtered(&inst, 1, Some(&[false, true, true]));
        assert_eq!(sel.users, vec![UserId(2)]);
    }

    #[test]
    fn proportional_coverage() {
        let g = GroupSet::from_memberships(
            3,
            vec![vec![UserId(0), UserId(1), UserId(2)]],
        );
        let inst = DiversificationInstance::new(&g, vec![1.0], vec![2]);
        let sel = lazy_greedy_select(&inst, 3);
        assert_eq!(sel.score, 2.0);
    }
}
