//! The Set-Cover reduction of Proposition 4.1, as executable code.
//!
//! The paper proves DEC-DIVERSITY NP-complete by mapping a Set Cover
//! instance `(universe {1..N}, sets S_1..S_m, k)` to a diversification
//! instance: one *user* per set, one *group* per universe element,
//! membership `u_j ∈ G_i ⟺ i ∈ S_j`, Single coverage, and threshold
//! `T = Σ_G wei(G)` — achievable iff some `k` sets cover the universe.
//!
//! This module materializes the reduction and a decision-procedure wrapper;
//! tests verify equivalence against a brute-force Set Cover solver, which
//! both validates the construction and exercises the scoring machinery on
//! adversarial instances.

use crate::error::Result;
use crate::exact::exact_select;
use crate::group::GroupSet;
use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// A Set Cover instance: `universe = {0, .., universe_size - 1}` and a list
/// of subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCover {
    /// Number of universe elements.
    pub universe_size: usize,
    /// The available subsets.
    pub sets: Vec<Vec<usize>>,
}

impl SetCover {
    /// Builds the diversification group structure of Proposition 4.1:
    /// groups = universe elements, users = sets.
    pub fn to_groups(&self) -> GroupSet {
        let mut memberships: Vec<Vec<UserId>> = vec![Vec::new(); self.universe_size];
        for (j, set) in self.sets.iter().enumerate() {
            for &i in set {
                assert!(i < self.universe_size, "element outside universe");
                memberships[i].push(UserId::from_index(j));
            }
        }
        GroupSet::from_memberships(self.sets.len(), memberships)
    }

    /// Decision procedure via the reduction: does a cover of size ≤ `k`
    /// exist? Solved exactly with the exhaustive optimizer (exponential —
    /// tests only). Any positive weight function works; unit weights are
    /// used (`wei(G) = 1`, `cov(G) = 1` per the proof).
    pub fn has_cover_of_size(&self, k: usize) -> Result<bool> {
        if k == 0 {
            return Ok(self.universe_size == 0);
        }
        let groups = self.to_groups();
        let weights = vec![1.0f64; groups.len()];
        let cov = vec![1u32; groups.len()];
        let inst = DiversificationInstance::new(&groups, weights, cov);
        let threshold = inst.max_score(); // T = Σ wei(G) · min(cov, …)
        let best = exact_select(&inst, k, 1 << 32)?;
        Ok(best.score >= threshold.as_f64() - 1e-9)
    }

    /// Brute-force Set Cover (ground truth for the equivalence tests).
    pub fn brute_force_min_cover(&self) -> Option<usize> {
        let m = self.sets.len();
        assert!(m <= 20, "brute force limited to small instances");
        let full: u64 = if self.universe_size == 64 {
            u64::MAX
        } else {
            (1u64 << self.universe_size) - 1
        };
        let set_masks: Vec<u64> = self
            .sets
            .iter()
            .map(|s| s.iter().fold(0u64, |acc, &i| acc | (1 << i)))
            .collect();
        let mut best: Option<usize> = None;
        for choice in 0u32..(1 << m) {
            let mut covered = 0u64;
            for (j, &mask) in set_masks.iter().enumerate() {
                if choice & (1 << j) != 0 {
                    covered |= mask;
                }
            }
            if covered == full {
                let size = choice.count_ones() as usize;
                if best.is_none_or(|b| size < b) {
                    best = Some(size);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic() -> SetCover {
        // Universe {0..5}; greedy-trap instance.
        SetCover {
            universe_size: 6,
            sets: vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 3],
                vec![1, 4],
                vec![2, 5],
            ],
        }
    }

    #[test]
    fn reduction_structure() {
        let sc = classic();
        let groups = sc.to_groups();
        assert_eq!(groups.len(), 6, "one group per element");
        assert_eq!(groups.user_count(), 5, "one user per set");
        // u_0 ∈ G_i ⟺ i ∈ S_0 = {0,1,2}.
        for i in 0..3 {
            assert!(groups
                .group(crate::ids::GroupId(i))
                .unwrap()
                .contains(UserId(0)));
        }
        assert!(!groups
            .group(crate::ids::GroupId(3))
            .unwrap()
            .contains(UserId(0)));
    }

    #[test]
    fn decision_matches_brute_force() {
        let sc = classic();
        let min = sc.brute_force_min_cover().unwrap();
        assert_eq!(min, 2, "{{0,1,2}} + {{3,4,5}}");
        for k in 1..=4 {
            assert_eq!(sc.has_cover_of_size(k).unwrap(), k >= min, "k = {k}");
        }
    }

    #[test]
    fn uncoverable_universe() {
        let sc = SetCover {
            universe_size: 3,
            sets: vec![vec![0], vec![1]], // element 2 uncoverable
        };
        assert_eq!(sc.brute_force_min_cover(), None);
        assert!(!sc.has_cover_of_size(2).unwrap());
    }

    #[test]
    fn randomized_equivalence() {
        // Deterministic pseudo-random instances; compare the reduction's
        // answer with brute force for every k.
        let mut state: u64 = 0xDEAD_BEEF;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _trial in 0..25 {
            let universe = 3 + next() % 5;
            let n_sets = 2 + next() % 5;
            let sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| {
                    let size = 1 + next() % universe;
                    let mut s: Vec<usize> = (0..size).map(|_| next() % universe).collect();
                    s.sort();
                    s.dedup();
                    s
                })
                .collect();
            let sc = SetCover {
                universe_size: universe,
                sets,
            };
            let min = sc.brute_force_min_cover();
            for k in 1..=sc.sets.len() {
                let expected = min.is_some_and(|m| k >= m);
                assert_eq!(
                    sc.has_cover_of_size(k).unwrap(),
                    expected,
                    "universe {universe}, sets {:?}, k {k}",
                    sc.sets
                );
            }
        }
    }
}
