//! Greedy user selection — Algorithm 1 of the paper (§4).
//!
//! The algorithm maintains, for every unselected user, the *marginal
//! contribution* `marg_{u,U}` they would add to the total score. Each of the
//! `B` iterations selects the user with the greatest marginal contribution,
//! decrements the remaining coverage of every group they belong to, and —
//! when a group becomes fully covered — subtracts that group's weight from
//! the marginal contribution of its other members (the bidirectional
//! user ↔ group links make this `O(|G|)` per newly-covered group).
//!
//! Because `score_𝒢` is monotone submodular and non-negative for every
//! choice of `wei`/`cov` (Proposition 4.4), this greedy achieves a
//! `(1 − 1/e)` approximation of the optimal budgeted score (Nemhauser,
//! Wolsey & Fisher 1978). Total time is
//! `O(B · max_G |G| · max_u |{G | u ∈ G}|)`.
//!
//! The traversal itself runs in [`crate::engine`] over compressed
//! sparse-row (CSR) adjacency; this module keeps the stable public entry
//! points and the [`Selection`]/[`TieBreak`] types.

//! ```
//! use podium_core::prelude::*;
//!
//! // Three users over two groups; user 1 belongs to both.
//! let groups = GroupSet::from_memberships(
//!     3,
//!     vec![vec![UserId(0), UserId(1)], vec![UserId(1), UserId(2)]],
//! );
//! let inst = DiversificationInstance::new(&groups, vec![2.0, 3.0], vec![1, 1]);
//! let sel = greedy_select(&inst, 1);
//! assert_eq!(sel.users, vec![UserId(1)]); // covers both groups at once
//! assert_eq!(sel.score, 5.0);
//! ```

use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// The result of a selection run.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Selection<W> {
    /// Selected users, in selection order.
    pub users: Vec<UserId>,
    /// Marginal gain realized at each selection step (same order).
    pub gains: Vec<W>,
    /// Total score `score_𝒢(U)` of the selected subset.
    pub score: W,
    /// `|U ∩ G|` for every group, indexed by group id — feeds the
    /// subset-group explanations of §5.
    pub covered_counts: Vec<u32>,
    /// Sorted copy of `users` backing O(log B) membership tests — the
    /// why-not explanations of §5 probe every unselected user, which was
    /// quadratic with the old linear scan.
    #[serde(skip)]
    membership: Vec<u32>,
}

impl<W: ScoreValue> Selection<W> {
    /// Assembles a selection, building the sorted membership index.
    pub fn from_parts(
        users: Vec<UserId>,
        gains: Vec<W>,
        score: W,
        covered_counts: Vec<u32>,
    ) -> Self {
        let mut membership: Vec<u32> = users.iter().map(|u| u.index() as u32).collect();
        membership.sort_unstable();
        Self {
            users,
            gains,
            score,
            covered_counts,
            membership,
        }
    }

    /// Whether user `u` was selected (binary search over the sorted
    /// membership index).
    pub fn contains(&self, u: UserId) -> bool {
        self.membership.binary_search(&(u.index() as u32)).is_ok()
    }
}

/// Tie-breaking policy when several users share the maximal marginal
/// contribution. The paper breaks ties arbitrarily and notes (§10) that its
/// implementation randomizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Deterministic: the smallest user id wins. Default.
    FirstUser,
    /// Seeded pseudo-random choice among the tied users (splitmix64 stream).
    Seeded(u64),
}

/// Runs Algorithm 1: greedy selection of at most `b` users.
pub fn greedy_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
) -> Selection<W> {
    greedy_select_opts(inst, b, None, TieBreak::FirstUser)
}

/// Runs Algorithm 1 with an eligibility filter and tie-break policy.
///
/// `eligible`, when given, restricts the candidate pool (used by the
/// customization refinement `𝒰'` of §6); it must have one entry per user.
pub fn greedy_select_opts<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    eligible: Option<&[bool]>,
    tie_break: TieBreak,
) -> Selection<W> {
    crate::engine::eager_once(inst, b, eligible, tie_break)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSet;
    use crate::ids::GroupId;
    use crate::weights::{CovScheme, WeightScheme};

    /// The paper's Example 4.3 instance: Table 2 with LBS weights and Single
    /// coverage. Users: Alice(0) Bob(1) Carol(2) David(3) Eve(4).
    fn example_43() -> GroupSet {
        // Groups and LBS weights (superscripts of Table 2):
        //  g0 livesIn Tokyo       {A, D}      w=2
        //  g1 livesIn NYC         {B}         w=1
        //  g2 livesIn Bali        {C}         w=1
        //  g3 livesIn Paris       {E}         w=1
        //  g4 ageGroup 50-64      {A, C}      w=2
        //  g5 avgMex high         {A, D, E}   w=3
        //  g6 avgMex low          {B}         w=1
        //  g7 visitMex high       {A}         w=1
        //  g8 visitMex low        {B}         w=1
        //  g9 visitMex med        {D, E}      w=2
        // g10 avgCheap low        {A}         w=1
        // g11 avgCheap high       {B}         w=1
        // g12 avgCheap med        {C, E}      w=2
        // g13 visitCheap med      {A}         w=1
        // g14 visitCheap high     {B}         w=1
        // g15 visitCheap low      {C, E}      w=2
        let (a, b, c, d, e) = (UserId(0), UserId(1), UserId(2), UserId(3), UserId(4));
        GroupSet::from_memberships(
            5,
            vec![
                vec![a, d],
                vec![b],
                vec![c],
                vec![e],
                vec![a, c],
                vec![a, d, e],
                vec![b],
                vec![a],
                vec![b],
                vec![d, e],
                vec![a],
                vec![b],
                vec![c, e],
                vec![a],
                vec![b],
                vec![c, e],
            ],
        )
    }

    #[test]
    fn example_43_initial_marginals_and_outcome() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        // Initial marginal contributions: 10, 5, 7, 7, 10. Example 4.3 prints
        // David's as 6, but its own update step (reduced by 2+3 to reach 2)
        // confirms 7: Tokyo(2) + avgMex high(3) + visitMex medium(2).
        for (u, expect) in [(0u32, 10.0), (1, 5.0), (2, 7.0), (3, 7.0), (4, 10.0)] {
            assert_eq!(
                inst.marginal_gain(&[], UserId(u)),
                expect,
                "initial marg of user {u}"
            );
        }
        let sel = greedy_select(&inst, 2);
        // Tie between Alice and Eve broken to Alice (FirstUser); Eve follows.
        assert_eq!(sel.users, vec![UserId(0), UserId(4)]);
        assert_eq!(sel.gains, vec![10.0, 7.0]);
        assert_eq!(sel.score, 17.0, "total score 17 (Example 3.8)");
    }

    #[test]
    fn example_38_iden_selects_alice_and_bob() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2);
        assert_eq!(sel.users, vec![UserId(0), UserId(1)]);
        assert_eq!(sel.score, 11.0, "11 represented groups (Example 3.8)");
    }

    #[test]
    fn selection_score_matches_direct_evaluation() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            3,
        );
        let sel = greedy_select(&inst, 3);
        assert_eq!(sel.score, inst.score_of(&sel.users));
    }

    #[test]
    fn covered_counts_reported() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2);
        // g5 avgMex high contains Alice and Eve -> count 2 (over-covered).
        assert_eq!(sel.covered_counts[5], 2);
        assert_eq!(sel.covered_counts[1], 0); // Bob's NYC group uncovered
    }

    #[test]
    fn budget_larger_than_population() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            99,
        );
        let sel = greedy_select(&inst, 99);
        assert_eq!(sel.users.len(), 5, "stops when 𝒰 is exhausted (line 4)");
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            0,
        );
        let sel = greedy_select(&inst, 0);
        assert!(sel.users.is_empty());
        assert_eq!(sel.score, 0.0);
    }

    #[test]
    fn eligibility_filter_respected() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        // Exclude Alice: Eve must come first now.
        let eligible = vec![false, true, true, true, true];
        let sel = greedy_select_opts(&inst, 2, Some(&eligible), TieBreak::FirstUser);
        assert!(!sel.contains(UserId(0)));
        assert_eq!(sel.users[0], UserId(4));
    }

    #[test]
    fn proportional_coverage_changes_updates() {
        // With cov=2 on a shared group, selecting one member must NOT remove
        // the group from the other members' marginals.
        let g = GroupSet::from_memberships(3, vec![vec![UserId(0), UserId(1), UserId(2)]]);
        let inst = DiversificationInstance::new(&g, vec![1.0], vec![2]);
        let sel = greedy_select(&inst, 2);
        assert_eq!(sel.score, 2.0, "two representatives both rewarded");
        let inst1 = DiversificationInstance::new(&g, vec![1.0], vec![1]);
        let sel1 = greedy_select(&inst1, 2);
        assert_eq!(sel1.score, 1.0, "second representative adds nothing");
    }

    #[test]
    fn zero_weight_groups_ignored() {
        let g = GroupSet::from_memberships(2, vec![vec![UserId(0)], vec![UserId(1)]]);
        let inst = DiversificationInstance::new(&g, vec![0.0, 5.0], vec![1, 1]);
        let sel = greedy_select(&inst, 1);
        assert_eq!(sel.users, vec![UserId(1)]);
    }

    #[test]
    fn seeded_tie_break_is_reproducible_and_varies() {
        let g = example_43();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let a = greedy_select_opts(&inst, 2, None, TieBreak::Seeded(7));
        let b = greedy_select_opts(&inst, 2, None, TieBreak::Seeded(7));
        assert_eq!(a.users, b.users, "same seed, same outcome");
        assert_eq!(a.score, 17.0, "ties only between equal-score optima here");
        // Some seed picks Eve first (Alice/Eve tie); scores must match anyway.
        let mut saw_eve_first = false;
        for seed in 0..32 {
            let s = greedy_select_opts(&inst, 2, None, TieBreak::Seeded(seed));
            assert_eq!(s.score, 17.0);
            if s.users[0] == UserId(4) {
                saw_eve_first = true;
            }
        }
        assert!(
            saw_eve_first,
            "random tie-breaking should sometimes pick Eve"
        );
    }

    #[test]
    fn approximation_bound_on_small_instances() {
        // Greedy score ≥ (1 - 1/e) · optimal on an instance with a known
        // optimum: classic set-cover-ish trap.
        let g = GroupSet::from_memberships(
            4,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(0), UserId(2)],
                vec![UserId(1)],
                vec![UserId(2)],
                vec![UserId(3)],
            ],
        );
        let inst = DiversificationInstance::new(&g, vec![2.0, 2.0, 1.5, 1.5, 1.0], vec![1; 5]);
        let sel = greedy_select(&inst, 2);
        let opt = crate::exact::exact_select(&inst, 2, 1 << 20).unwrap();
        assert!(sel.score >= (1.0 - 1.0 / std::f64::consts::E) * opt.score);
    }

    #[test]
    fn ebs_greedy_prefers_largest_groups() {
        // Larger groups always covered first under EBS.
        let g = GroupSet::from_memberships(
            4,
            vec![
                vec![UserId(0)],                       // size 1
                vec![UserId(1), UserId(2)],            // size 2
                vec![UserId(1), UserId(2), UserId(3)], // size 3
            ],
        );
        let inst = DiversificationInstance::ebs(&g, CovScheme::Single, 1);
        let sel = greedy_select(&inst, 1);
        // Users 1/2 cover the two largest groups; user 1 wins the tie.
        assert_eq!(sel.users, vec![UserId(1)]);
        let _ = GroupId(0);
    }
}
