//! Diversification instances (Definition 3.3) and the total score function.
//!
//! An instance is the triple `(𝒢, wei, cov)`; given a selected subset `U`,
//! its score is `score_𝒢(U) = Σ_G wei(G) · min{|U ∩ G|, cov(G)}`. The
//! BASE-DIVERSITY problem asks for `U` with `|U| ≤ B` maximizing this score.

use crate::group::GroupSet;
use crate::ids::{GroupId, UserId};
use crate::score::{EbsValue, LexPair, ScoreValue};
use crate::weights::{ebs_weights, CovScheme, WeightScheme};

/// A diversification instance `(𝒢, wei, cov)` over a group set, generic in
/// the weight value type `W` (see [`crate::score`]).
#[derive(Debug, Clone)]
pub struct DiversificationInstance<'g, W: ScoreValue> {
    groups: &'g GroupSet,
    weights: Vec<W>,
    cov: Vec<u32>,
}

impl<'g, W: ScoreValue> DiversificationInstance<'g, W> {
    /// Builds an instance from explicit weight and coverage vectors, both
    /// indexed by [`GroupId`].
    ///
    /// # Panics
    /// Panics if the vector lengths disagree with the group count.
    pub fn new(groups: &'g GroupSet, weights: Vec<W>, cov: Vec<u32>) -> Self {
        assert_eq!(weights.len(), groups.len(), "one weight per group");
        assert_eq!(cov.len(), groups.len(), "one coverage size per group");
        Self {
            groups,
            weights,
            cov,
        }
    }

    /// The underlying group set.
    #[inline]
    pub fn groups(&self) -> &'g GroupSet {
        self.groups
    }

    /// The weight of group `g`.
    #[inline]
    pub fn weight(&self, g: GroupId) -> &W {
        &self.weights[g.index()]
    }

    /// The required coverage of group `g`.
    #[inline]
    pub fn cov(&self, g: GroupId) -> u32 {
        self.cov[g.index()]
    }

    /// All group weights, indexed by [`GroupId`] — flat access for the
    /// selection engine's hot loops.
    #[inline]
    pub fn weights(&self) -> &[W] {
        &self.weights
    }

    /// All required coverages, indexed by [`GroupId`].
    #[inline]
    pub fn covs(&self) -> &[u32] {
        &self.cov
    }

    /// Number of candidate users.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.groups.user_count()
    }

    /// Structural validation for instances built from untrusted inputs:
    /// every weight must be a well-formed score value
    /// ([`ScoreValue::is_valid`] — finite and non-negative for floats) and
    /// every group's member list must be strictly ascending (sorted,
    /// duplicate-free) with all ids inside the repository's user range.
    ///
    /// The selection engine `debug_assert!`s this on construction, so
    /// running the test suites with `RUSTFLAGS="-C debug-assertions"`
    /// exercises it on every selection; production callers ingesting
    /// external data should call it explicitly and surface the error.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::CoreError;
        let n = self.groups.user_count();
        for (g, group) in self.groups.iter() {
            let gi = g.index();
            if !self.weights[gi].is_valid() {
                return Err(CoreError::InvalidInstance {
                    group: Some(g),
                    reason: format!("weight {:?} is not a valid score value", self.weights[gi]),
                });
            }
            let members = &group.members;
            if let Some(w) = members.windows(2).find(|w| w[0] >= w[1]) {
                let what = if w[0] == w[1] {
                    "duplicate"
                } else {
                    "unsorted"
                };
                return Err(CoreError::InvalidInstance {
                    group: Some(g),
                    reason: format!("{what} member {} in group member list", w[1]),
                });
            }
            if let Some(&u) = members.last() {
                if u.index() >= n {
                    return Err(CoreError::InvalidInstance {
                        group: Some(g),
                        reason: format!("member {u} out of range for {n} users"),
                    });
                }
            }
        }
        Ok(())
    }

    /// `score_𝒢(U) = Σ_G wei(G) · min{|U ∩ G|, cov(G)}` (Definition 3.3).
    ///
    /// Duplicate users in `subset` are counted once.
    pub fn score_of(&self, subset: &[UserId]) -> W {
        let mut seen = vec![false; self.groups.user_count()];
        let mut counts = vec![0u32; self.groups.len()];
        for &u in subset {
            if std::mem::replace(&mut seen[u.index()], true) {
                continue;
            }
            for &g in self.groups.groups_of(u) {
                counts[g.index()] += 1;
            }
        }
        let mut total = W::zero();
        for (gi, &c) in counts.iter().enumerate() {
            let m = c.min(self.cov[gi]);
            for _ in 0..m {
                total.add_assign(&self.weights[gi]);
            }
        }
        total
    }

    /// The marginal gain of adding `u` to `subset`:
    /// `score(subset ∪ {u}) − score(subset)`, computed directly from the
    /// groups of `u` (O(|groups of u|) after counting `subset`).
    pub fn marginal_gain(&self, subset: &[UserId], u: UserId) -> W {
        if subset.contains(&u) {
            return W::zero();
        }
        let mut counts = vec![0u32; self.groups.len()];
        let mut seen = vec![false; self.groups.user_count()];
        for &v in subset {
            if std::mem::replace(&mut seen[v.index()], true) {
                continue;
            }
            for &g in self.groups.groups_of(v) {
                counts[g.index()] += 1;
            }
        }
        let mut gain = W::zero();
        for &g in self.groups.groups_of(u) {
            if counts[g.index()] < self.cov[g.index()] {
                gain.add_assign(&self.weights[g.index()]);
            }
        }
        gain
    }

    /// The maximum achievable score: every group fully covered,
    /// `Σ_G wei(G) · cov(G)`. This is the Set-Cover threshold `T` of
    /// Proposition 4.1.
    pub fn max_score(&self) -> W {
        let mut total = W::zero();
        for (gi, w) in self.weights.iter().enumerate() {
            for _ in 0..self.cov[gi] {
                total.add_assign(w);
            }
        }
        total
    }
}

impl<'g> DiversificationInstance<'g, f64> {
    /// Builds an instance from the paper's named weight/coverage schemes.
    /// `budget` is only used by [`CovScheme::Proportional`].
    pub fn from_schemes(
        groups: &'g GroupSet,
        weight: WeightScheme,
        cov: CovScheme,
        budget: usize,
    ) -> Self {
        Self::new(groups, weight.weights(groups), cov.cov(groups, budget))
    }
}

impl<'g> DiversificationInstance<'g, EbsValue> {
    /// Builds an EBS-weighted instance (Definition 3.6, *Enforced By Size*).
    pub fn ebs(groups: &'g GroupSet, cov: CovScheme, budget: usize) -> Self {
        Self::new(groups, ebs_weights(groups), cov.cov(groups, budget))
    }
}

impl<'g, T: ScoreValue> DiversificationInstance<'g, LexPair<T>> {
    /// Builds a lexicographic instance from separate priority/standard weight
    /// vectors (the CUSTOM-DIVERSITY objective of §6). Groups outside both
    /// sets should carry `T::zero()` in both vectors.
    pub fn lexicographic(
        groups: &'g GroupSet,
        priority: Vec<T>,
        standard: Vec<T>,
        cov: Vec<u32>,
    ) -> Self {
        let weights = priority
            .into_iter()
            .zip(standard)
            .map(|(p, s)| LexPair {
                priority: p,
                standard: s,
            })
            .collect();
        Self::new(groups, weights, cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSet;

    fn demo() -> GroupSet {
        // G0 = {0,1}, G1 = {1,2}, G2 = {3}
        GroupSet::from_memberships(
            4,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(1), UserId(2)],
                vec![UserId(3)],
            ],
        )
    }

    #[test]
    fn score_counts_min_of_members_and_cov() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![5.0, 3.0, 2.0], vec![1, 2, 1]);
        // U = {0,1}: G0 has 2 members but cov 1 -> 5; G1 has 1 (cov 2) -> 3.
        assert_eq!(inst.score_of(&[UserId(0), UserId(1)]), 8.0);
        // U = {1,2}: G0 count 1 -> 5; G1 count 2, cov 2 -> 6.
        assert_eq!(inst.score_of(&[UserId(1), UserId(2)]), 11.0);
        assert_eq!(inst.score_of(&[]), 0.0);
    }

    #[test]
    fn duplicates_ignored() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![1.0, 1.0, 1.0], vec![2, 2, 2]);
        assert_eq!(
            inst.score_of(&[UserId(0), UserId(0)]),
            inst.score_of(&[UserId(0)])
        );
    }

    #[test]
    fn excessive_representation_not_rewarded() {
        // "Excessive representation is not rewarded but also not penalized."
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![1.0, 0.0, 0.0], vec![1, 1, 1]);
        let one = inst.score_of(&[UserId(0)]);
        let two = inst.score_of(&[UserId(0), UserId(1)]);
        assert_eq!(one, two);
    }

    #[test]
    fn marginal_gain_matches_score_difference() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![5.0, 3.0, 2.0], vec![1, 2, 1]);
        for base in [vec![], vec![UserId(0)], vec![UserId(0), UserId(2)]] {
            for u in 0..4 {
                let u = UserId(u);
                if base.contains(&u) {
                    continue;
                }
                let mut ext = base.clone();
                ext.push(u);
                let direct = inst.score_of(&ext) - inst.score_of(&base);
                assert!(
                    (inst.marginal_gain(&base, u) - direct).abs() < 1e-12,
                    "base {base:?} u {u}"
                );
            }
        }
    }

    #[test]
    fn marginal_gain_of_member_is_zero() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![1.0, 1.0, 1.0], vec![1, 1, 1]);
        assert_eq!(inst.marginal_gain(&[UserId(1)], UserId(1)), 0.0);
    }

    #[test]
    fn max_score_sums_weight_times_cov() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![5.0, 3.0, 2.0], vec![1, 2, 1]);
        assert_eq!(inst.max_score(), 5.0 + 6.0 + 2.0);
    }

    #[test]
    fn from_schemes_lbs_single() {
        let g = demo();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        assert_eq!(*inst.weight(GroupId(0)), 2.0);
        assert_eq!(inst.cov(GroupId(0)), 1);
        // User 1 covers G0 (w=2) and G1 (w=2).
        assert_eq!(inst.score_of(&[UserId(1)]), 4.0);
    }

    #[test]
    fn ebs_instance_prefers_large_groups() {
        let g = demo(); // sizes 2, 2, 1
        let inst = DiversificationInstance::ebs(&g, CovScheme::Single, 1);
        // User 1 covers both size-2 groups; user 3 covers only the size-1.
        assert!(inst.score_of(&[UserId(1)]) > inst.score_of(&[UserId(3)]));
    }

    #[test]
    #[should_panic(expected = "one weight per group")]
    fn mismatched_weights_panic() {
        let g = demo();
        let _ = DiversificationInstance::new(&g, vec![1.0], vec![1, 1, 1]);
    }

    #[test]
    fn validate_accepts_well_formed_instances() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![5.0, 3.0, 2.0], vec![1, 2, 1]);
        assert!(inst.validate().is_ok());
        let ebs = DiversificationInstance::ebs(&g, CovScheme::Single, 2);
        assert!(ebs.validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_finite_and_negative_weights() {
        use crate::error::CoreError;
        let g = demo();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let inst = DiversificationInstance::new(&g, vec![1.0, bad, 1.0], vec![1, 1, 1]);
            match inst.validate() {
                Err(CoreError::InvalidInstance { group, .. }) => {
                    assert_eq!(group, Some(GroupId(1)), "weight {bad}");
                }
                other => panic!("expected InvalidInstance for weight {bad}, got {other:?}"),
            }
        }
    }
}
