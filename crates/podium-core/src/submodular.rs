//! Checkable forms of the score-function properties from Proposition 4.4.
//!
//! The `(1 − 1/e)` greedy guarantee rests on `score_𝒢` being non-negative,
//! monotone and submodular *for every choice of `wei` and `cov`*. These
//! helpers verify the properties on concrete instances and subsets; the
//! property-based tests in `tests/` drive them over randomized inputs.

use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// Checks monotonicity on a chain: `score(U) ≤ score(U ∪ {u})` for each
/// prefix of `order`.
pub fn check_monotone_chain<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    order: &[UserId],
) -> bool {
    let mut prev = W::zero();
    for i in 1..=order.len() {
        let s = inst.score_of(&order[..i]);
        if s < prev {
            return false;
        }
        prev = s;
    }
    true
}

/// Checks the submodularity inequality for one witness:
/// `score(U ∪ {u}) − score(U) ≥ score(U' ∪ {u}) − score(U')`
/// where `U ⊆ U'` and `u ∉ U'`.
pub fn check_submodular_witness<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    smaller: &[UserId],
    larger: &[UserId],
    u: UserId,
) -> bool {
    debug_assert!(smaller.iter().all(|x| larger.contains(x)), "U ⊆ U'");
    debug_assert!(!larger.contains(&u), "u ∉ U'");
    let small_gain = inst.marginal_gain(smaller, u);
    let large_gain = inst.marginal_gain(larger, u);
    // small_gain >= large_gain
    !matches!(
        small_gain.partial_cmp(&large_gain),
        Some(std::cmp::Ordering::Less) | None
    )
}

/// Exhaustively checks submodularity over *all* `(U ⊆ U', u)` triples of a
/// small instance. Exponential — intended for instances with ≤ ~12 users.
pub fn check_submodular_exhaustive<W: ScoreValue>(inst: &DiversificationInstance<'_, W>) -> bool {
    let n = inst.user_count();
    assert!(n <= 16, "exhaustive check limited to small instances");
    let users: Vec<UserId> = (0..n).map(UserId::from_index).collect();
    for large_mask in 0u32..(1 << n) {
        let larger: Vec<UserId> = users
            .iter()
            .filter(|u| large_mask & (1 << u.index()) != 0)
            .copied()
            .collect();
        // Enumerate submasks of large_mask as the smaller set.
        let mut sub = large_mask;
        loop {
            let smaller: Vec<UserId> = users
                .iter()
                .filter(|u| sub & (1 << u.index()) != 0)
                .copied()
                .collect();
            for &u in &users {
                if large_mask & (1 << u.index()) != 0 {
                    continue;
                }
                if !check_submodular_witness(inst, &smaller, &larger, u) {
                    return false;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & large_mask;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSet;
    use crate::weights::{CovScheme, WeightScheme};

    fn demo() -> GroupSet {
        GroupSet::from_memberships(
            4,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(1), UserId(2), UserId(3)],
                vec![UserId(2)],
            ],
        )
    }

    #[test]
    fn score_is_monotone_on_chains() {
        let g = demo();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            4,
        );
        let order: Vec<UserId> = (0..4).map(UserId::from_index).collect();
        assert!(check_monotone_chain(&inst, &order));
    }

    #[test]
    fn score_is_submodular_exhaustively_single_cov() {
        let g = demo();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            4,
        );
        assert!(check_submodular_exhaustive(&inst));
    }

    #[test]
    fn score_is_submodular_exhaustively_prop_cov() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![2.0, 3.0, 1.0], vec![2, 3, 1]);
        assert!(check_submodular_exhaustive(&inst));
    }

    #[test]
    fn witness_detects_violations() {
        // A supermodular counterexample cannot come from DiversificationInstance
        // (its score is always submodular), so check the checker's direction
        // with a hand-picked true witness instead.
        let g = demo();
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::Identical,
            CovScheme::Single,
            4,
        );
        // Adding user 1 to {} gains 2 groups; to {0, 2} gains 0 groups.
        assert!(check_submodular_witness(
            &inst,
            &[],
            &[UserId(0), UserId(2)],
            UserId(1)
        ));
    }
}
