//! Equal-frequency (quantile) interval splitting.
//!
//! Cuts are placed at the `i/k` quantiles of the observed scores, midway
//! between the two straddling observations so that ties do not produce
//! degenerate buckets.

/// Returns interior edges placing roughly `n/k` observations per bucket.
///
/// `values` must be sorted ascending.
pub fn split(values: &[f64], k: usize) -> Vec<f64> {
    if k <= 1 || values.len() < 2 {
        return Vec::new();
    }
    let n = values.len();
    let mut edges = Vec::with_capacity(k - 1);
    for i in 1..k {
        let pos = i * n / k;
        if pos == 0 || pos >= n {
            continue;
        }
        let lo = values[pos - 1];
        let hi = values[pos];
        if hi > lo {
            edges.push((lo + hi) / 2.0);
        }
        // hi == lo: the quantile falls inside a run of ties; no cut here.
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_gets_balanced_cuts() {
        let values: Vec<f64> = (0..90).map(|i| i as f64 / 89.0).collect();
        let e = split(&values, 3);
        assert_eq!(e.len(), 2);
        // Cuts near the 1/3 and 2/3 quantiles.
        assert!((e[0] - 1.0 / 3.0).abs() < 0.05, "{e:?}");
        assert!((e[1] - 2.0 / 3.0).abs() < 0.05, "{e:?}");
    }

    #[test]
    fn ties_do_not_create_degenerate_cuts() {
        let values = vec![0.5; 100];
        assert!(split(&values, 3).is_empty());
    }

    #[test]
    fn skewed_data_cuts_follow_mass() {
        // 90% of mass at the low score. With k=2 the median falls inside the
        // tie run, so no cut is possible; with k=10 the 9/10 quantile lands
        // exactly on the boundary between the two runs.
        let mut values = vec![0.05; 90];
        values.extend(std::iter::repeat_n(0.9, 10));
        assert!(split(&values, 2).is_empty(), "median inside tie run");
        let e = split(&values, 10);
        assert_eq!(e.len(), 1);
        assert!(
            (e[0] - 0.475).abs() < 1e-12,
            "midpoint between 0.05 and 0.9"
        );
    }

    #[test]
    fn tiny_inputs() {
        assert!(split(&[], 3).is_empty());
        assert!(split(&[0.5], 3).is_empty());
        let e = split(&[0.2, 0.8], 2);
        assert_eq!(e, vec![0.5]);
    }
}
