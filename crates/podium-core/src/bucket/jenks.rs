//! Jenks natural-breaks optimization (Jenks 1967, paper ref. \[14\]).
//!
//! Finds the partition of sorted 1-D data into `k` classes minimizing the
//! total within-class sum of squared deviations from the class mean, via the
//! classic `O(k·n²)` dynamic program (Fisher's exact method). Prefix sums
//! make each interval cost O(1).

/// Returns interior edges of the optimal `k`-class natural-breaks partition.
///
/// `values` must be sorted ascending. Edges are placed midway between the
/// last value of one class and the first value of the next.
#[allow(clippy::needless_range_loop)] // DP indices mirror the textbook recurrence
pub fn split(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    if k <= 1 || n < 2 {
        return Vec::new();
    }
    let k = k.min(n);

    // prefix[i] = sum of first i values; prefix2 likewise for squares.
    let mut prefix = vec![0.0f64; n + 1];
    let mut prefix2 = vec![0.0f64; n + 1];
    for (i, &v) in values.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix2[i + 1] = prefix2[i] + v * v;
    }
    // Cost (SSE) of the class values[i..j], i < j.
    let sse = |i: usize, j: usize| -> f64 {
        let cnt = (j - i) as f64;
        let s = prefix[j] - prefix[i];
        let s2 = prefix2[j] - prefix2[i];
        (s2 - s * s / cnt).max(0.0)
    };

    // dp[c][j] = min cost of splitting the first j values into c classes.
    // back[c][j] = start index of the last class in that optimum.
    let mut dp = vec![f64::INFINITY; n + 1];
    let mut back = vec![vec![0usize; n + 1]; k + 1];
    for j in 1..=n {
        dp[j] = sse(0, j);
        back[1][j] = 0;
    }
    dp[0] = 0.0;
    for c in 2..=k {
        let mut next = vec![f64::INFINITY; n + 1];
        for j in c..=n {
            let mut best = f64::INFINITY;
            let mut best_i = c - 1;
            for i in (c - 1)..j {
                let cost = dp[i] + sse(i, j);
                if cost < best {
                    best = cost;
                    best_i = i;
                }
            }
            next[j] = best;
            back[c][j] = best_i;
        }
        dp = next;
    }

    // Recover class boundaries.
    let mut cuts = Vec::with_capacity(k - 1);
    let mut j = n;
    for c in (2..=k).rev() {
        let i = back[c][j];
        cuts.push(i);
        j = i;
    }
    cuts.reverse();

    cuts.into_iter()
        .filter(|&i| i > 0 && i < n && values[i] > values[i - 1])
        .map(|i| (values[i - 1] + values[i]) / 2.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_clusters() {
        let mut values = vec![0.1, 0.11, 0.12, 0.13, 0.9, 0.91, 0.92];
        values.sort_by(f64::total_cmp);
        let e = split(&values, 2);
        assert_eq!(e.len(), 1);
        assert!(e[0] > 0.13 && e[0] < 0.9, "cut at {e:?}");
    }

    #[test]
    fn separates_three_clusters() {
        let mut values = Vec::new();
        for c in [0.1, 0.5, 0.9] {
            for i in 0..10 {
                values.push(c + i as f64 * 0.001);
            }
        }
        values.sort_by(f64::total_cmp);
        let e = split(&values, 3);
        assert_eq!(e.len(), 2);
        assert!(e[0] > 0.11 && e[0] < 0.5);
        assert!(e[1] > 0.51 && e[1] < 0.9);
    }

    #[test]
    fn optimality_against_brute_force() {
        // Compare DP cost with brute-force enumeration of all 2-cut splits.
        let values = [0.05, 0.1, 0.3, 0.35, 0.4, 0.7, 0.75, 0.95];
        let e = split(&values, 3);
        let cost = |cuts: &[usize]| -> f64 {
            let mut bounds = vec![0];
            bounds.extend_from_slice(cuts);
            bounds.push(values.len());
            bounds
                .windows(2)
                .map(|w| {
                    let cls = &values[w[0]..w[1]];
                    let m = cls.iter().sum::<f64>() / cls.len() as f64;
                    cls.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
                })
                .sum()
        };
        // Recover the DP's cut indices from the returned edges.
        let dp_cuts: Vec<usize> = e
            .iter()
            .map(|&edge| values.iter().position(|&v| v > edge).unwrap())
            .collect();
        let dp_cost = cost(&dp_cuts);
        let mut best = f64::INFINITY;
        for i in 1..values.len() {
            for j in (i + 1)..values.len() {
                best = best.min(cost(&[i, j]));
            }
        }
        assert!(
            dp_cost <= best + 1e-12,
            "DP cost {dp_cost} worse than brute force {best}"
        );
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let values = [0.2, 0.8];
        let e = split(&values, 10);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn constant_data_yields_no_cuts() {
        let values = [0.4; 20];
        assert!(split(&values, 3).is_empty());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(split(&[], 3).is_empty());
        assert!(split(&[0.5], 3).is_empty());
    }
}
