//! Property-score bucketing `β(p)` (paper §3.2).
//!
//! Podium splits the `[0, 1]` score range of every property into a small set
//! of non-overlapping buckets; a property × bucket pair then defines a simple
//! user group `G_{p,b}` (Definition 3.4). The paper notes several 1-D
//! interval-splitting methods that exploit the ordering of the data: Jenks
//! natural-breaks optimization, k-means, expectation maximization, and
//! kernel-density estimation. All of them are implemented here, along with
//! equal-width, quantile, and fixed-edge splitting (the paper's running
//! example uses fixed edges `[0, 0.4), [0.4, 0.65), [0.65, 1]`).
//!
//! Boolean properties (all observed scores are 0 or 1) are special-cased: a
//! single "true" bucket `[0.5, 1]` is produced, matching the paper where e.g.
//! `livesIn Tokyo` forms the single group of Tokyo residents and
//! falsehood-inferred zero scores join no group (Table 2 weights).

pub mod em;
pub mod equal_width;
pub mod jenks;
pub mod kde;
pub mod kmeans1d;
pub mod quantile;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::ids::BucketIdx;
use crate::profile::UserRepository;

/// A contiguous score range `b ⊆ [0, 1]`.
///
/// Buckets are half-open `[lo, hi)` except the last bucket of a set, which is
/// closed `[lo, hi]` so that the whole partition covers 1.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Upper bound; inclusive iff `hi_inclusive`.
    pub hi: f64,
    /// Whether `hi` itself belongs to the bucket.
    pub hi_inclusive: bool,
    /// Human-readable label used by explanations (§5), e.g. `"high"`.
    pub label: String,
}

impl Bucket {
    /// Whether score `x` falls in this bucket.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && (x < self.hi || (self.hi_inclusive && x == self.hi))
    }

    /// Renders the range, e.g. `[0.40, 0.65)`.
    pub fn range_string(&self) -> String {
        let close = if self.hi_inclusive { ']' } else { ')' };
        format!("[{:.2}, {:.2}{close}", self.lo, self.hi)
    }
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.label.is_empty() {
            write!(f, "{}", self.range_string())
        } else {
            write!(f, "{} {}", self.label, self.range_string())
        }
    }
}

/// The ordered set of buckets `β(p)` for one property.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BucketSet {
    buckets: Vec<Bucket>,
}

impl BucketSet {
    /// Builds a partition of `[0, 1]` from strictly increasing *interior*
    /// edges. `edges = [0.4, 0.65]` yields `[0, .4), [.4, .65), [.65, 1]`.
    pub fn from_interior_edges(edges: &[f64]) -> Result<Self> {
        let mut all = Vec::with_capacity(edges.len() + 2);
        all.push(0.0);
        all.extend_from_slice(edges);
        all.push(1.0);
        for w in all.windows(2) {
            if w[0] >= w[1] || !w[0].is_finite() || !w[1].is_finite() {
                return Err(CoreError::InvalidBucketEdges(edges.to_vec()));
            }
        }
        let n = all.len() - 1;
        let buckets = all
            .windows(2)
            .enumerate()
            .map(|(i, w)| Bucket {
                lo: w[0],
                hi: w[1],
                hi_inclusive: i == n - 1,
                label: default_label(i, n).to_owned(),
            })
            .collect();
        Ok(Self { buckets })
    }

    /// A single "true" bucket `[0.5, 1]` for Boolean properties. Its label is
    /// empty, as in the paper ("the label of the bucket [1, 1] is empty for
    /// Boolean properties").
    pub fn boolean_true() -> Self {
        Self {
            buckets: vec![Bucket {
                lo: 0.5,
                hi: 1.0,
                hi_inclusive: true,
                label: String::new(),
            }],
        }
    }

    /// An empty bucket set (property observed for no user).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of buckets `|β(p)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether there are no buckets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Borrows the buckets in increasing range order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Borrows one bucket.
    pub fn bucket(&self, idx: BucketIdx) -> Option<&Bucket> {
        self.buckets.get(idx.index())
    }

    /// The bucket containing score `x`, if any.
    pub fn bucket_of(&self, x: f64) -> Option<BucketIdx> {
        self.buckets
            .iter()
            .position(|b| b.contains(x))
            .map(BucketIdx::from_index)
    }

    /// Overwrites bucket labels (e.g. domain-specific names).
    ///
    /// Extra labels are ignored; missing labels keep their defaults.
    pub fn relabel<S: AsRef<str>>(&mut self, labels: &[S]) {
        for (b, l) in self.buckets.iter_mut().zip(labels) {
            b.label = l.as_ref().to_owned();
        }
    }
}

/// Default bucket label for bucket `i` of `n` — "low/medium/high" for the
/// common 3-way split, positional otherwise.
pub fn default_label(i: usize, n: usize) -> &'static str {
    match (n, i) {
        (1, _) => "",
        (2, 0) => "low",
        (2, 1) => "high",
        (3, 0) => "low",
        (3, 1) => "medium",
        (3, 2) => "high",
        (4, 0) => "lowest",
        (4, 1) => "low",
        (4, 2) => "high",
        (4, 3) => "highest",
        (5, 0) => "lowest",
        (5, 1) => "low",
        (5, 2) => "medium",
        (5, 3) => "high",
        (5, 4) => "highest",
        _ => "range",
    }
}

/// 1-D interval splitting strategies for computing `β(p)` (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BucketStrategy {
    /// Fixed interior edges shared by all properties (the paper's running
    /// example uses `[0.4, 0.65]`).
    FixedEdges(Vec<f64>),
    /// `k` equal-width intervals over `[0, 1]`.
    EqualWidth,
    /// `k` equal-frequency intervals (quantiles of the observed scores).
    Quantile,
    /// Jenks natural-breaks optimization \[14\]: exact dynamic program
    /// minimizing within-class sum of squared deviations.
    Jenks,
    /// 1-D k-means (Lloyd iterations seeded by quantiles).
    KMeans1D,
    /// Kernel-density valley splitting (Gaussian kernel, Silverman
    /// bandwidth): cuts at the deepest density minima.
    Kde,
    /// 1-D Gaussian-mixture fit by expectation maximization; cuts where the
    /// posterior-most-likely component changes.
    Em,
}

/// Configuration for bucketing an entire repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketingConfig {
    /// The splitting strategy.
    pub strategy: BucketStrategy,
    /// Target number of buckets per non-Boolean property.
    pub buckets_per_property: usize,
    /// Detect Boolean properties (all scores ∈ {0, 1}) and give them a single
    /// `[0.5, 1]` "true" bucket.
    pub detect_boolean: bool,
}

impl BucketingConfig {
    /// The paper's running-example configuration: fixed edges
    /// `[0, 0.4), [0.4, 0.65), [0.65, 1]` with low/medium/high labels and
    /// Boolean detection (Example 3.8).
    pub fn paper_default() -> Self {
        Self {
            strategy: BucketStrategy::FixedEdges(vec![0.4, 0.65]),
            buckets_per_property: 3,
            detect_boolean: true,
        }
    }

    /// A data-adaptive default: 3-bucket quantile splitting with Boolean
    /// detection.
    pub fn adaptive_default() -> Self {
        Self {
            strategy: BucketStrategy::Quantile,
            buckets_per_property: 3,
            detect_boolean: true,
        }
    }

    /// Computes `β(p)` for every property in the repository. The result is
    /// indexed by [`crate::ids::PropertyId`].
    pub fn bucketize(&self, repo: &UserRepository) -> PropertyBuckets {
        let mut sets = Vec::with_capacity(repo.property_count());
        let mut values: Vec<f64> = Vec::new();
        for p in 0..repo.property_count() {
            let pid = crate::ids::PropertyId::from_index(p);
            values.clear();
            values.extend(repo.property_values(pid).into_iter().map(|(_, s)| s));
            sets.push(self.bucketize_values(&mut values));
        }
        PropertyBuckets { sets }
    }

    /// Computes a bucket set for one property's observed scores.
    ///
    /// `values` is scratch space and will be sorted in place.
    pub fn bucketize_values(&self, values: &mut [f64]) -> BucketSet {
        if values.is_empty() {
            return BucketSet::empty();
        }
        if self.detect_boolean && values.iter().all(|&v| v == 0.0 || v == 1.0) {
            return BucketSet::boolean_true();
        }
        values.sort_by(f64::total_cmp);
        let k = self.buckets_per_property.max(1);
        let edges = match &self.strategy {
            BucketStrategy::FixedEdges(e) => e.clone(),
            BucketStrategy::EqualWidth => equal_width::split(k),
            BucketStrategy::Quantile => quantile::split(values, k),
            BucketStrategy::Jenks => jenks::split(values, k),
            BucketStrategy::KMeans1D => kmeans1d::split(values, k),
            BucketStrategy::Kde => kde::split(values, k),
            BucketStrategy::Em => em::split(values, k),
        };
        let edges = sanitize_edges(edges);
        BucketSet::from_interior_edges(&edges)
            .expect("sanitize_edges guarantees valid interior edges")
    }
}

/// Per-property bucket sets for a whole repository.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PropertyBuckets {
    sets: Vec<BucketSet>,
}

impl PropertyBuckets {
    /// Builds directly from per-property bucket sets (tests, custom setups).
    pub fn from_sets(sets: Vec<BucketSet>) -> Self {
        Self { sets }
    }

    /// The bucket set of property `p` (empty set if out of range).
    pub fn of(&self, p: crate::ids::PropertyId) -> &BucketSet {
        static EMPTY: BucketSet = BucketSet {
            buckets: Vec::new(),
        };
        self.sets.get(p.index()).unwrap_or(&EMPTY)
    }

    /// Number of properties covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no properties are covered.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Total number of buckets across all properties (an upper bound on the
    /// number of simple groups).
    pub fn total_buckets(&self) -> usize {
        self.sets.iter().map(BucketSet::len).sum()
    }
}

/// Clamps interior edges into `(0, 1)`, sorts, and removes duplicates or
/// near-duplicates so that [`BucketSet::from_interior_edges`] always succeeds.
fn sanitize_edges(mut edges: Vec<f64>) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    edges.retain(|e| e.is_finite() && *e > EPS && *e < 1.0 - EPS);
    edges.sort_by(f64::total_cmp);
    edges.dedup_by(|a, b| (*a - *b).abs() < EPS);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_contains_half_open_semantics() {
        let set = BucketSet::from_interior_edges(&[0.4, 0.65]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.bucket_of(0.0), Some(BucketIdx(0)));
        assert_eq!(set.bucket_of(0.39999), Some(BucketIdx(0)));
        assert_eq!(set.bucket_of(0.4), Some(BucketIdx(1)));
        assert_eq!(set.bucket_of(0.65), Some(BucketIdx(2)));
        assert_eq!(set.bucket_of(1.0), Some(BucketIdx(2)), "last bucket closed");
        assert_eq!(set.bucket_of(1.5), None);
    }

    #[test]
    fn paper_default_labels() {
        let set = BucketSet::from_interior_edges(&[0.4, 0.65]).unwrap();
        let labels: Vec<&str> = set.buckets().iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["low", "medium", "high"]);
    }

    #[test]
    fn invalid_edges_rejected() {
        assert!(BucketSet::from_interior_edges(&[0.65, 0.4]).is_err());
        assert!(BucketSet::from_interior_edges(&[0.0]).is_err());
        assert!(BucketSet::from_interior_edges(&[1.0]).is_err());
        assert!(BucketSet::from_interior_edges(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn boolean_detection() {
        let cfg = BucketingConfig::paper_default();
        let mut vals = vec![1.0, 0.0, 1.0];
        let set = cfg.bucketize_values(&mut vals);
        assert_eq!(set.len(), 1);
        assert!(set.buckets()[0].contains(1.0));
        assert!(
            !set.buckets()[0].contains(0.0),
            "false scores join no group"
        );
        assert_eq!(set.buckets()[0].label, "");
    }

    #[test]
    fn non_boolean_values_get_three_buckets() {
        let cfg = BucketingConfig::paper_default();
        let mut vals = vec![0.1, 0.5, 0.9];
        let set = cfg.bucketize_values(&mut vals);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn empty_values_give_empty_set() {
        let cfg = BucketingConfig::paper_default();
        let set = cfg.bucketize_values(&mut []);
        assert!(set.is_empty());
        assert_eq!(set.bucket_of(0.5), None);
    }

    #[test]
    fn sanitize_edges_dedups_and_clamps() {
        let e = sanitize_edges(vec![0.5, 0.5 + 1e-12, -0.3, 1.2, 0.2, f64::NAN]);
        assert_eq!(e, vec![0.2, 0.5]);
    }

    #[test]
    fn bucketize_repository() {
        let mut repo = UserRepository::new();
        let a = repo.add_user("a");
        let b = repo.add_user("b");
        let bool_p = repo.intern_property("livesIn X");
        let cont_p = repo.intern_property("rating Y");
        repo.set_score(a, bool_p, 1.0).unwrap();
        repo.set_score(a, cont_p, 0.9).unwrap();
        repo.set_score(b, cont_p, 0.2).unwrap();
        let pb = BucketingConfig::paper_default().bucketize(&repo);
        assert_eq!(pb.len(), 2);
        assert_eq!(pb.of(bool_p).len(), 1);
        assert_eq!(pb.of(cont_p).len(), 3);
        assert_eq!(pb.total_buckets(), 4);
    }

    #[test]
    fn display_includes_label_and_range() {
        let set = BucketSet::from_interior_edges(&[0.4]).unwrap();
        let s = set.buckets()[0].to_string();
        assert!(s.contains("low"));
        assert!(s.contains("[0.00, 0.40)"));
    }

    #[test]
    fn relabel_overrides() {
        let mut set = BucketSet::from_interior_edges(&[0.5]).unwrap();
        set.relabel(&["bad", "good"]);
        assert_eq!(set.buckets()[0].label, "bad");
        assert_eq!(set.buckets()[1].label, "good");
    }

    #[test]
    fn all_strategies_produce_valid_partitions() {
        let strategies = [
            BucketStrategy::EqualWidth,
            BucketStrategy::Quantile,
            BucketStrategy::Jenks,
            BucketStrategy::KMeans1D,
            BucketStrategy::Kde,
            BucketStrategy::Em,
        ];
        let mut vals: Vec<f64> = (0..100).map(|i| (i as f64) / 99.0).collect();
        for strat in strategies {
            let cfg = BucketingConfig {
                strategy: strat.clone(),
                buckets_per_property: 4,
                detect_boolean: false,
            };
            let set = cfg.bucketize_values(&mut vals);
            assert!(!set.is_empty(), "{strat:?} produced no buckets");
            // Every value must fall in exactly one bucket.
            for &v in vals.iter() {
                let n = set.buckets().iter().filter(|b| b.contains(v)).count();
                assert_eq!(n, 1, "{strat:?}: value {v} in {n} buckets");
            }
        }
    }

    #[test]
    fn constant_data_degrades_gracefully() {
        // All strategies must cope with zero-variance data.
        for strat in [
            BucketStrategy::Quantile,
            BucketStrategy::Jenks,
            BucketStrategy::KMeans1D,
            BucketStrategy::Kde,
            BucketStrategy::Em,
        ] {
            let cfg = BucketingConfig {
                strategy: strat.clone(),
                buckets_per_property: 3,
                detect_boolean: false,
            };
            let mut vals = vec![0.7; 50];
            let set = cfg.bucketize_values(&mut vals);
            assert!(set.bucket_of(0.7).is_some(), "{strat:?} lost the data");
        }
    }
}
