//! Equal-width interval splitting: `k` intervals of width `1/k` over `[0, 1]`.

/// Returns the `k - 1` interior edges of the equal-width partition of `[0, 1]`.
pub fn split(k: usize) -> Vec<f64> {
    if k <= 1 {
        return Vec::new();
    }
    (1..k).map(|i| i as f64 / k as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_buckets() {
        let e = split(3);
        assert_eq!(e.len(), 2);
        assert!((e[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((e[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_bucket_has_no_edges() {
        assert!(split(1).is_empty());
        assert!(split(0).is_empty());
    }

    #[test]
    fn edges_are_strictly_increasing() {
        let e = split(10);
        assert!(e.windows(2).all(|w| w[0] < w[1]));
    }
}
