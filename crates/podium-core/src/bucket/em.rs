//! 1-D Gaussian-mixture interval splitting via expectation maximization.
//!
//! Fits a `k`-component Gaussian mixture to the scores with EM (deterministic
//! quantile initialization), then cuts wherever the maximum-posterior
//! component changes along a grid sweep of `[0, 1]`. Components that collapse
//! (weight or variance → 0) are dropped, so fewer than `k` buckets may
//! result.

const MAX_ITERS: usize = 100;
const MIN_VAR: f64 = 1e-6;
const GRID: usize = 512;

#[derive(Clone, Copy)]
struct Component {
    weight: f64,
    mean: f64,
    var: f64,
}

fn log_pdf(c: &Component, x: f64) -> f64 {
    let d = x - c.mean;
    c.weight.ln() - 0.5 * (d * d / c.var) - 0.5 * (c.var * std::f64::consts::TAU).ln()
}

/// Returns interior edges where the fitted mixture's dominant component
/// changes.
///
/// `values` must be sorted ascending.
pub fn split(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    if k <= 1 || n < 2 {
        return Vec::new();
    }
    let k = k.min(n);

    // Quantile initialization with a shared initial variance.
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).max(MIN_VAR);
    let mut comps: Vec<Component> = (0..k)
        .map(|i| Component {
            weight: 1.0 / k as f64,
            mean: values[((2 * i + 1) * n / (2 * k)).min(n - 1)],
            var: var / k as f64,
        })
        .collect();

    let mut resp = vec![0.0f64; k];
    let mut stats = vec![(0.0f64, 0.0f64, 0.0f64); k]; // (r, r*x, r*x²)
    let mut prev_ll = f64::NEG_INFINITY;
    for _ in 0..MAX_ITERS {
        for s in stats.iter_mut() {
            *s = (0.0, 0.0, 0.0);
        }
        let mut ll = 0.0;
        for &x in values {
            // E-step for one point, in log space for stability.
            let mut max_lp = f64::NEG_INFINITY;
            for (j, c) in comps.iter().enumerate() {
                resp[j] = log_pdf(c, x);
                max_lp = max_lp.max(resp[j]);
            }
            let mut denom = 0.0;
            for r in resp.iter_mut() {
                *r = (*r - max_lp).exp();
                denom += *r;
            }
            ll += denom.ln() + max_lp;
            for (j, s) in stats.iter_mut().enumerate() {
                let r = resp[j] / denom;
                s.0 += r;
                s.1 += r * x;
                s.2 += r * x * x;
            }
        }
        // M-step.
        for (c, &(r, rx, rx2)) in comps.iter_mut().zip(stats.iter()) {
            if r < 1e-9 {
                c.weight = 0.0;
                continue;
            }
            c.weight = r / n as f64;
            c.mean = rx / r;
            c.var = (rx2 / r - c.mean * c.mean).max(MIN_VAR);
        }
        if (ll - prev_ll).abs() < 1e-9 {
            break;
        }
        prev_ll = ll;
    }
    comps.retain(|c| c.weight > 1e-6);
    if comps.len() <= 1 {
        return Vec::new();
    }
    comps.sort_by(|a, b| a.mean.total_cmp(&b.mean));

    // Sweep a grid, recording where the argmax-posterior component changes.
    let lo = values[0];
    let hi = values[n - 1];
    if hi <= lo {
        return Vec::new();
    }
    let mut edges = Vec::new();
    let mut prev_best = usize::MAX;
    for g in 0..GRID {
        let x = lo + (hi - lo) * g as f64 / (GRID - 1) as f64;
        let best = comps
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| log_pdf(a, x).total_cmp(&log_pdf(b, x)))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if prev_best != usize::MAX && best != prev_best {
            edges.push(x);
        }
        prev_best = best;
    }
    // A wide component can dominate in several disjoint regions (e.g. both
    // tails around a narrow central component), yielding more than `k - 1`
    // switches; drop the excess so the result respects the requested bucket
    // count.
    edges.truncate(k - 1);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_gaussians() {
        let mut values = Vec::new();
        for i in 0..50 {
            values.push(0.2 + 0.02 * ((i % 7) as f64 - 3.0) / 3.0);
            values.push(0.8 + 0.02 * ((i % 5) as f64 - 2.0) / 2.0);
        }
        values.sort_by(f64::total_cmp);
        let e = split(&values, 2);
        assert_eq!(e.len(), 1, "{e:?}");
        assert!(e[0] > 0.3 && e[0] < 0.7, "boundary at {e:?}");
    }

    #[test]
    fn collapsed_components_are_dropped() {
        // Single tight cluster: extra components collapse, no cuts remain.
        let values = vec![0.5, 0.5001, 0.5002, 0.5003, 0.5004];
        let e = split(&values, 3);
        assert!(e.len() <= 1, "{e:?}");
    }

    #[test]
    fn constant_data_yields_no_cuts() {
        assert!(split(&[0.25; 40], 3).is_empty());
    }

    #[test]
    fn three_components() {
        let mut values = Vec::new();
        for c in [0.1, 0.5, 0.9] {
            for i in 0..30 {
                values.push(c + 0.015 * ((i % 9) as f64 - 4.0) / 4.0);
            }
        }
        values.sort_by(f64::total_cmp);
        let e = split(&values, 3);
        assert_eq!(e.len(), 2, "{e:?}");
        assert!(e[0] > 0.15 && e[0] < 0.5, "{e:?}");
        assert!(e[1] > 0.55 && e[1] < 0.9, "{e:?}");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(split(&[], 2).is_empty());
        assert!(split(&[0.3], 2).is_empty());
    }
}
