//! 1-D k-means interval splitting (Lloyd's algorithm).
//!
//! Because the data is one-dimensional and sorted, cluster assignments are
//! contiguous intervals, so the result is a valid bucketing. Centroids are
//! seeded at the quantile midpoints, which makes the procedure deterministic.

/// Returns interior edges from a `k`-means clustering of the sorted values.
pub fn split(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    if k <= 1 || n < 2 {
        return Vec::new();
    }
    let k = k.min(n);

    // Quantile seeding.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| values[((2 * i + 1) * n / (2 * k)).min(n - 1)])
        .collect();
    centroids.dedup();
    let k = centroids.len();
    if k <= 1 {
        return Vec::new();
    }

    // Lloyd iterations. Assignments for sorted 1-D data are determined by the
    // midpoints between consecutive centroids.
    let mut boundaries = vec![0usize; k + 1];
    for _ in 0..64 {
        boundaries[0] = 0;
        boundaries[k] = n;
        for c in 1..k {
            let mid = (centroids[c - 1] + centroids[c]) / 2.0;
            boundaries[c] = values.partition_point(|&v| v < mid).max(boundaries[c - 1]);
        }
        let mut moved = false;
        for c in 0..k {
            let (lo, hi) = (boundaries[c], boundaries[c + 1]);
            if lo >= hi {
                continue; // empty cluster keeps its centroid
            }
            let mean = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            if (mean - centroids[c]).abs() > 1e-12 {
                centroids[c] = mean;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    boundaries[1..k]
        .iter()
        .filter(|&&i| i > 0 && i < n && values[i] > values[i - 1])
        .map(|&i| (values[i - 1] + values[i]) / 2.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_clusters() {
        let values = [0.1, 0.12, 0.14, 0.8, 0.82, 0.84];
        let e = split(&values, 2);
        assert_eq!(e.len(), 1);
        assert!(e[0] > 0.14 && e[0] < 0.8);
    }

    #[test]
    fn matches_jenks_on_well_separated_data() {
        // k-means and Jenks share the SSE criterion; on clearly separated
        // clusters both must find the same gaps.
        let mut values = Vec::new();
        for c in [0.15, 0.55, 0.9] {
            for i in 0..8 {
                values.push(c + i as f64 * 0.002);
            }
        }
        values.sort_by(f64::total_cmp);
        let km = split(&values, 3);
        let jk = super::super::jenks::split(&values, 3);
        assert_eq!(km.len(), jk.len());
        for (a, b) in km.iter().zip(jk.iter()) {
            assert!((a - b).abs() < 1e-9, "km={km:?} jenks={jk:?}");
        }
    }

    #[test]
    fn constant_data_yields_no_cuts() {
        assert!(split(&[0.3; 10], 3).is_empty());
    }

    #[test]
    fn handles_k_exceeding_distinct_values() {
        let values = [0.2, 0.2, 0.2, 0.9, 0.9];
        let e = split(&values, 4);
        assert_eq!(e.len(), 1);
        assert!(e[0] > 0.2 && e[0] < 0.9);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(split(&[], 2).is_empty());
        assert!(split(&[0.5], 2).is_empty());
    }
}
