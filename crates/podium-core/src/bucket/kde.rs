//! Kernel-density-estimation valley splitting.
//!
//! Estimates the score density with a Gaussian kernel (Silverman's
//! rule-of-thumb bandwidth), evaluates it on a fixed grid over `[0, 1]`, and
//! cuts at the deepest local minima ("valleys") between density modes. If
//! fewer than `k - 1` valleys exist the method returns fewer cuts — the
//! density simply does not support more buckets.

const GRID: usize = 256;

/// Returns up to `k - 1` interior edges at density valleys.
///
/// `values` must be sorted ascending and lie in `[0, 1]`.
pub fn split(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    if k <= 1 || n < 2 {
        return Vec::new();
    }

    // Silverman bandwidth: 0.9 * min(sd, IQR/1.34) * n^(-1/5).
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    let iqr = values[(3 * n) / 4].max(values[n - 1]) - values[n / 4];
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    if spread <= 0.0 {
        return Vec::new(); // constant data: single mode, no valleys
    }
    let h = 0.9 * spread * (n as f64).powf(-0.2);

    // Density on the grid.
    let mut density = [0.0f64; GRID];
    for (g, d) in density.iter_mut().enumerate() {
        let x = g as f64 / (GRID - 1) as f64;
        *d = values
            .iter()
            .map(|&v| {
                let z = (x - v) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>();
    }

    // Local minima strictly between local maxima, scored by depth
    // (min of the two neighbouring peaks minus valley height).
    let mut valleys: Vec<(f64, usize)> = Vec::new(); // (depth, grid index)
    let mut g = 1;
    while g + 1 < GRID {
        if density[g] < density[g - 1] && density[g] <= density[g + 1] {
            // Valley depth relative to the highest peak on each side.
            let left_peak = density[..=g].iter().cloned().fold(f64::MIN, f64::max);
            let right_peak = density[g..].iter().cloned().fold(f64::MIN, f64::max);
            let depth = left_peak.min(right_peak) - density[g];
            if depth > 1e-9 {
                valleys.push((depth, g));
            }
        }
        g += 1;
    }

    // Keep the k-1 deepest valleys, restore positional order.
    valleys.sort_by(|a, b| b.0.total_cmp(&a.0));
    valleys.truncate(k - 1);
    valleys.sort_by_key(|&(_, g)| g);
    valleys
        .into_iter()
        .map(|(_, g)| g as f64 / (GRID - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_valley_between_two_modes() {
        let mut values = Vec::new();
        for i in 0..40 {
            values.push(0.15 + (i % 10) as f64 * 0.004);
            values.push(0.85 + (i % 10) as f64 * 0.004);
        }
        values.sort_by(f64::total_cmp);
        let e = split(&values, 2);
        assert_eq!(e.len(), 1, "edges {e:?}");
        assert!(e[0] > 0.25 && e[0] < 0.8, "valley at {e:?}");
    }

    #[test]
    fn unimodal_data_yields_no_cut() {
        let values: Vec<f64> = (0..60).map(|i| 0.5 + (i as f64 - 30.0) * 0.002).collect();
        let e = split(&values, 3);
        assert!(
            e.len() <= 1,
            "nearly uniform hump should have few valleys: {e:?}"
        );
    }

    #[test]
    fn constant_data_yields_no_cuts() {
        assert!(split(&[0.6; 30], 3).is_empty());
    }

    #[test]
    fn respects_requested_bucket_count() {
        // Four separated modes, but only k=2 requested -> at most 1 cut.
        let mut values = Vec::new();
        for c in [0.1, 0.37, 0.63, 0.9] {
            for i in 0..15 {
                values.push(c + i as f64 * 0.002);
            }
        }
        values.sort_by(f64::total_cmp);
        assert!(split(&values, 2).len() <= 1);
        assert!(split(&values, 4).len() <= 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(split(&[], 3).is_empty());
        assert!(split(&[0.1], 3).is_empty());
    }
}
