//! Group weight and coverage functions (Definitions 3.6 and 3.7).
//!
//! Weights prioritize groups; coverage sizes say how many representatives a
//! group needs before it counts as covered. The paper proposes three
//! general-purpose weight functions — Iden, LBS, EBS — and two coverage
//! functions — Single and Prop — all implemented here. EBS weights are
//! exact [`EbsValue`]s rather than floats (see [`crate::score`]).

use serde::{Deserialize, Serialize};

use crate::group::GroupSet;
use crate::score::EbsValue;

/// Weight function `wei : 𝒢 → ℝ⁺` choices (Definition 3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightScheme {
    /// *Iden*: `wei(G) = 1`. Maximizes the *number* of covered groups; tends
    /// to select eccentric users (Example 3.8).
    Identical,
    /// *LBS* (Linearly By Size): `wei(G) = |G|`. Roughly maximizes groups
    /// represented *per user*; the paper's experimental default.
    LinearBySize,
}

impl WeightScheme {
    /// Computes the weight vector, indexed by group id.
    pub fn weights(self, groups: &GroupSet) -> Vec<f64> {
        match self {
            WeightScheme::Identical => vec![1.0; groups.len()],
            WeightScheme::LinearBySize => groups.iter().map(|(_, g)| g.size() as f64).collect(),
        }
    }
}

/// *EBS* (Enforced By Size) weights: `wei(G) = (B+1)^ord(G)` where `ord`
/// orders groups from smallest to largest (ties broken deterministically by
/// group id). Covering a larger group is then *always* preferred over any
/// combination of smaller ones.
///
/// Returned as exact [`EbsValue`]s; the `(B+1)` base never materializes
/// because base-`(B+1)` digit arithmetic needs no carries (coefficients are
/// bounded by `cov(G) ≤ B`).
pub fn ebs_weights(groups: &GroupSet) -> Vec<EbsValue> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&i| {
        (
            groups
                .group(crate::ids::GroupId::from_index(i))
                .map(|g| g.size())
                .unwrap_or(0),
            i,
        )
    });
    let mut weights = vec![EbsValue::zero_value(); groups.len()];
    for (ord, &gidx) in order.iter().enumerate() {
        weights[gidx] = EbsValue::power(ord as u32);
    }
    weights
}

impl EbsValue {
    /// Helper alias for the additive identity (avoids importing the trait at
    /// call sites that only build weight vectors).
    pub fn zero_value() -> Self {
        <EbsValue as crate::score::ScoreValue>::zero()
    }
}

/// Multiplies each weight by a random factor in `[1 − amplitude, 1 + amplitude]`
/// (clamped to stay positive) — the §10 future-work direction of "adding
/// noise to group weights" to randomize the otherwise deterministic
/// selection. The perturbation preserves positivity, so all of Proposition
/// 4.4's guarantees (and the greedy bound) continue to hold for the
/// perturbed instance. Deterministic for a fixed seed (splitmix64 stream).
pub fn noisy_weights(base: &[f64], amplitude: f64, seed: u64) -> Vec<f64> {
    let amplitude = amplitude.clamp(0.0, 0.99);
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    base.iter()
        .map(|&w| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            w * (1.0 - amplitude + 2.0 * amplitude * u)
        })
        .collect()
}

/// Coverage function `cov : 𝒢 → ℕ` choices (Definition 3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CovScheme {
    /// *Single*: `cov(G) = 1` — one representative covers a group; the most
    /// "diverse" choice and the paper's experimental default.
    Single,
    /// *Prop*: `cov(G) = max{⌊B · |G| / |𝒰|⌋, 1}` — representation
    /// proportional to the group's share of the population.
    Proportional,
}

impl CovScheme {
    /// Computes the coverage vector for budget `b`, indexed by group id.
    pub fn cov(self, groups: &GroupSet, b: usize) -> Vec<u32> {
        match self {
            CovScheme::Single => vec![1; groups.len()],
            CovScheme::Proportional => {
                let n = groups.user_count().max(1);
                groups
                    .iter()
                    .map(|(_, g)| {
                        let prop = (b * g.size()) / n;
                        (prop.max(1)) as u32
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GroupId, UserId};
    use crate::score::ScoreValue;

    fn three_groups() -> GroupSet {
        // sizes 2, 1, 3 over 4 users
        GroupSet::from_memberships(
            4,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(2)],
                vec![UserId(0), UserId(2), UserId(3)],
            ],
        )
    }

    #[test]
    fn iden_weights_are_unit() {
        let g = three_groups();
        assert_eq!(WeightScheme::Identical.weights(&g), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn lbs_weights_are_sizes() {
        let g = three_groups();
        assert_eq!(WeightScheme::LinearBySize.weights(&g), vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn ebs_orders_smallest_first() {
        let g = three_groups();
        let w = ebs_weights(&g);
        // sizes 2,1,3 -> ord: G1(size1)=0, G0(size2)=1, G2(size3)=2
        assert_eq!(w[1], EbsValue::power(0));
        assert_eq!(w[0], EbsValue::power(1));
        assert_eq!(w[2], EbsValue::power(2));
        // Larger group always outweighs all smaller ones combined.
        let mut small_sum = w[0].clone();
        small_sum.add_assign(&w[1]);
        assert!(w[2] > small_sum);
    }

    #[test]
    fn ebs_ties_broken_by_group_id() {
        let g = GroupSet::from_memberships(2, vec![vec![UserId(0)], vec![UserId(1)]]);
        let w = ebs_weights(&g);
        assert_eq!(w[0], EbsValue::power(0));
        assert_eq!(w[1], EbsValue::power(1));
    }

    #[test]
    fn single_cov_is_one() {
        let g = three_groups();
        assert_eq!(CovScheme::Single.cov(&g, 8), vec![1, 1, 1]);
    }

    #[test]
    fn proportional_cov_follows_definition() {
        let g = three_groups(); // |U| = 4, sizes 2,1,3
                                // B=4: floor(4*2/4)=2, floor(4*1/4)=1, floor(4*3/4)=3
        assert_eq!(CovScheme::Proportional.cov(&g, 4), vec![2, 1, 3]);
        // B=2: floor(2*2/4)=1, floor(2*1/4)=0 -> clamped to 1, floor(2*3/4)=1
        assert_eq!(CovScheme::Proportional.cov(&g, 2), vec![1, 1, 1]);
    }

    #[test]
    fn proportional_cov_never_zero() {
        let g = three_groups();
        for b in 1..10 {
            assert!(CovScheme::Proportional.cov(&g, b).iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn group_id_helper_resolves() {
        let g = three_groups();
        assert_eq!(g.group(GroupId(2)).unwrap().size(), 3);
    }

    #[test]
    fn noisy_weights_stay_positive_and_bounded() {
        let base = vec![1.0, 5.0, 100.0];
        let noisy = noisy_weights(&base, 0.3, 42);
        for (b, n) in base.iter().zip(&noisy) {
            assert!(*n > 0.0);
            assert!(*n >= b * 0.7 - 1e-12 && *n <= b * 1.3 + 1e-12, "{b} -> {n}");
        }
    }

    #[test]
    fn noisy_weights_deterministic_per_seed() {
        let base = vec![2.0; 16];
        assert_eq!(noisy_weights(&base, 0.5, 7), noisy_weights(&base, 0.5, 7));
        assert_ne!(noisy_weights(&base, 0.5, 7), noisy_weights(&base, 0.5, 8));
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let base = vec![1.0, 2.0, 3.0];
        assert_eq!(noisy_weights(&base, 0.0, 1), base);
    }

    #[test]
    fn amplitude_clamped_below_one() {
        let base = vec![1.0; 100];
        let noisy = noisy_weights(&base, 5.0, 3);
        assert!(noisy.iter().all(|&w| w > 0.0), "positivity preserved");
    }
}
