//! Simple and complex user groups (paper §3.2, Definitions 3.4–3.5).
//!
//! A *simple group* `G_{p,b}` is the set of users whose score for property
//! `p` falls in bucket `b`. A [`GroupSet`] materializes all non-empty simple
//! groups of a repository under a given bucketing, together with the
//! bidirectional user ↔ group links required by Algorithm 1's data
//! structures (§4, "Data Structures").
//!
//! Complex groups — intersections and unions of simple groups — are modeled
//! by [`GroupExpr`] and can either be evaluated on the fly (used by the
//! intersected-property-coverage metric, §8.2) or materialized into the set.

use serde::{Deserialize, Serialize};

use crate::bucket::{Bucket, PropertyBuckets};
use crate::error::{CoreError, Result};
use crate::ids::{BucketIdx, GroupId, PropertyId, UserId};
use crate::profile::UserRepository;

/// How a group came to be: a simple property × bucket group, or a
/// materialized complex group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupKind {
    /// `G_{p,b}`: users whose score for `property` lies in `bucket`.
    Simple {
        /// The defining property.
        property: PropertyId,
        /// Index of the bucket within the property's bucket set.
        bucket: BucketIdx,
    },
    /// A materialized complex group with a free-form label.
    Complex {
        /// Human-readable description, e.g. `"Tokyo residents ∩ Mexican lovers"`.
        label: String,
    },
}

/// A materialized user group: definition plus sorted member list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleGroup {
    /// What defines the group.
    pub kind: GroupKind,
    /// Members, sorted by [`UserId`].
    pub members: Vec<UserId>,
}

impl SimpleGroup {
    /// Group size `|G|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether user `u` belongs to the group (binary search).
    pub fn contains(&self, u: UserId) -> bool {
        self.members.binary_search(&u).is_ok()
    }
}

/// The set of groups `𝒢` over a repository, with bidirectional links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroupSet {
    groups: Vec<SimpleGroup>,
    /// For each user, the (sorted) list of groups they belong to — the
    /// reverse links of §4's data-structure description.
    user_groups: Vec<Vec<GroupId>>,
    /// Copy of the bucket definitions for label rendering.
    buckets: PropertyBuckets,
}

impl GroupSet {
    /// Materializes all non-empty simple groups `G_{p,b}` of `repo` under the
    /// bucketing `buckets` (the paper's default `𝒢`, §3.2).
    pub fn build(repo: &UserRepository, buckets: &PropertyBuckets) -> Self {
        Self::build_filtered(repo, buckets, &|_| true)
    }

    /// Like [`GroupSet::build`], but only over properties accepted by
    /// `filter`. This backs the §7 "initial diversification configurations"
    /// feature — e.g. the UI's *Summer Pavilion* configuration "only
    /// considers properties related to a restaurant in that name".
    pub fn build_filtered(
        repo: &UserRepository,
        buckets: &PropertyBuckets,
        filter: &dyn Fn(PropertyId) -> bool,
    ) -> Self {
        let mut groups: Vec<SimpleGroup> = Vec::new();
        let mut user_groups: Vec<Vec<GroupId>> = vec![Vec::new(); repo.user_count()];

        for p in 0..repo.property_count() {
            let pid = PropertyId::from_index(p);
            if !filter(pid) {
                continue;
            }
            let set = buckets.of(pid);
            if set.is_empty() {
                continue;
            }
            // One membership list per bucket of this property.
            let mut memberships: Vec<Vec<UserId>> = vec![Vec::new(); set.len()];
            for (u, s) in repo.property_values(pid) {
                if let Some(b) = set.bucket_of(s) {
                    memberships[b.index()].push(u);
                }
            }
            for (b, members) in memberships.into_iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let gid = GroupId::from_index(groups.len());
                for &u in &members {
                    user_groups[u.index()].push(gid);
                }
                groups.push(SimpleGroup {
                    kind: GroupKind::Simple {
                        property: pid,
                        bucket: BucketIdx::from_index(b),
                    },
                    members,
                });
            }
        }
        Self {
            groups,
            user_groups,
            buckets: buckets.clone(),
        }
    }

    /// Builds a group set from explicit `(property, bucket, members)`
    /// triples plus the bucket definitions — the constructor used by
    /// [`crate::incremental::IncrementalGroups::snapshot`]. Triples must be
    /// in ascending `(property, bucket)` order with non-empty, sorted,
    /// deduplicated member lists (matching [`GroupSet::build`]'s output
    /// order).
    pub fn from_simple_memberships(
        user_count: usize,
        triples: Vec<(PropertyId, BucketIdx, Vec<UserId>)>,
        buckets: PropertyBuckets,
    ) -> Self {
        let mut groups = Vec::with_capacity(triples.len());
        let mut user_groups: Vec<Vec<GroupId>> = vec![Vec::new(); user_count];
        for (property, bucket, members) in triples {
            debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            debug_assert!(!members.is_empty(), "empty groups are dropped");
            let gid = GroupId::from_index(groups.len());
            for &u in &members {
                user_groups[u.index()].push(gid);
            }
            groups.push(SimpleGroup {
                kind: GroupKind::Simple { property, bucket },
                members,
            });
        }
        Self {
            groups,
            user_groups,
            buckets,
        }
    }

    /// In-place counterpart of [`GroupSet::from_simple_memberships`]:
    /// rebuilds `self` from borrowed `(property, bucket, members)` triples,
    /// reusing the existing `groups` and `user_groups` allocations. The
    /// same preconditions apply — ascending `(property, bucket)` order,
    /// non-empty sorted deduplicated member lists.
    ///
    /// This is the allocation-churn fix for writers that materialize a
    /// fresh snapshot per published epoch
    /// ([`crate::incremental::IncrementalGroups::snapshot_into`]): member
    /// vectors and reverse-link vectors retain their capacity across
    /// epochs instead of being reallocated from scratch.
    pub fn assign_simple_memberships<'m>(
        &mut self,
        user_count: usize,
        triples: impl Iterator<Item = (PropertyId, BucketIdx, &'m [UserId])>,
        buckets: &PropertyBuckets,
    ) {
        self.buckets.clone_from(buckets);
        self.user_groups.truncate(user_count);
        for links in &mut self.user_groups {
            links.clear();
        }
        self.user_groups.resize_with(user_count, Vec::new);
        let mut count = 0usize;
        for (property, bucket, members) in triples {
            debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            debug_assert!(!members.is_empty(), "empty groups are dropped");
            let gid = GroupId::from_index(count);
            for &u in members {
                self.user_groups[u.index()].push(gid);
            }
            if let Some(slot) = self.groups.get_mut(count) {
                slot.kind = GroupKind::Simple { property, bucket };
                slot.members.clear();
                slot.members.extend_from_slice(members);
            } else {
                self.groups.push(SimpleGroup {
                    kind: GroupKind::Simple { property, bucket },
                    members: members.to_vec(),
                });
            }
            count += 1;
        }
        self.groups.truncate(count);
    }

    /// Patches `self` — a group set materialized from an **earlier epoch
    /// of the same published group universe** — up to the current state:
    /// `dirty` replaces the member lists of the named group indices and
    /// `relink` replaces the reverse-link rows of the affected users.
    /// Everything else (group count, kinds, ordering, unaffected rows,
    /// bucket definitions) is untouched, which is exactly what makes this
    /// O(|changed|) where [`GroupSet::assign_simple_memberships`] is
    /// O(|edges|).
    ///
    /// The caller ([`crate::incremental::IncrementalGroups::patch_groups_into`])
    /// guarantees the universe match; indices out of range panic.
    pub fn patch_simple_memberships<'m>(
        &mut self,
        dirty: impl Iterator<Item = (usize, &'m [UserId])>,
        relink: impl Iterator<Item = (UserId, Vec<GroupId>)>,
    ) {
        for (g, members) in dirty {
            debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            debug_assert!(!members.is_empty(), "empty groups are dropped");
            let slot = &mut self.groups[g].members;
            slot.clear();
            slot.extend_from_slice(members);
        }
        for (u, links) in relink {
            debug_assert!(links.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            let row = &mut self.user_groups[u.index()];
            row.clear();
            row.extend_from_slice(&links);
        }
    }

    /// Builds a group set directly from member lists (tests, synthetic
    /// instances such as the Set-Cover reduction of Proposition 4.1).
    pub fn from_memberships(user_count: usize, memberships: Vec<Vec<UserId>>) -> Self {
        let mut groups = Vec::with_capacity(memberships.len());
        let mut user_groups: Vec<Vec<GroupId>> = vec![Vec::new(); user_count];
        for (i, mut members) in memberships.into_iter().enumerate() {
            members.sort();
            members.dedup();
            let gid = GroupId::from_index(i);
            for &u in &members {
                user_groups[u.index()].push(gid);
            }
            groups.push(SimpleGroup {
                kind: GroupKind::Complex {
                    label: format!("G{i}"),
                },
                members,
            });
        }
        Self {
            groups,
            user_groups,
            buckets: PropertyBuckets::default(),
        }
    }

    /// Number of groups `|𝒢|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of users the set was built over.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.user_groups.len()
    }

    /// Borrows a group.
    pub fn group(&self, g: GroupId) -> Result<&SimpleGroup> {
        self.groups.get(g.index()).ok_or(CoreError::UnknownGroup(g))
    }

    /// Iterates over `(id, group)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &SimpleGroup)> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (GroupId::from_index(i), g))
    }

    /// All group ids.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = GroupId> {
        (0..self.groups.len()).map(GroupId::from_index)
    }

    /// The groups user `u` belongs to (the forward links of §4).
    pub fn groups_of(&self, u: UserId) -> &[GroupId] {
        self.user_groups
            .get(u.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// `max_G |G|` — appears in the complexity bound of Proposition 4.4.
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(SimpleGroup::size).max().unwrap_or(0)
    }

    /// `max_u |{G | u ∈ G}|` — the other factor of the complexity bound.
    pub fn max_groups_per_user(&self) -> usize {
        self.user_groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The bucket that defines simple group `g`, if it is simple.
    pub fn bucket_of_group(&self, g: GroupId) -> Option<&Bucket> {
        match &self.groups.get(g.index())?.kind {
            GroupKind::Simple { property, bucket } => self.buckets.of(*property).bucket(*bucket),
            GroupKind::Complex { .. } => None,
        }
    }

    /// A human-readable label for group `g`, combining the property label and
    /// bucket label as §5 prescribes (e.g. `"high avgRating Mexican"`).
    pub fn label(&self, g: GroupId, repo: &UserRepository) -> String {
        match self.groups.get(g.index()).map(|gr| &gr.kind) {
            Some(GroupKind::Simple { property, bucket }) => {
                let prop = repo
                    .property_label(*property)
                    .unwrap_or("<unknown property>");
                match self.buckets.of(*property).bucket(*bucket) {
                    Some(b) if b.label.is_empty() => prop.to_owned(),
                    Some(b) => format!("{} {}", b.label, prop),
                    None => prop.to_owned(),
                }
            }
            Some(GroupKind::Complex { label }) => label.clone(),
            None => format!("<unknown group {g}>"),
        }
    }

    /// Materializes a complex group from an expression and appends it,
    /// returning its id. The expression is evaluated against the *current*
    /// groups of the set.
    pub fn add_complex(&mut self, label: impl Into<String>, expr: &GroupExpr) -> Result<GroupId> {
        let members = expr.evaluate(self)?;
        let gid = GroupId::from_index(self.groups.len());
        for &u in &members {
            self.user_groups[u.index()].push(gid);
        }
        self.groups.push(SimpleGroup {
            kind: GroupKind::Complex {
                label: label.into(),
            },
            members,
        });
        Ok(gid)
    }

    /// Returns a pruned copy keeping only groups with at least `min_size`
    /// members, and — if `max_groups` is set — only the largest `max_groups`
    /// of those (ties broken by group id). Group ids are re-assigned densely
    /// in the *original* id order of the survivors.
    ///
    /// This is the practical §2 dimensionality lever: dropping near-empty
    /// niche groups shrinks `|𝒢|` (and thus the greedy's update cost)
    /// without materially changing which users cover the population.
    pub fn prune(&self, min_size: usize, max_groups: Option<usize>) -> GroupSet {
        let mut keep: Vec<GroupId> = self
            .iter()
            .filter(|(_, g)| g.size() >= min_size)
            .map(|(id, _)| id)
            .collect();
        if let Some(cap) = max_groups {
            if keep.len() > cap {
                keep.sort_by_key(|&g| (std::cmp::Reverse(self.groups[g.index()].size()), g));
                keep.truncate(cap);
                keep.sort();
            }
        }
        let mut groups = Vec::with_capacity(keep.len());
        let mut user_groups: Vec<Vec<GroupId>> = vec![Vec::new(); self.user_count()];
        for (new_idx, &old) in keep.iter().enumerate() {
            let g = &self.groups[old.index()];
            let gid = GroupId::from_index(new_idx);
            for &u in &g.members {
                user_groups[u.index()].push(gid);
            }
            groups.push(g.clone());
        }
        GroupSet {
            groups,
            user_groups,
            buckets: self.buckets.clone(),
        }
    }

    /// Finds the simple group for `(property, bucket)` if it is non-empty.
    pub fn find_simple(&self, property: PropertyId, bucket: BucketIdx) -> Option<GroupId> {
        self.iter()
            .find(|(_, g)| {
                matches!(g.kind, GroupKind::Simple { property: p, bucket: b }
                    if p == property && b == bucket)
            })
            .map(|(id, _)| id)
    }

    /// All simple groups defined over `property` (e.g. all buckets of
    /// `β(livesIn …)`), in bucket order.
    pub fn groups_of_property(&self, property: PropertyId) -> Vec<GroupId> {
        self.iter()
            .filter(
                |(_, g)| matches!(g.kind, GroupKind::Simple { property: p, .. } if p == property),
            )
            .map(|(id, _)| id)
            .collect()
    }
}

/// A complex-group expression over existing groups (§3.2: "Simple user
/// groups can be used to define more complex ones as the intersection or
/// union of a few simple groups").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupExpr {
    /// Reference to an existing group.
    Group(GroupId),
    /// Intersection of sub-expressions.
    And(Vec<GroupExpr>),
    /// Union of sub-expressions.
    Or(Vec<GroupExpr>),
}

impl GroupExpr {
    /// Evaluates to a sorted member list.
    pub fn evaluate(&self, set: &GroupSet) -> Result<Vec<UserId>> {
        match self {
            GroupExpr::Group(g) => Ok(set.group(*g)?.members.clone()),
            GroupExpr::And(parts) => {
                let mut iter = parts.iter();
                let mut acc = match iter.next() {
                    Some(e) => e.evaluate(set)?,
                    None => return Ok(Vec::new()),
                };
                for e in iter {
                    let other = e.evaluate(set)?;
                    acc = intersect_sorted(&acc, &other);
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(acc)
            }
            GroupExpr::Or(parts) => {
                let mut acc: Vec<UserId> = Vec::new();
                for e in parts {
                    acc.extend(e.evaluate(set)?);
                }
                acc.sort();
                acc.dedup();
                Ok(acc)
            }
        }
    }
}

/// Intersection of two sorted, deduplicated id lists.
pub fn intersect_sorted(a: &[UserId], b: &[UserId]) -> Vec<UserId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketingConfig;

    /// Builds the repository of the paper's Table 2 (used across tests).
    fn table2_like() -> (UserRepository, GroupSet) {
        let mut repo = UserRepository::new();
        let users: Vec<UserId> = ["Alice", "Bob", "Carol", "David", "Eve"]
            .iter()
            .map(|n| repo.add_user(*n))
            .collect();
        let lives_tokyo = repo.intern_property("livesIn Tokyo");
        let avg_mex = repo.intern_property("avgRating Mexican");
        repo.set_score(users[0], lives_tokyo, 1.0).unwrap();
        repo.set_score(users[3], lives_tokyo, 1.0).unwrap();
        repo.set_score(users[0], avg_mex, 0.95).unwrap();
        repo.set_score(users[1], avg_mex, 0.3).unwrap();
        repo.set_score(users[3], avg_mex, 0.75).unwrap();
        repo.set_score(users[4], avg_mex, 0.8).unwrap();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        (repo, groups)
    }

    #[test]
    fn builds_example_35_groups() {
        let (repo, groups) = table2_like();
        // Expected: livesIn Tokyo {Alice, David}; avgRating Mexican low {Bob};
        // avgRating Mexican high {Alice, David, Eve}.
        assert_eq!(groups.len(), 3);
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let tokyo_groups = groups.groups_of_property(tokyo);
        assert_eq!(tokyo_groups.len(), 1);
        let g = groups.group(tokyo_groups[0]).unwrap();
        assert_eq!(g.members, vec![UserId(0), UserId(3)]);

        let mex = repo.property_id("avgRating Mexican").unwrap();
        let mex_groups = groups.groups_of_property(mex);
        assert_eq!(mex_groups.len(), 2);
        let sizes: Vec<usize> = mex_groups
            .iter()
            .map(|&g| groups.group(g).unwrap().size())
            .collect();
        assert_eq!(sizes, vec![1, 3], "low {{Bob}}, high {{Alice, David, Eve}}");
    }

    #[test]
    fn bidirectional_links_consistent() {
        let (_, groups) = table2_like();
        for (gid, g) in groups.iter() {
            for &u in &g.members {
                assert!(
                    groups.groups_of(u).contains(&gid),
                    "reverse link missing for {u} in {gid}"
                );
            }
        }
        for u in 0..groups.user_count() {
            let uid = UserId::from_index(u);
            for &gid in groups.groups_of(uid) {
                assert!(groups.group(gid).unwrap().contains(uid));
            }
        }
    }

    #[test]
    fn labels_combine_bucket_and_property() {
        let (repo, groups) = table2_like();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let labels: Vec<String> = groups
            .groups_of_property(mex)
            .into_iter()
            .map(|g| groups.label(g, &repo))
            .collect();
        assert!(labels.contains(&"low avgRating Mexican".to_owned()));
        assert!(labels.contains(&"high avgRating Mexican".to_owned()));
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let tg = groups.groups_of_property(tokyo)[0];
        assert_eq!(
            groups.label(tg, &repo),
            "livesIn Tokyo",
            "Boolean bucket label is empty (§5)"
        );
    }

    #[test]
    fn complex_group_example_35() {
        // "Tokyo residents who are also Mexican food lovers" = {Alice, David}.
        let (repo, mut groups) = table2_like();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let tg = groups.groups_of_property(tokyo)[0];
        let high_mex = groups
            .groups_of_property(mex)
            .into_iter()
            .find(|&g| groups.group(g).unwrap().size() == 3)
            .unwrap();
        let expr = GroupExpr::And(vec![GroupExpr::Group(tg), GroupExpr::Group(high_mex)]);
        let gid = groups
            .add_complex("Tokyo residents ∩ Mexican food lovers", &expr)
            .unwrap();
        let g = groups.group(gid).unwrap();
        assert_eq!(g.members, vec![UserId(0), UserId(3)]);
        // Reverse links updated.
        assert!(groups.groups_of(UserId(0)).contains(&gid));
    }

    #[test]
    fn or_expression_unions() {
        let (_, groups) = table2_like();
        let expr = GroupExpr::Or(vec![
            GroupExpr::Group(GroupId(0)),
            GroupExpr::Group(GroupId(1)),
            GroupExpr::Group(GroupId(2)),
        ]);
        let members = expr.evaluate(&groups).unwrap();
        // Union of all groups = everyone except Carol (no scored property).
        assert_eq!(members.len(), 4);
        assert!(!members.contains(&UserId(2)));
    }

    #[test]
    fn empty_and_expression() {
        let (_, groups) = table2_like();
        assert!(GroupExpr::And(vec![]).evaluate(&groups).unwrap().is_empty());
    }

    #[test]
    fn unknown_group_errors() {
        let (_, groups) = table2_like();
        assert!(matches!(
            groups.group(GroupId(99)),
            Err(CoreError::UnknownGroup(_))
        ));
        assert!(GroupExpr::Group(GroupId(99)).evaluate(&groups).is_err());
    }

    #[test]
    fn from_memberships_dedups_and_sorts() {
        let set = GroupSet::from_memberships(
            3,
            vec![vec![UserId(2), UserId(0), UserId(2)], vec![UserId(1)]],
        );
        assert_eq!(
            set.group(GroupId(0)).unwrap().members,
            vec![UserId(0), UserId(2)]
        );
        assert_eq!(set.max_group_size(), 2);
        assert_eq!(set.max_groups_per_user(), 1);
    }

    #[test]
    fn intersect_sorted_basics() {
        let a = vec![UserId(1), UserId(3), UserId(5)];
        let b = vec![UserId(2), UserId(3), UserId(5), UserId(7)];
        assert_eq!(intersect_sorted(&a, &b), vec![UserId(3), UserId(5)]);
        assert!(intersect_sorted(&a, &[]).is_empty());
    }

    #[test]
    fn stats_on_table2() {
        let (_, groups) = table2_like();
        assert_eq!(groups.max_group_size(), 3);
        assert_eq!(groups.max_groups_per_user(), 2); // Alice, David
    }

    #[test]
    fn prune_by_min_size() {
        let (_, groups) = table2_like();
        // Sizes: 2 (Tokyo), 1 (mex low), 3 (mex high).
        let pruned = groups.prune(2, None);
        assert_eq!(pruned.len(), 2);
        assert_eq!(pruned.max_group_size(), 3);
        // Reverse links rebuilt consistently.
        for (gid, g) in pruned.iter() {
            for &u in &g.members {
                assert!(pruned.groups_of(u).contains(&gid));
            }
        }
        // Bob (only in the size-1 group) now belongs to no group.
        assert!(pruned.groups_of(UserId(1)).is_empty());
    }

    #[test]
    fn prune_by_max_groups_keeps_largest() {
        let (_, groups) = table2_like();
        let pruned = groups.prune(0, Some(1));
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned.group(GroupId(0)).unwrap().size(), 3, "largest kept");
    }

    #[test]
    fn prune_noop_preserves_everything() {
        let (_, groups) = table2_like();
        let pruned = groups.prune(0, None);
        assert_eq!(pruned.len(), groups.len());
        for (gid, g) in groups.iter() {
            assert_eq!(pruned.group(gid).unwrap().members, g.members);
        }
    }
}
