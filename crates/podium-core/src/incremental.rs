//! Incremental group maintenance under profile updates.
//!
//! §9 positions Podium against survey design precisely because it "applies
//! to a given user repository as-is and may be easily executed multiple
//! times, e.g., to incorporate data updates". Rebuilding every group from
//! scratch after each profile change is wasteful when updates trickle in;
//! [`IncrementalGroups`] maintains the bucketed group structure under
//! point updates:
//!
//! * setting or changing a property score moves the user between that
//!   property's bucket groups in `O(log |G_b| + |G_b|)` (sorted-vec
//!   remove/insert);
//! * removing a property score removes the membership;
//! * `snapshot()` materializes a plain [`GroupSet`] (dropping empty
//!   groups) for the selection algorithms.
//!
//! Bucket boundaries themselves stay fixed between re-fits — exactly the
//! prototype's behavior, where the Grouping Module runs "in an offline
//! process" (§7) and selection queries arrive online. Re-fit (re-bucket)
//! when score distributions drift materially.

use crate::bucket::PropertyBuckets;
use crate::engine::CsrGraph;
use crate::group::GroupSet;
use crate::ids::{BucketIdx, PropertyId, UserId};
use crate::profile::UserRepository;

/// Bucketed group structure maintained under point updates.
#[derive(Debug, Clone)]
pub struct IncrementalGroups {
    buckets: PropertyBuckets,
    /// `slots[p][b]` = sorted member list of `G_{p,b}` (possibly empty —
    /// unlike [`GroupSet`], empty slots persist so ids stay stable).
    slots: Vec<Vec<Vec<UserId>>>,
    /// Current bucket of each (user, property) membership:
    /// `current[u]` is a sorted list of `(property, bucket)`.
    current: Vec<Vec<(PropertyId, BucketIdx)>>,
    user_count: usize,
}

impl IncrementalGroups {
    /// Builds the structure from a repository and a fixed bucketing.
    pub fn build(repo: &UserRepository, buckets: &PropertyBuckets) -> Self {
        let mut slots: Vec<Vec<Vec<UserId>>> = (0..repo.property_count())
            .map(|p| vec![Vec::new(); buckets.of(PropertyId::from_index(p)).len()])
            .collect();
        let mut current: Vec<Vec<(PropertyId, BucketIdx)>> = vec![Vec::new(); repo.user_count()];
        for (u, profile) in repo.iter() {
            for (p, s) in profile.iter() {
                if let Some(b) = buckets.of(p).bucket_of(s) {
                    slots[p.index()][b.index()].push(u);
                    current[u.index()].push((p, b));
                }
            }
        }
        Self {
            buckets: buckets.clone(),
            slots,
            current,
            user_count: repo.user_count(),
        }
    }

    /// Number of users tracked.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Adds a new (empty-profile) user, returning their id.
    pub fn add_user(&mut self) -> UserId {
        let id = UserId::from_index(self.user_count);
        self.user_count += 1;
        self.current.push(Vec::new());
        id
    }

    /// Current members of `G_{p,b}` (sorted).
    pub fn members(&self, p: PropertyId, b: BucketIdx) -> &[UserId] {
        self.slots
            .get(p.index())
            .and_then(|s| s.get(b.index()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Applies a score update: `None` removes the property from the user's
    /// profile, `Some(score)` sets it. Returns the `(old, new)` bucket
    /// indices for the affected property, either of which may be `None`.
    ///
    /// # Panics
    /// Panics if `u` or `p` are out of range, or `score` is outside [0, 1].
    pub fn update_score(
        &mut self,
        u: UserId,
        p: PropertyId,
        score: Option<f64>,
    ) -> (Option<BucketIdx>, Option<BucketIdx>) {
        assert!(u.index() < self.user_count, "unknown user {u}");
        assert!(p.index() < self.slots.len(), "unknown property {p}");
        if let Some(s) = score {
            assert!(
                (0.0..=1.0).contains(&s) && s.is_finite(),
                "score out of range"
            );
        }
        let new_bucket = score.and_then(|s| self.buckets.of(p).bucket_of(s));

        // Locate and detach the old membership, if any.
        let memberships = &mut self.current[u.index()];
        let old_idx = memberships.iter().position(|&(q, _)| q == p);
        let old_bucket = old_idx.map(|i| memberships[i].1);
        if old_bucket == new_bucket {
            return (old_bucket, new_bucket); // no structural change
        }
        if let Some(i) = old_idx {
            let (_, b) = memberships.remove(i);
            let slot = &mut self.slots[p.index()][b.index()];
            if let Ok(pos) = slot.binary_search(&u) {
                slot.remove(pos);
            }
        }
        if let Some(b) = new_bucket {
            let slot = &mut self.slots[p.index()][b.index()];
            if let Err(pos) = slot.binary_search(&u) {
                slot.insert(pos, u);
            }
            self.current[u.index()].push((p, b));
        }
        (old_bucket, new_bucket)
    }

    /// Materializes a [`GroupSet`] of the current non-empty groups, ready
    /// for the selection algorithms. Group labeling and ordering match
    /// [`GroupSet::build`] on an equivalent repository.
    pub fn snapshot(&self) -> GroupSet {
        let mut triples = Vec::new();
        for (p, buckets) in self.slots.iter().enumerate() {
            for (b, members) in buckets.iter().enumerate() {
                if !members.is_empty() {
                    triples.push((
                        PropertyId::from_index(p),
                        BucketIdx::from_index(b),
                        members.clone(),
                    ));
                }
            }
        }
        GroupSet::from_simple_memberships(self.user_count, triples, self.buckets.clone())
    }

    /// In-place variant of [`IncrementalGroups::snapshot`]: rebuilds `out`
    /// from the current slots, reusing its member-vector and reverse-link
    /// allocations. A writer that publishes one snapshot per epoch calls
    /// this with the group set it is about to publish (or a recycled
    /// retired one) instead of paying a full from-scratch rebuild when only
    /// a few slots changed. The result compares group-for-group equal to
    /// what [`IncrementalGroups::snapshot`] returns.
    pub fn snapshot_into(&self, out: &mut GroupSet) {
        let triples = self.slots.iter().enumerate().flat_map(|(p, buckets)| {
            buckets
                .iter()
                .enumerate()
                .filter(|(_, members)| !members.is_empty())
                .map(move |(b, members)| {
                    (
                        PropertyId::from_index(p),
                        BucketIdx::from_index(b),
                        members.as_slice(),
                    )
                })
        });
        out.assign_simple_memberships(self.user_count, triples, &self.buckets);
    }

    /// Materializes the CSR adjacency of the current non-empty groups
    /// directly from the maintained slots — same group ordering as
    /// [`IncrementalGroups::snapshot`], without cloning the member lists
    /// into an intermediate [`GroupSet`]. Pair it with a snapshot taken at
    /// the same time when building a [`crate::engine::SelectionEngine`].
    pub fn snapshot_csr(&self) -> CsrGraph {
        let lists: Vec<&[UserId]> = self
            .slots
            .iter()
            .flat_map(|buckets| buckets.iter())
            .filter(|members| !members.is_empty())
            .map(Vec::as_slice)
            .collect();
        CsrGraph::from_member_lists(self.user_count, &lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketingConfig;

    fn setup() -> (UserRepository, PropertyBuckets, IncrementalGroups) {
        let repo = crate::testutil::table2();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let inc = IncrementalGroups::build(&repo, &buckets);
        (repo, buckets, inc)
    }

    /// Snapshot after building must equal a from-scratch GroupSet.
    fn assert_equivalent(
        inc: &IncrementalGroups,
        repo: &UserRepository,
        buckets: &PropertyBuckets,
    ) {
        let snapshot = inc.snapshot();
        let rebuilt = GroupSet::build(repo, buckets);
        assert_eq!(snapshot.len(), rebuilt.len(), "group counts");
        for ((ga, a), (gb, b)) in snapshot.iter().zip(rebuilt.iter()) {
            assert_eq!(a.members, b.members, "members of {ga} vs {gb}");
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn initial_snapshot_matches_group_set_build() {
        let (repo, buckets, inc) = setup();
        assert_equivalent(&inc, &repo, &buckets);
    }

    #[test]
    fn score_update_moves_user_between_buckets() {
        let (mut repo, buckets, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        // Bob's 0.3 ("low") becomes 0.9 ("high").
        let (old, new) = inc.update_score(bob, mex, Some(0.9));
        assert_ne!(old, new);
        repo.set_score(bob, mex, 0.9).unwrap();
        assert_equivalent(&inc, &repo, &buckets);
    }

    #[test]
    fn same_bucket_update_is_structural_noop() {
        let (repo, _, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let before = inc.snapshot();
        let (old, new) = inc.update_score(bob, mex, Some(0.35)); // still "low"
        assert_eq!(old, new);
        let after = inc.snapshot();
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn property_removal_and_fresh_insert() {
        let (repo, buckets, mut inc) = setup();
        let alice = repo.user_by_name("Alice").unwrap();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        inc.update_score(alice, tokyo, None);
        repo.profile(alice).unwrap(); // still exists
                                      // Mirror in the repo:
        let mut mirrored = repo.clone();
        {
            // remove via a fresh profile rebuild
            let mut p = mirrored.profile(alice).unwrap().clone();
            p.remove(tokyo);
            // UserRepository lacks direct profile replacement; emulate by
            // rebuilding a repo copy.
            let mut rebuilt = UserRepository::new();
            for q in 0..mirrored.property_count() {
                rebuilt
                    .intern_property(mirrored.property_label(PropertyId::from_index(q)).unwrap());
            }
            for (u, prof) in mirrored.iter() {
                let nu = rebuilt.add_user(mirrored.user_name(u).unwrap());
                let source = if u == alice { &p } else { prof };
                for (pid, s) in source.iter() {
                    rebuilt.set_score(nu, pid, s).unwrap();
                }
            }
            mirrored = rebuilt;
        }
        assert_equivalent(&inc, &mirrored, &buckets);

        // Fresh insert for a user who never had the property.
        let carol = repo.user_by_name("Carol").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(carol, mex, Some(0.7));
        let high = buckets.of(mex).bucket_of(0.7).unwrap();
        assert!(inc.members(mex, high).contains(&carol));
    }

    #[test]
    fn new_user_participates_after_updates() {
        let (repo, buckets, mut inc) = setup();
        let frank = inc.add_user();
        assert_eq!(frank.index(), 5);
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(frank, mex, Some(0.95));
        let high = buckets.of(mex).bucket_of(0.95).unwrap();
        assert!(inc.members(mex, high).contains(&frank));
        let snapshot = inc.snapshot();
        assert_eq!(snapshot.user_count(), 6);
        assert!(!snapshot.groups_of(frank).is_empty());
    }

    #[test]
    fn random_update_sequence_matches_rebuild() {
        // Fuzz: apply a deterministic pseudo-random sequence of updates to
        // both the incremental structure and a mirrored repository, then
        // compare snapshots.
        let (mut repo, buckets, mut inc) = setup();
        let props: Vec<PropertyId> = (0..repo.property_count())
            .map(PropertyId::from_index)
            .collect();
        let mut state = 0xFEED_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let u = UserId::from_index(next() % repo.user_count());
            let p = props[next() % props.len()];
            if next() % 5 == 0 {
                inc.update_score(u, p, None);
                // Mirror removal by rebuilding (repo lacks remove; emulate
                // through a scratch profile copy handled below).
                let mut rebuilt = UserRepository::new();
                for q in &props {
                    rebuilt.intern_property(repo.property_label(*q).unwrap());
                }
                for (uu, prof) in repo.iter() {
                    let nu = rebuilt.add_user(repo.user_name(uu).unwrap());
                    for (pid, s) in prof.iter() {
                        if uu == u && pid == p {
                            continue;
                        }
                        rebuilt.set_score(nu, pid, s).unwrap();
                    }
                }
                repo = rebuilt;
            } else {
                let s = (next() % 101) as f64 / 100.0;
                inc.update_score(u, p, Some(s));
                repo.set_score(u, p, s).unwrap();
            }
        }
        assert_equivalent(&inc, &repo, &buckets);
    }

    #[test]
    #[should_panic(expected = "score out of range")]
    fn invalid_score_panics() {
        let (_, _, mut inc) = setup();
        inc.update_score(UserId(0), PropertyId(0), Some(1.5));
    }

    /// `snapshot_into` must agree with `snapshot` both on a fresh target
    /// and when overwriting a stale, differently-shaped target.
    #[test]
    fn snapshot_into_matches_snapshot() {
        let (repo, _, mut inc) = setup();
        let assert_same = |inc: &IncrementalGroups, out: &GroupSet| {
            let fresh = inc.snapshot();
            assert_eq!(out.len(), fresh.len(), "group counts");
            assert_eq!(out.user_count(), fresh.user_count());
            for ((ga, a), (_, b)) in out.iter().zip(fresh.iter()) {
                assert_eq!(a.kind, b.kind, "kind of {ga}");
                assert_eq!(a.members, b.members, "members of {ga}");
            }
            for u in 0..fresh.user_count() {
                let u = UserId::from_index(u);
                assert_eq!(out.groups_of(u), fresh.groups_of(u), "links of {u}");
            }
        };

        let mut out = GroupSet::default();
        inc.snapshot_into(&mut out);
        assert_same(&inc, &out);

        // Mutate: move Bob between buckets, add a user, drop a score, and
        // reuse the previously-populated target.
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(bob, mex, Some(0.9));
        let alice = repo.user_by_name("Alice").unwrap();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        inc.update_score(alice, tokyo, None);
        let frank = inc.add_user();
        inc.update_score(frank, mex, Some(0.15));
        inc.snapshot_into(&mut out);
        assert_same(&inc, &out);

        // Shrink back below the reused target's size.
        inc.update_score(frank, mex, None);
        inc.update_score(bob, mex, None);
        inc.snapshot_into(&mut out);
        assert_same(&inc, &out);
    }

    #[test]
    fn snapshot_csr_matches_snapshot_group_set() {
        let (repo, _, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(bob, mex, Some(0.9));
        let frank = inc.add_user();
        inc.update_score(frank, mex, Some(0.2));
        let direct = inc.snapshot_csr();
        let via_set = CsrGraph::from_group_set(&inc.snapshot());
        assert_eq!(direct, via_set);
    }
}
