//! Incremental group maintenance under profile updates.
//!
//! §9 positions Podium against survey design precisely because it "applies
//! to a given user repository as-is and may be easily executed multiple
//! times, e.g., to incorporate data updates". Rebuilding every group from
//! scratch after each profile change is wasteful when updates trickle in;
//! [`IncrementalGroups`] maintains the bucketed group structure under
//! point updates:
//!
//! * setting or changing a property score moves the user between that
//!   property's bucket groups in `O(log |G_b| + |G_b|)` (sorted-vec
//!   remove/insert);
//! * removing a property score removes the membership;
//! * `snapshot()` materializes a plain [`GroupSet`] (dropping empty
//!   groups) for the selection algorithms.
//!
//! Bucket boundaries themselves stay fixed between re-fits — exactly the
//! prototype's behavior, where the Grouping Module runs "in an offline
//! process" (§7) and selection queries arrive online. Re-fit (re-bucket)
//! when score distributions drift materially.

use crate::bucket::PropertyBuckets;
use crate::engine::CsrGraph;
use crate::group::{GroupKind, GroupSet};
use crate::ids::{BucketIdx, GroupId, PropertyId, UserId};
use crate::profile::UserRepository;

/// The structural changes accumulated since the last
/// [`IncrementalGroups::take_delta`] — the *profile delta* a publish
/// carries so the serving layer can patch the previous epoch's CSR and
/// invalidate memoized selections per-group instead of globally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochDelta {
    /// Users whose group memberships changed, ascending.
    changed_users: Vec<UserId>,
    /// `(property, bucket)` slots whose member lists changed, ascending.
    dirty_slots: Vec<(PropertyId, BucketIdx)>,
    /// Users appended via [`IncrementalGroups::add_user`].
    users_added: u32,
    /// Some slot crossed the empty/non-empty boundary, so the published
    /// group universe (and every group id after the crossing slot) shifts.
    universe_changed: bool,
}

impl EpochDelta {
    /// No structural change at all since the last `take_delta`.
    pub fn is_empty(&self) -> bool {
        self.changed_users.is_empty() && self.users_added == 0
    }

    /// Users whose memberships changed, ascending.
    pub fn changed_users(&self) -> &[UserId] {
        &self.changed_users
    }

    /// Slots whose member lists changed, ascending `(property, bucket)`.
    pub fn dirty_slots(&self) -> &[(PropertyId, BucketIdx)] {
        &self.dirty_slots
    }

    /// Users appended since the last `take_delta`.
    pub fn users_added(&self) -> u32 {
        self.users_added
    }

    /// Whether the published group universe changed shape.
    pub fn universe_changed(&self) -> bool {
        self.universe_changed
    }

    /// Whether the previous epoch's CSR can be patched in place: the group
    /// universe kept its shape and no users were added, so every published
    /// group id (and the user-offset table's length) is stable.
    pub fn patchable(&self) -> bool {
        !self.universe_changed && self.users_added == 0
    }

    fn note_user(&mut self, u: UserId) {
        if let Err(pos) = self.changed_users.binary_search(&u) {
            self.changed_users.insert(pos, u);
        }
    }

    fn note_slot(&mut self, p: PropertyId, b: BucketIdx, crossed_boundary: bool) {
        if let Err(pos) = self.dirty_slots.binary_search(&(p, b)) {
            self.dirty_slots.insert(pos, (p, b));
        }
        self.universe_changed |= crossed_boundary;
    }
}

/// Bucketed group structure maintained under point updates.
#[derive(Debug, Clone)]
pub struct IncrementalGroups {
    buckets: PropertyBuckets,
    /// `slots[p][b]` = sorted member list of `G_{p,b}` (possibly empty —
    /// unlike [`GroupSet`], empty slots persist so ids stay stable).
    slots: Vec<Vec<Vec<UserId>>>,
    /// Current bucket of each (user, property) membership:
    /// `current[u]` is a sorted list of `(property, bucket)`.
    current: Vec<Vec<(PropertyId, BucketIdx)>>,
    user_count: usize,
    /// Structural changes since the last [`IncrementalGroups::take_delta`].
    delta: EpochDelta,
}

impl IncrementalGroups {
    /// Builds the structure from a repository and a fixed bucketing.
    pub fn build(repo: &UserRepository, buckets: &PropertyBuckets) -> Self {
        let mut slots: Vec<Vec<Vec<UserId>>> = (0..repo.property_count())
            .map(|p| vec![Vec::new(); buckets.of(PropertyId::from_index(p)).len()])
            .collect();
        let mut current: Vec<Vec<(PropertyId, BucketIdx)>> = vec![Vec::new(); repo.user_count()];
        for (u, profile) in repo.iter() {
            for (p, s) in profile.iter() {
                if let Some(b) = buckets.of(p).bucket_of(s) {
                    slots[p.index()][b.index()].push(u);
                    current[u.index()].push((p, b));
                }
            }
        }
        Self {
            buckets: buckets.clone(),
            slots,
            current,
            user_count: repo.user_count(),
            delta: EpochDelta::default(),
        }
    }

    /// The structural changes accumulated since the last
    /// [`IncrementalGroups::take_delta`] (or construction).
    pub fn pending_delta(&self) -> &EpochDelta {
        &self.delta
    }

    /// Takes the accumulated delta, resetting the pending one to empty.
    /// Publishers call this once per epoch; the returned delta describes
    /// exactly the changes between the previous `take_delta` point and now.
    pub fn take_delta(&mut self) -> EpochDelta {
        std::mem::take(&mut self.delta)
    }

    /// Number of users tracked.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Adds a new (empty-profile) user, returning their id.
    pub fn add_user(&mut self) -> UserId {
        let id = UserId::from_index(self.user_count);
        self.user_count += 1;
        self.current.push(Vec::new());
        self.delta.users_added += 1;
        id
    }

    /// Current members of `G_{p,b}` (sorted).
    pub fn members(&self, p: PropertyId, b: BucketIdx) -> &[UserId] {
        self.slots
            .get(p.index())
            .and_then(|s| s.get(b.index()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Applies a score update: `None` removes the property from the user's
    /// profile, `Some(score)` sets it. Returns the `(old, new)` bucket
    /// indices for the affected property, either of which may be `None`.
    ///
    /// # Panics
    /// Panics if `u` or `p` are out of range, or `score` is outside [0, 1].
    pub fn update_score(
        &mut self,
        u: UserId,
        p: PropertyId,
        score: Option<f64>,
    ) -> (Option<BucketIdx>, Option<BucketIdx>) {
        assert!(u.index() < self.user_count, "unknown user {u}");
        assert!(p.index() < self.slots.len(), "unknown property {p}");
        if let Some(s) = score {
            assert!(
                (0.0..=1.0).contains(&s) && s.is_finite(),
                "score out of range"
            );
        }
        let new_bucket = score.and_then(|s| self.buckets.of(p).bucket_of(s));

        // Locate and detach the old membership, if any.
        let memberships = &mut self.current[u.index()];
        let old_idx = memberships.iter().position(|&(q, _)| q == p);
        let old_bucket = old_idx.map(|i| memberships[i].1);
        if old_bucket == new_bucket {
            return (old_bucket, new_bucket); // no structural change
        }
        self.delta.note_user(u);
        if let Some(i) = old_idx {
            let (_, b) = memberships.remove(i);
            let slot = &mut self.slots[p.index()][b.index()];
            if let Ok(pos) = slot.binary_search(&u) {
                slot.remove(pos);
            }
            let emptied = slot.is_empty();
            self.delta.note_slot(p, b, emptied);
        }
        if let Some(b) = new_bucket {
            let slot = &mut self.slots[p.index()][b.index()];
            let was_empty = slot.is_empty();
            if let Err(pos) = slot.binary_search(&u) {
                slot.insert(pos, u);
            }
            self.current[u.index()].push((p, b));
            self.delta.note_slot(p, b, was_empty);
        }
        (old_bucket, new_bucket)
    }

    /// Materializes a [`GroupSet`] of the current non-empty groups, ready
    /// for the selection algorithms. Group labeling and ordering match
    /// [`GroupSet::build`] on an equivalent repository.
    pub fn snapshot(&self) -> GroupSet {
        let mut triples = Vec::new();
        for (p, buckets) in self.slots.iter().enumerate() {
            for (b, members) in buckets.iter().enumerate() {
                if !members.is_empty() {
                    triples.push((
                        PropertyId::from_index(p),
                        BucketIdx::from_index(b),
                        members.clone(),
                    ));
                }
            }
        }
        GroupSet::from_simple_memberships(self.user_count, triples, self.buckets.clone())
    }

    /// In-place variant of [`IncrementalGroups::snapshot`]: rebuilds `out`
    /// from the current slots, reusing its member-vector and reverse-link
    /// allocations. A writer that publishes one snapshot per epoch calls
    /// this with the group set it is about to publish (or a recycled
    /// retired one) instead of paying a full from-scratch rebuild when only
    /// a few slots changed. The result compares group-for-group equal to
    /// what [`IncrementalGroups::snapshot`] returns.
    pub fn snapshot_into(&self, out: &mut GroupSet) {
        let triples = self.slots.iter().enumerate().flat_map(|(p, buckets)| {
            buckets
                .iter()
                .enumerate()
                .filter(|(_, members)| !members.is_empty())
                .map(move |(b, members)| {
                    (
                        PropertyId::from_index(p),
                        BucketIdx::from_index(b),
                        members.as_slice(),
                    )
                })
        });
        out.assign_simple_memberships(self.user_count, triples, &self.buckets);
    }

    /// Materializes the CSR adjacency of the current non-empty groups
    /// directly from the maintained slots — same group ordering as
    /// [`IncrementalGroups::snapshot`], without cloning the member lists
    /// into an intermediate [`GroupSet`]. Pair it with a snapshot taken at
    /// the same time when building a [`crate::engine::SelectionEngine`].
    pub fn snapshot_csr(&self) -> CsrGraph {
        let mut out = CsrGraph::default();
        self.snapshot_csr_into(&mut out);
        out
    }

    /// In-place variant of [`IncrementalGroups::snapshot_csr`]: overwrites
    /// `out` with the CSR of the current non-empty groups, reusing its
    /// buffers. The full-rebuild fallback of the publish path.
    pub fn snapshot_csr_into(&self, out: &mut CsrGraph) {
        let lists = self.non_empty_lists();
        out.assign_from_member_lists(self.user_count, &lists);
    }

    /// Patches `out` into the CSR of the current state using `base` — the
    /// CSR of the state as of the last [`IncrementalGroups::take_delta`] —
    /// and `delta`, the value that `take_delta` returned (or the pending
    /// delta). Per-edge work is spent only on the delta's changed users;
    /// everything else is a bulk copy of `base`. Returns `false`, leaving
    /// `out` untouched, when the delta is not [`EpochDelta::patchable`] or
    /// `base` does not match the expected previous shape — the caller then
    /// falls back to [`IncrementalGroups::snapshot_csr_into`].
    ///
    /// The patched graph is bit-identical to what `snapshot_csr` builds
    /// from scratch.
    pub fn patch_csr_into(&self, delta: &EpochDelta, base: &CsrGraph, out: &mut CsrGraph) -> bool {
        if !delta.patchable() || base.user_count() != self.user_count {
            return false;
        }
        let lists = self.non_empty_lists();
        if lists.len() != base.group_count() {
            return false;
        }
        // Under a patchable delta every slot a changed user belongs to is
        // non-empty (it contains them), so its published rank is defined.
        let ranks = self.slot_ranks();
        let changed: Vec<(u32, Vec<u32>)> = delta
            .changed_users
            .iter()
            .map(|&u| {
                let mut row: Vec<u32> = self.current[u.index()]
                    .iter()
                    .map(|&(p, b)| ranks[p.index()][b.index()])
                    .collect();
                row.sort_unstable();
                (u.0, row)
            })
            .collect();
        out.patch_from(base, &lists, &changed);
        true
    }

    /// Patches `out` — a [`GroupSet`] materialized from an **earlier
    /// epoch of the same published group universe** — up to the current
    /// state. `dirty_slots` must be the ascending, deduplicated union of
    /// the dirty slots of every epoch delta between `out`'s epoch and
    /// now, and each of those deltas must have been
    /// [`EpochDelta::patchable`] (so group ids and the user universe are
    /// stable across the whole span). Work is O(members of dirty slots),
    /// not O(edges): only the dirty member lists and the reverse links of
    /// users appearing in them (old or new) are rewritten.
    ///
    /// Returns `false`, leaving `out` untouched, when the cheap structural
    /// preconditions do not hold (user count, group count, or a dirty
    /// slot's identity/rank mismatch) — the caller then falls back to
    /// [`IncrementalGroups::snapshot_into`]. The patched set compares
    /// group-for-group and link-for-link equal to a from-scratch snapshot.
    pub fn patch_groups_into(
        &self,
        dirty_slots: &[(PropertyId, BucketIdx)],
        out: &mut GroupSet,
    ) -> bool {
        if out.user_count() != self.user_count {
            return false;
        }
        let ranks = self.slot_ranks();
        let group_count = self
            .slots
            .iter()
            .flat_map(|buckets| buckets.iter())
            .filter(|members| !members.is_empty())
            .count();
        if out.len() != group_count {
            return false;
        }
        let mut dirty_ranked: Vec<(usize, &[UserId])> = Vec::with_capacity(dirty_slots.len());
        let mut affected: Vec<UserId> = Vec::new();
        for &(p, b) in dirty_slots {
            let Some(&rank) = ranks.get(p.index()).and_then(|r| r.get(b.index())) else {
                return false;
            };
            if rank == u32::MAX {
                // A dirty slot that is empty now crossed the universe
                // boundary at some point — the span was not patchable.
                return false;
            }
            let members = self.slots[p.index()][b.index()].as_slice();
            let Ok(old) = out.group(GroupId(rank)) else {
                return false;
            };
            if old.kind
                != (GroupKind::Simple {
                    property: p,
                    bucket: b,
                })
            {
                return false;
            }
            affected.extend_from_slice(&old.members);
            affected.extend_from_slice(members);
            dirty_ranked.push((GroupId(rank).index(), members));
        }
        affected.sort_unstable();
        affected.dedup();
        let relink = affected.iter().map(|&u| {
            let mut row: Vec<GroupId> = self.current[u.index()]
                .iter()
                .map(|&(p, b)| GroupId(ranks[p.index()][b.index()]))
                .collect();
            row.sort_unstable();
            (u, row)
        });
        out.patch_simple_memberships(dirty_ranked.iter().copied(), relink);
        true
    }

    /// The published group indices (positions in the snapshot/CSR group
    /// ordering) of the delta's dirty slots, ascending — the groups whose
    /// member lists changed this epoch. Meaningful only while the delta is
    /// [`EpochDelta::patchable`] (otherwise ids have shifted); slots that
    /// are currently empty are skipped.
    pub fn dirty_group_ids(&self, delta: &EpochDelta) -> Vec<u32> {
        let dirty = &delta.dirty_slots;
        let mut out = Vec::with_capacity(dirty.len());
        let mut rank = 0u32;
        let mut di = 0usize;
        for (p, buckets) in self.slots.iter().enumerate() {
            for (b, members) in buckets.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let key = (PropertyId::from_index(p), BucketIdx::from_index(b));
                while di < dirty.len() && dirty[di] < key {
                    di += 1;
                }
                if di < dirty.len() && dirty[di] == key {
                    out.push(rank);
                }
                rank += 1;
            }
        }
        out
    }

    /// Exact round-0 CELF marginals of `u` against the current state, as
    /// `(degree, Σ slot sizes)` — the initial gain under `Identical` and
    /// `LinearBySize` weights respectively (every group starts with
    /// positive remaining coverage, so the round-0 gain is the plain
    /// weight sum over the user's groups). Both are integers, hence exact
    /// in `f64`; writers use them to maintain warm-start seed bounds for
    /// [`crate::engine::lazy_select_seeded_deadline`].
    pub fn seed_gains_of(&self, u: UserId) -> (f64, f64) {
        let mut degree = 0u32;
        let mut sizes = 0.0f64;
        for &(p, b) in &self.current[u.index()] {
            degree += 1;
            // Slot sizes are bounded by the u32 user count, so each term
            // (and the ≤ |P|-term sum) is exact in f64.
            sizes += f64::from(
                u32::try_from(self.slots[p.index()][b.index()].len()).unwrap_or(u32::MAX),
            );
        }
        (f64::from(degree), sizes)
    }

    /// The non-empty slot member lists in published (flat) order.
    fn non_empty_lists(&self) -> Vec<&[UserId]> {
        self.slots
            .iter()
            .flat_map(|buckets| buckets.iter())
            .filter(|members| !members.is_empty())
            .map(Vec::as_slice)
            .collect()
    }

    /// The published rank of every slot (`u32::MAX` for empty slots).
    fn slot_ranks(&self) -> Vec<Vec<u32>> {
        let mut rank = 0u32;
        self.slots
            .iter()
            .map(|buckets| {
                buckets
                    .iter()
                    .map(|members| {
                        if members.is_empty() {
                            u32::MAX
                        } else {
                            let r = rank;
                            rank += 1;
                            r
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketingConfig;

    fn setup() -> (UserRepository, PropertyBuckets, IncrementalGroups) {
        let repo = crate::testutil::table2();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let inc = IncrementalGroups::build(&repo, &buckets);
        (repo, buckets, inc)
    }

    /// Snapshot after building must equal a from-scratch GroupSet.
    fn assert_equivalent(
        inc: &IncrementalGroups,
        repo: &UserRepository,
        buckets: &PropertyBuckets,
    ) {
        let snapshot = inc.snapshot();
        let rebuilt = GroupSet::build(repo, buckets);
        assert_eq!(snapshot.len(), rebuilt.len(), "group counts");
        for ((ga, a), (gb, b)) in snapshot.iter().zip(rebuilt.iter()) {
            assert_eq!(a.members, b.members, "members of {ga} vs {gb}");
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn initial_snapshot_matches_group_set_build() {
        let (repo, buckets, inc) = setup();
        assert_equivalent(&inc, &repo, &buckets);
    }

    #[test]
    fn score_update_moves_user_between_buckets() {
        let (mut repo, buckets, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        // Bob's 0.3 ("low") becomes 0.9 ("high").
        let (old, new) = inc.update_score(bob, mex, Some(0.9));
        assert_ne!(old, new);
        repo.set_score(bob, mex, 0.9).unwrap();
        assert_equivalent(&inc, &repo, &buckets);
    }

    #[test]
    fn same_bucket_update_is_structural_noop() {
        let (repo, _, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let before = inc.snapshot();
        let (old, new) = inc.update_score(bob, mex, Some(0.35)); // still "low"
        assert_eq!(old, new);
        let after = inc.snapshot();
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn property_removal_and_fresh_insert() {
        let (repo, buckets, mut inc) = setup();
        let alice = repo.user_by_name("Alice").unwrap();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        inc.update_score(alice, tokyo, None);
        repo.profile(alice).unwrap(); // still exists
                                      // Mirror in the repo:
        let mut mirrored = repo.clone();
        {
            // remove via a fresh profile rebuild
            let mut p = mirrored.profile(alice).unwrap().clone();
            p.remove(tokyo);
            // UserRepository lacks direct profile replacement; emulate by
            // rebuilding a repo copy.
            let mut rebuilt = UserRepository::new();
            for q in 0..mirrored.property_count() {
                rebuilt
                    .intern_property(mirrored.property_label(PropertyId::from_index(q)).unwrap());
            }
            for (u, prof) in mirrored.iter() {
                let nu = rebuilt.add_user(mirrored.user_name(u).unwrap());
                let source = if u == alice { &p } else { prof };
                for (pid, s) in source.iter() {
                    rebuilt.set_score(nu, pid, s).unwrap();
                }
            }
            mirrored = rebuilt;
        }
        assert_equivalent(&inc, &mirrored, &buckets);

        // Fresh insert for a user who never had the property.
        let carol = repo.user_by_name("Carol").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(carol, mex, Some(0.7));
        let high = buckets.of(mex).bucket_of(0.7).unwrap();
        assert!(inc.members(mex, high).contains(&carol));
    }

    #[test]
    fn new_user_participates_after_updates() {
        let (repo, buckets, mut inc) = setup();
        let frank = inc.add_user();
        assert_eq!(frank.index(), 5);
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(frank, mex, Some(0.95));
        let high = buckets.of(mex).bucket_of(0.95).unwrap();
        assert!(inc.members(mex, high).contains(&frank));
        let snapshot = inc.snapshot();
        assert_eq!(snapshot.user_count(), 6);
        assert!(!snapshot.groups_of(frank).is_empty());
    }

    #[test]
    fn random_update_sequence_matches_rebuild() {
        // Fuzz: apply a deterministic pseudo-random sequence of updates to
        // both the incremental structure and a mirrored repository, then
        // compare snapshots.
        let (mut repo, buckets, mut inc) = setup();
        let props: Vec<PropertyId> = (0..repo.property_count())
            .map(PropertyId::from_index)
            .collect();
        let mut state = 0xFEED_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let u = UserId::from_index(next() % repo.user_count());
            let p = props[next() % props.len()];
            if next() % 5 == 0 {
                inc.update_score(u, p, None);
                // Mirror removal by rebuilding (repo lacks remove; emulate
                // through a scratch profile copy handled below).
                let mut rebuilt = UserRepository::new();
                for q in &props {
                    rebuilt.intern_property(repo.property_label(*q).unwrap());
                }
                for (uu, prof) in repo.iter() {
                    let nu = rebuilt.add_user(repo.user_name(uu).unwrap());
                    for (pid, s) in prof.iter() {
                        if uu == u && pid == p {
                            continue;
                        }
                        rebuilt.set_score(nu, pid, s).unwrap();
                    }
                }
                repo = rebuilt;
            } else {
                let s = (next() % 101) as f64 / 100.0;
                inc.update_score(u, p, Some(s));
                repo.set_score(u, p, s).unwrap();
            }
        }
        assert_equivalent(&inc, &repo, &buckets);
    }

    #[test]
    #[should_panic(expected = "score out of range")]
    fn invalid_score_panics() {
        let (_, _, mut inc) = setup();
        inc.update_score(UserId(0), PropertyId(0), Some(1.5));
    }

    /// `snapshot_into` must agree with `snapshot` both on a fresh target
    /// and when overwriting a stale, differently-shaped target.
    #[test]
    fn snapshot_into_matches_snapshot() {
        let (repo, _, mut inc) = setup();
        let assert_same = |inc: &IncrementalGroups, out: &GroupSet| {
            let fresh = inc.snapshot();
            assert_eq!(out.len(), fresh.len(), "group counts");
            assert_eq!(out.user_count(), fresh.user_count());
            for ((ga, a), (_, b)) in out.iter().zip(fresh.iter()) {
                assert_eq!(a.kind, b.kind, "kind of {ga}");
                assert_eq!(a.members, b.members, "members of {ga}");
            }
            for u in 0..fresh.user_count() {
                let u = UserId::from_index(u);
                assert_eq!(out.groups_of(u), fresh.groups_of(u), "links of {u}");
            }
        };

        let mut out = GroupSet::default();
        inc.snapshot_into(&mut out);
        assert_same(&inc, &out);

        // Mutate: move Bob between buckets, add a user, drop a score, and
        // reuse the previously-populated target.
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(bob, mex, Some(0.9));
        let alice = repo.user_by_name("Alice").unwrap();
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        inc.update_score(alice, tokyo, None);
        let frank = inc.add_user();
        inc.update_score(frank, mex, Some(0.15));
        inc.snapshot_into(&mut out);
        assert_same(&inc, &out);

        // Shrink back below the reused target's size.
        inc.update_score(frank, mex, None);
        inc.update_score(bob, mex, None);
        inc.snapshot_into(&mut out);
        assert_same(&inc, &out);
    }

    /// Full structural equality against a from-scratch snapshot: groups,
    /// kinds, members, and every reverse-link row.
    fn assert_same_set(inc: &IncrementalGroups, out: &GroupSet) {
        let fresh = inc.snapshot();
        assert_eq!(out.len(), fresh.len(), "group counts");
        assert_eq!(out.user_count(), fresh.user_count());
        for ((ga, a), (_, b)) in out.iter().zip(fresh.iter()) {
            assert_eq!(a.kind, b.kind, "kind of {ga}");
            assert_eq!(a.members, b.members, "members of {ga}");
        }
        for u in 0..fresh.user_count() {
            let u = UserId::from_index(u);
            assert_eq!(out.groups_of(u), fresh.groups_of(u), "links of {u}");
        }
    }

    #[test]
    fn patch_groups_matches_from_scratch_snapshot() {
        let (repo, _, mut inc) = setup();
        let carol = repo.user_by_name("Carol").unwrap();
        let david = repo.user_by_name("David").unwrap();
        let vfc = repo.property_id("visitFreq CheapEats").unwrap();
        let vfm = repo.property_id("visitFreq Mexican").unwrap();

        // The stale buffer is TWO patchable epochs behind: the patch has
        // to catch it up through the union of both deltas' dirty slots.
        let mut stale = inc.snapshot();
        inc.update_score(carol, vfc, Some(0.9));
        let d1 = inc.take_delta();
        assert!(d1.patchable());
        inc.update_score(david, vfm, Some(0.7));
        inc.update_score(carol, vfc, Some(0.15));
        let d2 = inc.take_delta();
        assert!(d2.patchable());

        let mut union: Vec<_> = d1
            .dirty_slots()
            .iter()
            .chain(d2.dirty_slots())
            .copied()
            .collect();
        union.sort_unstable();
        union.dedup();
        assert!(inc.patch_groups_into(&union, &mut stale));
        assert_same_set(&inc, &stale);

        // An empty union over an up-to-date buffer is the identity.
        assert!(inc.patch_groups_into(&[], &mut stale));
        assert_same_set(&inc, &stale);
    }

    #[test]
    fn patch_groups_refuses_structural_mismatches() {
        let (repo, _, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();

        // User-count mismatch: a buffer from before a user was added.
        let mut stale = inc.snapshot();
        let frank = inc.add_user();
        inc.update_score(frank, mex, Some(0.2));
        let delta = inc.take_delta();
        assert!(!delta.patchable());
        let before = stale.clone();
        assert!(!inc.patch_groups_into(delta.dirty_slots(), &mut stale));
        assert_eq!(
            stale.len(),
            before.len(),
            "refused patch leaves out untouched"
        );

        // Group-count mismatch: the universe gained a slot.
        let mut stale = inc.snapshot();
        inc.update_score(bob, mex, None);
        let delta = inc.take_delta();
        if delta.patchable() {
            // Bob shared his bucket, so the universe kept its shape and
            // the patch goes through; dirty a slot that is now empty to
            // exercise the rank guard instead.
            assert!(inc.patch_groups_into(delta.dirty_slots(), &mut stale));
        } else {
            assert!(!inc.patch_groups_into(delta.dirty_slots(), &mut stale));
        }
    }

    #[test]
    fn snapshot_csr_matches_snapshot_group_set() {
        let (repo, _, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(bob, mex, Some(0.9));
        let frank = inc.add_user();
        inc.update_score(frank, mex, Some(0.2));
        let direct = inc.snapshot_csr();
        let via_set = CsrGraph::from_group_set(&inc.snapshot());
        assert_eq!(direct, via_set);
    }

    #[test]
    fn delta_tracks_changed_users_and_slots() {
        let (repo, buckets, mut inc) = setup();
        assert!(inc.pending_delta().is_empty());

        // Same-bucket update: structurally a no-op, delta stays empty.
        let bob = repo.user_by_name("Bob").unwrap();
        let mex = repo.property_id("avgRating Mexican").unwrap();
        inc.update_score(bob, mex, Some(0.35));
        assert!(inc.pending_delta().is_empty());

        // Bucket move: Bob and both endpoint slots are recorded.
        inc.update_score(bob, mex, Some(0.9));
        let delta = inc.pending_delta().clone();
        assert_eq!(delta.changed_users(), &[bob]);
        assert_eq!(delta.dirty_slots().len(), 2);
        let high = buckets.of(mex).bucket_of(0.9).unwrap();
        assert!(delta.dirty_slots().contains(&(mex, high)));

        // take_delta drains and resets.
        let taken = inc.take_delta();
        assert_eq!(taken, delta);
        assert!(inc.pending_delta().is_empty());
    }

    #[test]
    fn delta_flags_universe_changes_and_added_users() {
        let (repo, _, mut inc) = setup();
        let bob = repo.user_by_name("Bob").unwrap();
        let nyc = repo.property_id("livesIn NYC").unwrap();
        // Bob is the only NYC member: retracting empties the slot.
        inc.update_score(bob, nyc, None);
        assert!(inc.pending_delta().universe_changed());
        assert!(!inc.pending_delta().patchable());
        inc.take_delta();

        let frank = inc.add_user();
        assert_eq!(inc.pending_delta().users_added(), 1);
        assert!(!inc.pending_delta().patchable());
        let _ = frank;
    }

    #[test]
    fn patch_csr_matches_from_scratch_rebuild() {
        let (repo, _, mut inc) = setup();
        let base = inc.snapshot_csr();
        inc.take_delta();

        // A patchable batch: two bucket moves that keep every slot
        // non-empty (the source buckets retain other members, the target
        // buckets already had some).
        let carol = repo.user_by_name("Carol").unwrap();
        let david = repo.user_by_name("David").unwrap();
        let vfc = repo.property_id("visitFreq CheapEats").unwrap();
        let vfm = repo.property_id("visitFreq Mexican").unwrap();
        inc.update_score(carol, vfc, Some(0.9));
        inc.update_score(david, vfm, Some(0.7));
        let delta = inc.take_delta();
        assert!(delta.patchable(), "batch kept the universe shape");

        let mut patched = CsrGraph::default();
        assert!(inc.patch_csr_into(&delta, &base, &mut patched));
        assert_eq!(patched, inc.snapshot_csr(), "patch == from-scratch");

        // The dirty groups name exactly the slots whose members changed.
        let dirty = inc.dirty_group_ids(&delta);
        let fresh = inc.snapshot_csr();
        let differing: Vec<u32> = (0..fresh.group_count() as u32)
            .filter(|&g| base.members_of(g as usize) != fresh.members_of(g as usize))
            .collect();
        assert_eq!(dirty, differing);
    }

    #[test]
    fn patch_csr_refuses_unpatchable_deltas() {
        let (repo, _, mut inc) = setup();
        let base = inc.snapshot_csr();
        inc.take_delta();
        let bob = repo.user_by_name("Bob").unwrap();
        let nyc = repo.property_id("livesIn NYC").unwrap();
        inc.update_score(bob, nyc, None); // empties the NYC slot
        let delta = inc.take_delta();
        let mut out = CsrGraph::default();
        assert!(!inc.patch_csr_into(&delta, &base, &mut out));
        assert_eq!(out, CsrGraph::default(), "target untouched on refusal");
    }

    /// Fuzz: random patchable-and-not update batches; whenever the batch
    /// is patchable the patched CSR must equal the from-scratch build.
    #[test]
    fn random_batches_patch_bit_identically() {
        let (repo, _, mut inc) = setup();
        let props: Vec<PropertyId> = (0..repo.property_count())
            .map(PropertyId::from_index)
            .collect();
        let mut state = 0xD1CE_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let mut base = inc.snapshot_csr();
        inc.take_delta();
        for _ in 0..60 {
            for _ in 0..1 + next() % 4 {
                let u = UserId::from_index(next() % inc.user_count());
                let p = props[next() % props.len()];
                let s = if next() % 6 == 0 {
                    None
                } else {
                    Some((next() % 101) as f64 / 100.0)
                };
                inc.update_score(u, p, s);
            }
            let delta = inc.take_delta();
            let fresh = inc.snapshot_csr();
            if delta.patchable() {
                let mut patched = CsrGraph::default();
                assert!(inc.patch_csr_into(&delta, &base, &mut patched));
                assert_eq!(patched, fresh, "patched epoch != rebuilt epoch");
            }
            base = fresh;
        }
    }
}
