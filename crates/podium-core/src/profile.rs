//! User profiles and the user repository (paper §3.1).
//!
//! A profile is the tuple `D_u = ⟨P_u, S_u⟩`: the set of properties known for
//! user `u` together with a score in `[0, 1]` for each. Profiles are sparse —
//! a property absent from a profile is *unknown* under the open-world
//! assumption, which is distinct from a property present with score `0.0`
//! (known false, e.g. produced by functional-property inference).
//!
//! The repository interns property labels so that the rest of the pipeline
//! works with dense [`PropertyId`] indices.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::ids::{PropertyId, UserId};

/// A sparse user profile: `(property, score)` pairs sorted by property id.
///
/// Scores are normalized to `[0, 1]` (Definition of user profiles, §3.1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    entries: Vec<(PropertyId, f64)>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of known properties `|P_u|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the profile has no known properties.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the score `S_u(p)` if property `p` is known for this user.
    pub fn score(&self, p: PropertyId) -> Option<f64> {
        self.entries
            .binary_search_by_key(&p, |&(q, _)| q)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether property `p` is known for this user (`p ∈ P_u`).
    #[inline]
    pub fn contains(&self, p: PropertyId) -> bool {
        self.score(p).is_some()
    }

    /// Sets (or overwrites) the score of property `p`.
    ///
    /// Returns an error if `score` is outside `[0, 1]` or not finite.
    pub fn set(&mut self, p: PropertyId, score: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&score) || !score.is_finite() {
            return Err(CoreError::ScoreOutOfRange { score, property: p });
        }
        match self.entries.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => self.entries[i].1 = score,
            Err(i) => self.entries.insert(i, (p, score)),
        }
        Ok(())
    }

    /// Removes property `p` from the profile, returning its previous score.
    pub fn remove(&mut self, p: PropertyId) -> Option<f64> {
        match self.entries.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates over `(property, score)` pairs in increasing property order.
    pub fn iter(&self) -> impl Iterator<Item = (PropertyId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The set of known properties `P_u`, in increasing order.
    pub fn properties(&self) -> impl Iterator<Item = PropertyId> + '_ {
        self.entries.iter().map(|&(p, _)| p)
    }

    /// Jaccard distance between the *property sets* of two profiles:
    /// `1 - |P_u ∩ P_v| / |P_u ∪ P_v|`.
    ///
    /// This is the pairwise distance used by the distance-based S-Model
    /// baseline (§8.3). Two empty profiles have distance `0`.
    pub fn jaccard_distance(&self, other: &Profile) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.entries.len() + other.entries.len() - inter;
        1.0 - inter as f64 / union as f64
    }
}

/// A repository of user profiles with interned property labels (§3.1).
///
/// This is the population `𝒰` from which diverse subsets are selected.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserRepository {
    property_names: Vec<String>,
    #[serde(skip)]
    property_index: HashMap<String, PropertyId>,
    user_names: Vec<String>,
    profiles: Vec<Profile>,
}

impl UserRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites `target` with a copy of `self`, reusing `target`'s
    /// allocations (strings, profile entry vectors, index capacity) where
    /// sizes allow. A single-writer publish loop that snapshots the
    /// repository every epoch calls this with a recycled retired copy: in
    /// the steady state (stable user set, bounded profile churn) the copy
    /// degenerates to memcpys with no allocator traffic, where
    /// `target = self.clone()` would reallocate every string and vector.
    pub fn clone_into_repo(&self, target: &mut UserRepository) {
        target.property_names.clone_from(&self.property_names);
        target.property_index.clone_from(&self.property_index);
        target.user_names.clone_from(&self.user_names);
        // `Profile`'s derived `Clone` has no allocation-reusing
        // `clone_from`, so the entry vectors are recycled by hand.
        target.profiles.truncate(self.profiles.len());
        for (i, profile) in self.profiles.iter().enumerate() {
            match target.profiles.get_mut(i) {
                Some(slot) => slot.entries.clone_from(&profile.entries),
                None => target.profiles.push(profile.clone()),
            }
        }
    }

    /// Rebuilds the label → id index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.property_index = self
            .property_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), PropertyId::from_index(i)))
            .collect();
    }

    /// Number of users `|𝒰|`.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.profiles.len()
    }

    /// Number of distinct interned properties `|𝒫|`.
    #[inline]
    pub fn property_count(&self) -> usize {
        self.property_names.len()
    }

    /// Adds a user with a display name and an empty profile.
    pub fn add_user(&mut self, name: impl Into<String>) -> UserId {
        let id = UserId::from_index(self.profiles.len());
        self.user_names.push(name.into());
        self.profiles.push(Profile::new());
        id
    }

    /// Interns a property label, returning its id (existing or fresh).
    pub fn intern_property(&mut self, label: impl AsRef<str>) -> PropertyId {
        let label = label.as_ref();
        if let Some(&id) = self.property_index.get(label) {
            return id;
        }
        let id = PropertyId::from_index(self.property_names.len());
        self.property_names.push(label.to_owned());
        self.property_index.insert(label.to_owned(), id);
        id
    }

    /// Looks up a property id by label without interning.
    pub fn property_id(&self, label: &str) -> Option<PropertyId> {
        self.property_index.get(label).copied()
    }

    /// The human-readable label of a property (used by explanations, §5).
    pub fn property_label(&self, p: PropertyId) -> Result<&str> {
        self.property_names
            .get(p.index())
            .map(String::as_str)
            .ok_or(CoreError::UnknownProperty(p))
    }

    /// The display name of a user.
    pub fn user_name(&self, u: UserId) -> Result<&str> {
        self.user_names
            .get(u.index())
            .map(String::as_str)
            .ok_or(CoreError::UnknownUser(u))
    }

    /// Finds a user id by display name (linear scan; intended for tests and
    /// small examples).
    pub fn user_by_name(&self, name: &str) -> Option<UserId> {
        self.user_names
            .iter()
            .position(|n| n == name)
            .map(UserId::from_index)
    }

    /// Sets a score in a user's profile.
    pub fn set_score(&mut self, u: UserId, p: PropertyId, score: f64) -> Result<()> {
        if p.index() >= self.property_names.len() {
            return Err(CoreError::UnknownProperty(p));
        }
        let profile = self
            .profiles
            .get_mut(u.index())
            .ok_or(CoreError::UnknownUser(u))?;
        profile.set(p, score)
    }

    /// Removes a score from a user's profile, returning the previous value
    /// if one was set. Removing an absent score is a no-op (`Ok(None)`) —
    /// the counterpart of [`Profile::remove`] at the repository level, used
    /// by update streams that retract opinions.
    pub fn remove_score(&mut self, u: UserId, p: PropertyId) -> Result<Option<f64>> {
        if p.index() >= self.property_names.len() {
            return Err(CoreError::UnknownProperty(p));
        }
        let profile = self
            .profiles
            .get_mut(u.index())
            .ok_or(CoreError::UnknownUser(u))?;
        Ok(profile.remove(p))
    }

    /// Reads a score, if the property is known for the user.
    pub fn score(&self, u: UserId, p: PropertyId) -> Option<f64> {
        self.profiles.get(u.index()).and_then(|pr| pr.score(p))
    }

    /// Borrows a user's profile.
    pub fn profile(&self, u: UserId) -> Result<&Profile> {
        self.profiles
            .get(u.index())
            .ok_or(CoreError::UnknownUser(u))
    }

    /// Iterates over all user ids.
    pub fn users(&self) -> impl ExactSizeIterator<Item = UserId> {
        (0..self.profiles.len()).map(UserId::from_index)
    }

    /// Iterates over `(user, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &Profile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (UserId::from_index(i), p))
    }

    /// Property support `|p| = |{u ∈ 𝒰 | p ∈ P_u}|` (§3.1 notation).
    pub fn property_support(&self, p: PropertyId) -> usize {
        self.profiles.iter().filter(|pr| pr.contains(p)).count()
    }

    /// All `(user, score)` observations of property `p`.
    pub fn property_values(&self, p: PropertyId) -> Vec<(UserId, f64)> {
        self.iter()
            .filter_map(|(u, pr)| pr.score(p).map(|s| (u, s)))
            .collect()
    }

    /// Average profile size `avg_u |P_u|`.
    pub fn mean_profile_size(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        self.profiles.iter().map(Profile::len).sum::<usize>() as f64 / self.profiles.len() as f64
    }

    /// Largest profile size `max_u |P_u|` (appears in the complexity bound of
    /// Proposition 4.4).
    pub fn max_profile_size(&self) -> usize {
        self.profiles.iter().map(Profile::len).max().unwrap_or(0)
    }

    /// Merges another repository into this one: users are matched by display
    /// name (new users are appended), properties by label, and the *other*
    /// repository's scores win on conflicts (it represents newer data).
    ///
    /// This supports the §9 claim that the approach "applies to a given user
    /// repository as-is and may be easily executed multiple times, e.g., to
    /// incorporate data updates": merge fresh activity in, then re-run the
    /// grouping and selection stages.
    pub fn merge(&mut self, other: &UserRepository) {
        // Property id translation table other -> self.
        let prop_map: Vec<PropertyId> = (0..other.property_count())
            .map(|p| {
                let label = other
                    .property_label(PropertyId::from_index(p))
                    .expect("property ids are dense");
                self.intern_property(label)
            })
            .collect();
        for (ou, profile) in other.iter() {
            let name = other.user_name(ou).expect("user ids are dense");
            let u = self
                .user_by_name(name)
                .unwrap_or_else(|| self.add_user(name));
            for (p, s) in profile.iter() {
                self.set_score(u, prop_map[p.index()], s)
                    .expect("scores were valid in the source repository");
            }
        }
    }

    /// Returns a new repository restricted to the given users, preserving the
    /// property interning. Used by the customization refinement (§6) and by
    /// scalability experiments that subsample the population.
    pub fn restrict(&self, users: &[UserId]) -> UserRepository {
        let mut out = UserRepository {
            property_names: self.property_names.clone(),
            property_index: self.property_index.clone(),
            user_names: Vec::with_capacity(users.len()),
            profiles: Vec::with_capacity(users.len()),
        };
        for &u in users {
            out.user_names.push(self.user_names[u.index()].clone());
            out.profiles.push(self.profiles[u.index()].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_repo() -> (UserRepository, UserId, UserId, PropertyId, PropertyId) {
        let mut repo = UserRepository::new();
        let a = repo.add_user("Alice");
        let b = repo.add_user("Bob");
        let p = repo.intern_property("livesIn Tokyo");
        let q = repo.intern_property("avgRating Mexican");
        repo.set_score(a, p, 1.0).unwrap();
        repo.set_score(a, q, 0.95).unwrap();
        repo.set_score(b, q, 0.3).unwrap();
        (repo, a, b, p, q)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut repo = UserRepository::new();
        let p1 = repo.intern_property("x");
        let p2 = repo.intern_property("x");
        assert_eq!(p1, p2);
        assert_eq!(repo.property_count(), 1);
    }

    #[test]
    fn scores_roundtrip() {
        let (repo, a, b, p, q) = small_repo();
        assert_eq!(repo.score(a, p), Some(1.0));
        assert_eq!(repo.score(a, q), Some(0.95));
        assert_eq!(repo.score(b, p), None, "open world: unknown, not false");
        assert_eq!(repo.score(b, q), Some(0.3));
    }

    #[test]
    fn score_out_of_range_rejected() {
        let (mut repo, a, _, p, _) = small_repo();
        let err = repo.set_score(a, p, 1.5).unwrap_err();
        assert!(matches!(err, CoreError::ScoreOutOfRange { .. }));
        let err = repo.set_score(a, p, f64::NAN).unwrap_err();
        assert!(matches!(err, CoreError::ScoreOutOfRange { .. }));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (mut repo, _, _, p, _) = small_repo();
        assert!(matches!(
            repo.set_score(UserId(99), p, 0.5),
            Err(CoreError::UnknownUser(_))
        ));
        assert!(matches!(
            repo.set_score(UserId(0), PropertyId(99), 0.5),
            Err(CoreError::UnknownProperty(_))
        ));
    }

    #[test]
    fn property_support_counts_known_only() {
        let (repo, _, _, p, q) = small_repo();
        assert_eq!(repo.property_support(p), 1);
        assert_eq!(repo.property_support(q), 2);
    }

    #[test]
    fn profile_set_overwrites() {
        let mut pr = Profile::new();
        pr.set(PropertyId(3), 0.2).unwrap();
        pr.set(PropertyId(3), 0.8).unwrap();
        assert_eq!(pr.len(), 1);
        assert_eq!(pr.score(PropertyId(3)), Some(0.8));
    }

    #[test]
    fn profile_entries_stay_sorted() {
        let mut pr = Profile::new();
        for p in [5u32, 1, 3, 2, 4] {
            pr.set(PropertyId(p), 0.5).unwrap();
        }
        let props: Vec<u32> = pr.properties().map(|p| p.0).collect();
        assert_eq!(props, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn profile_remove() {
        let mut pr = Profile::new();
        pr.set(PropertyId(1), 0.4).unwrap();
        assert_eq!(pr.remove(PropertyId(1)), Some(0.4));
        assert_eq!(pr.remove(PropertyId(1)), None);
        assert!(pr.is_empty());
    }

    #[test]
    fn jaccard_distance_basic() {
        let mut a = Profile::new();
        let mut b = Profile::new();
        a.set(PropertyId(0), 1.0).unwrap();
        a.set(PropertyId(1), 1.0).unwrap();
        b.set(PropertyId(1), 0.2).unwrap();
        b.set(PropertyId(2), 0.2).unwrap();
        // intersection {1}, union {0,1,2} -> distance 1 - 1/3
        assert!((a.jaccard_distance(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.jaccard_distance(&a), 0.0);
        assert_eq!(Profile::new().jaccard_distance(&Profile::new()), 0.0);
        assert_eq!(a.jaccard_distance(&Profile::new()), 1.0);
    }

    #[test]
    fn restrict_preserves_interning() {
        let (repo, a, b, p, q) = small_repo();
        let sub = repo.restrict(&[b]);
        assert_eq!(sub.user_count(), 1);
        assert_eq!(sub.property_count(), repo.property_count());
        assert_eq!(sub.user_name(UserId(0)).unwrap(), "Bob");
        assert_eq!(sub.score(UserId(0), q), Some(0.3));
        assert_eq!(sub.score(UserId(0), p), None);
        let _ = a;
    }

    #[test]
    fn index_rebuild_restores_lookup() {
        let (repo, _, _, _, q) = small_repo();
        let mut copy = repo.clone();
        copy.property_index.clear();
        copy.rebuild_index();
        assert_eq!(copy.property_id("avgRating Mexican"), Some(q));
    }

    #[test]
    fn user_by_name_lookup() {
        let (repo, a, b, _, _) = small_repo();
        assert_eq!(repo.user_by_name("Alice"), Some(a));
        assert_eq!(repo.user_by_name("Bob"), Some(b));
        assert_eq!(repo.user_by_name("Carol"), None);
    }

    #[test]
    fn sizes() {
        let (repo, _, _, _, _) = small_repo();
        assert_eq!(repo.max_profile_size(), 2);
        assert!((repo.mean_profile_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_users_by_name_and_newer_wins() {
        let (mut base, a, _, _, q) = small_repo();
        let mut update = UserRepository::new();
        let ua = update.add_user("Alice"); // existing user, updated score
        let uc = update.add_user("Carol"); // new user
                                           // Different interning order on purpose.
        let new_prop = update.intern_property("visitFreq Thai");
        let mex = update.intern_property("avgRating Mexican");
        update.set_score(ua, mex, 0.5).unwrap();
        update.set_score(uc, new_prop, 0.7).unwrap();

        base.merge(&update);
        assert_eq!(base.user_count(), 3);
        assert_eq!(base.score(a, q), Some(0.5), "newer score wins");
        let carol = base.user_by_name("Carol").unwrap();
        let thai = base.property_id("visitFreq Thai").unwrap();
        assert_eq!(base.score(carol, thai), Some(0.7));
        // Untouched data survives.
        let tokyo = base.property_id("livesIn Tokyo").unwrap();
        assert_eq!(base.score(a, tokyo), Some(1.0));
    }

    #[test]
    fn merge_is_idempotent() {
        let (mut base, _, _, _, _) = small_repo();
        let snapshot = base.clone();
        base.merge(&snapshot);
        assert_eq!(base.user_count(), snapshot.user_count());
        assert_eq!(base.property_count(), snapshot.property_count());
        for (u, p) in snapshot.iter() {
            assert_eq!(base.profile(u).unwrap(), p);
        }
    }

    #[test]
    fn merge_into_empty() {
        let (src, _, _, _, _) = small_repo();
        let mut dst = UserRepository::new();
        dst.merge(&src);
        assert_eq!(dst.user_count(), src.user_count());
        assert_eq!(dst.property_count(), src.property_count());
    }

    #[test]
    fn clone_into_repo_matches_clone() {
        let (src, _, _, _, mex) = small_repo();
        // Recycle a target that is both bigger and smaller than the source
        // in different dimensions to exercise truncate and extend.
        let mut target = UserRepository::new();
        let extra = target.intern_property("extra");
        for i in 0..10 {
            let u = target.add_user(format!("old-user-with-a-long-name-{i}"));
            target.set_score(u, extra, 0.5).unwrap();
        }
        src.clone_into_repo(&mut target);
        assert_eq!(target.user_count(), src.user_count());
        assert_eq!(target.property_count(), src.property_count());
        assert_eq!(target.property_id("avgRating Mexican"), Some(mex));
        for (u, p) in src.iter() {
            assert_eq!(target.profile(u).unwrap(), p);
            assert_eq!(target.user_name(u).unwrap(), src.user_name(u).unwrap());
        }
        // And growing from empty works too.
        let mut empty = UserRepository::new();
        src.clone_into_repo(&mut empty);
        assert_eq!(empty.user_count(), src.user_count());
    }
}
