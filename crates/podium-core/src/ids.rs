//! Strongly-typed identifiers for users, properties, groups and buckets.
//!
//! All identifiers are dense `u32` indices into the owning container
//! ([`crate::profile::UserRepository`] or [`crate::group::GroupSet`]), which
//! keeps the bidirectional user ↔ group link lists of Algorithm 1 compact and
//! cache-friendly.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a `usize` index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("identifier index exceeds u32::MAX"))
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a user in a [`crate::profile::UserRepository`].
    UserId
);
define_id!(
    /// Identifier of an interned property label (e.g. `"avgRating Mexican"`).
    PropertyId
);
define_id!(
    /// Identifier of a group in a [`crate::group::GroupSet`].
    GroupId
);
define_id!(
    /// Index of a bucket within one property's [`crate::bucket::BucketSet`].
    BucketIdx
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let u = UserId::from_index(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u, UserId(42));
    }

    #[test]
    fn display_includes_type_name() {
        assert_eq!(GroupId(7).to_string(), "GroupId(7)");
        assert_eq!(PropertyId(0).to_string(), "PropertyId(0)");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(UserId(1) < UserId(2));
        let mut v = vec![BucketIdx(3), BucketIdx(0), BucketIdx(2)];
        v.sort();
        assert_eq!(v, vec![BucketIdx(0), BucketIdx(2), BucketIdx(3)]);
    }

    #[test]
    fn from_u32_conversion() {
        let p: PropertyId = 9u32.into();
        assert_eq!(p, PropertyId(9));
    }

    #[test]
    #[should_panic(expected = "identifier index exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = UserId::from_index(u32::MAX as usize + 1);
    }
}
