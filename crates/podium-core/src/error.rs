//! Error types for `podium-core`.

use crate::ids::{GroupId, PropertyId, UserId};

/// Result alias using [`CoreError`].
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the core library.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A property score was outside the normalized `[0, 1]` range.
    ScoreOutOfRange {
        /// The offending score.
        score: f64,
        /// The property the score was assigned to.
        property: PropertyId,
    },
    /// A user identifier did not exist in the repository.
    UnknownUser(UserId),
    /// A property identifier did not exist in the repository.
    UnknownProperty(PropertyId),
    /// A group identifier did not exist in the group set.
    UnknownGroup(GroupId),
    /// Bucketing was requested with an invalid number of buckets.
    InvalidBucketCount(usize),
    /// Bucket edges were not strictly increasing within `[0, 1]`.
    InvalidBucketEdges(Vec<f64>),
    /// A selection budget of zero was requested.
    ZeroBudget,
    /// Customization feedback referenced groups inconsistently (e.g. the same
    /// group both "must have" and "must not").
    ContradictoryFeedback(GroupId),
    /// A diversification instance failed structural validation — a
    /// non-finite/negative weight or a malformed membership list (see
    /// [`crate::instance::DiversificationInstance::validate`]).
    InvalidInstance {
        /// The first offending group, when the defect is group-local.
        group: Option<GroupId>,
        /// Which invariant was violated.
        reason: String,
    },
    /// The exhaustive optimal solver was asked for an instance too large to
    /// enumerate.
    InstanceTooLarge {
        /// Number of candidate users.
        users: usize,
        /// Requested budget.
        budget: usize,
        /// Maximum number of subsets the solver is willing to enumerate.
        limit: u128,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::ScoreOutOfRange { score, property } => write!(
                f,
                "score {score} for {property} is outside the normalized [0, 1] range"
            ),
            CoreError::UnknownUser(u) => write!(f, "unknown user {u}"),
            CoreError::UnknownProperty(p) => write!(f, "unknown property {p}"),
            CoreError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            CoreError::InvalidBucketCount(k) => {
                write!(f, "invalid bucket count {k}; at least 1 bucket is required")
            }
            CoreError::InvalidBucketEdges(edges) => {
                write!(
                    f,
                    "bucket edges {edges:?} are not strictly increasing in [0, 1]"
                )
            }
            CoreError::ZeroBudget => write!(f, "selection budget must be at least 1"),
            CoreError::ContradictoryFeedback(g) => write!(
                f,
                "customization feedback lists {g} as both required and forbidden"
            ),
            CoreError::InvalidInstance { group, reason } => match group {
                Some(g) => write!(f, "invalid diversification instance at {g}: {reason}"),
                None => write!(f, "invalid diversification instance: {reason}"),
            },
            CoreError::InstanceTooLarge {
                users,
                budget,
                limit,
            } => write!(
                f,
                "exhaustive search over C({users}, {budget}) subsets exceeds the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ScoreOutOfRange {
            score: 1.5,
            property: PropertyId(3),
        };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("PropertyId(3)"));

        let e = CoreError::InstanceTooLarge {
            users: 100,
            budget: 10,
            limit: 1_000_000,
        };
        assert!(e.to_string().contains("C(100, 10)"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::ZeroBudget, CoreError::ZeroBudget);
        assert_ne!(
            CoreError::UnknownUser(UserId(1)),
            CoreError::UnknownUser(UserId(2))
        );
    }
}
