//! Exhaustive optimal selection — the "Optimal Selection" baseline (§8.3).
//!
//! Enumerates all `C(|𝒰|, B)` user subsets by depth-first backtracking with
//! incremental score maintenance (adding/removing one user touches only that
//! user's groups). This is exponential and exists purely to measure the
//! greedy algorithm's empirical approximation ratio on tiny instances — the
//! paper reports e.g. a `0.998` ratio for selecting 5 of 40 users (§8.4) and
//! an execution time explosion beyond `|𝒰| = 40` (§8.5).

use crate::error::{CoreError, Result};
use crate::greedy::Selection;
use crate::ids::UserId;
use crate::instance::DiversificationInstance;
use crate::score::ScoreValue;

/// Number of subsets `C(n, k)`, saturating at `u128::MAX`.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul((n - i) as u128) {
            Some(v) => v / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    acc
}

/// Finds a subset of exactly `min(b, |𝒰|)` users maximizing `score_𝒢`.
///
/// Fails with [`CoreError::InstanceTooLarge`] if `C(|𝒰|, b)` exceeds
/// `limit`, and with [`CoreError::ZeroBudget`] for `b = 0`.
pub fn exact_select<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    b: usize,
    limit: u128,
) -> Result<Selection<W>> {
    if b == 0 {
        return Err(CoreError::ZeroBudget);
    }
    let n = inst.user_count();
    let b = b.min(n);
    let count = binomial(n, b);
    if count > limit {
        return Err(CoreError::InstanceTooLarge {
            users: n,
            budget: b,
            limit,
        });
    }

    let groups = inst.groups();
    let mut counts = vec![0u32; groups.len()];
    let mut current: Vec<UserId> = Vec::with_capacity(b);
    let mut score = W::zero();
    let mut best_score = W::zero();
    let mut best: Vec<UserId> = Vec::new();

    // Depth-first over increasing user indices; score maintained
    // incrementally via each user's group links.
    struct Frame {
        next: usize,
    }
    let mut stack = vec![Frame { next: 0 }];
    while let Some(frame) = stack.last_mut() {
        if current.len() == b {
            if best.is_empty() || score > best_score {
                best_score = score.clone();
                best = current.clone();
            }
            // Backtrack: remove the deepest user.
            stack.pop();
            if let Some(u) = current.pop() {
                remove_user(inst, u, &mut counts, &mut score);
            }
            continue;
        }
        let remaining_needed = b - current.len();
        if frame.next + remaining_needed > n {
            // Not enough users left to fill the subset.
            stack.pop();
            if let Some(u) = current.pop() {
                remove_user(inst, u, &mut counts, &mut score);
            }
            continue;
        }
        let u = UserId::from_index(frame.next);
        frame.next += 1;
        add_user(inst, u, &mut counts, &mut score);
        current.push(u);
        let next = frame.next;
        stack.push(Frame { next });
    }

    // Recompute covered counts and per-step gains for the winning subset.
    let mut covered_counts = vec![0u32; groups.len()];
    for &u in &best {
        for &g in groups.groups_of(u) {
            covered_counts[g.index()] += 1;
        }
    }
    let mut gains = Vec::with_capacity(best.len());
    let mut prefix: Vec<UserId> = Vec::with_capacity(best.len());
    let mut prev = W::zero();
    for &u in &best {
        prefix.push(u);
        let s = inst.score_of(&prefix);
        let mut gain = s.clone();
        gain.sub_assign(&prev);
        gains.push(gain);
        prev = s;
    }
    Ok(Selection::from_parts(
        best,
        gains,
        best_score,
        covered_counts,
    ))
}

fn add_user<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    u: UserId,
    counts: &mut [u32],
    score: &mut W,
) {
    for &g in inst.groups().groups_of(u) {
        let gi = g.index();
        if counts[gi] < inst.cov(g) {
            score.add_assign(inst.weight(g));
        }
        counts[gi] += 1;
    }
}

fn remove_user<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    u: UserId,
    counts: &mut [u32],
    score: &mut W,
) {
    for &g in inst.groups().groups_of(u) {
        let gi = g.index();
        counts[gi] -= 1;
        if counts[gi] < inst.cov(g) {
            score.sub_assign(inst.weight(g));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::group::GroupSet;

    fn demo() -> GroupSet {
        GroupSet::from_memberships(
            5,
            vec![
                vec![UserId(0), UserId(1)],
                vec![UserId(1), UserId(2)],
                vec![UserId(3)],
                vec![UserId(3), UserId(4)],
                vec![UserId(0), UserId(4)],
            ],
        )
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(40, 5), 658_008);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(10, 10), 1);
    }

    #[test]
    fn optimal_beats_or_matches_greedy() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![2.0, 2.0, 1.0, 2.0, 2.0], vec![1; 5]);
        for b in 1..=4 {
            let opt = exact_select(&inst, b, 1 << 20).unwrap();
            let grd = greedy_select(&inst, b);
            assert!(opt.score >= grd.score, "b={b}");
            assert_eq!(opt.users.len(), b);
            assert_eq!(opt.score, inst.score_of(&opt.users), "b={b}");
        }
    }

    #[test]
    fn exhaustive_matches_brute_force_recount() {
        // Cross-check the incremental score against direct evaluation over
        // every subset.
        let g = demo();
        let inst =
            DiversificationInstance::new(&g, vec![1.0, 3.0, 2.0, 1.0, 1.0], vec![1, 2, 1, 1, 2]);
        let b = 3;
        let opt = exact_select(&inst, b, 1 << 20).unwrap();
        let mut best = f64::NEG_INFINITY;
        let n = 5;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != b {
                continue;
            }
            let subset: Vec<UserId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(UserId::from_index)
                .collect();
            best = best.max(inst.score_of(&subset));
        }
        assert_eq!(opt.score, best);
    }

    #[test]
    fn budget_exceeding_population_is_clamped() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![1.0; 5], vec![1; 5]);
        let opt = exact_select(&inst, 10, 1 << 20).unwrap();
        assert_eq!(opt.users.len(), 5);
    }

    #[test]
    fn zero_budget_rejected() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![1.0; 5], vec![1; 5]);
        assert!(matches!(
            exact_select(&inst, 0, 1 << 20),
            Err(CoreError::ZeroBudget)
        ));
    }

    #[test]
    fn limit_enforced() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![1.0; 5], vec![1; 5]);
        assert!(matches!(
            exact_select(&inst, 2, 5),
            Err(CoreError::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn gains_sum_to_score() {
        let g = demo();
        let inst = DiversificationInstance::new(&g, vec![2.0, 1.0, 1.0, 3.0, 1.0], vec![1; 5]);
        let opt = exact_select(&inst, 3, 1 << 20).unwrap();
        let sum: f64 = opt.gains.iter().sum();
        assert!((sum - opt.score).abs() < 1e-12);
    }
}
