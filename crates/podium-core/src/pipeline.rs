//! High-level pipeline API: configure once, fit a repository, select and
//! explain — the programmatic equivalent of the Podium system's
//! Grouping → Selection → Visualization flow (Figure 1).
//!
//! ```
//! use podium_core::pipeline::Podium;
//! use podium_core::prelude::*;
//!
//! let mut repo = UserRepository::new();
//! let u = repo.add_user("u");
//! let v = repo.add_user("v");
//! let p = repo.intern_property("avgRating Mexican");
//! repo.set_score(u, p, 0.9).unwrap();
//! repo.set_score(v, p, 0.1).unwrap();
//!
//! let fitted = Podium::new().fit(&repo);
//! let selection = fitted.select(1);
//! assert_eq!(selection.users.len(), 1);
//! ```

use crate::bucket::{BucketingConfig, PropertyBuckets};
use crate::customize::{custom_select, CustomSelection, Feedback};
use crate::error::{CoreError, Result};
use crate::explain::SelectionReport;
use crate::greedy::{greedy_select_opts, Selection, TieBreak};
use crate::group::GroupSet;
use crate::instance::DiversificationInstance;
use crate::lazy_greedy::lazy_greedy_select;
use crate::profile::UserRepository;
use crate::weights::{CovScheme, WeightScheme};

/// Pipeline configuration builder.
#[derive(Debug, Clone)]
pub struct Podium {
    bucketing: BucketingConfig,
    weight: WeightScheme,
    cov: CovScheme,
    tie_break: TieBreak,
    lazy: bool,
}

impl Default for Podium {
    fn default() -> Self {
        Self::new()
    }
}

impl Podium {
    /// The paper's experimental defaults: adaptive 3-quantile bucketing, LBS
    /// weights, Single coverage, deterministic tie-breaking, eager greedy.
    pub fn new() -> Self {
        Self {
            bucketing: BucketingConfig::adaptive_default(),
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
            tie_break: TieBreak::FirstUser,
            lazy: false,
        }
    }

    /// Sets the bucketing configuration.
    pub fn bucketing(mut self, b: BucketingConfig) -> Self {
        self.bucketing = b;
        self
    }

    /// Sets the weight scheme.
    pub fn weights(mut self, w: WeightScheme) -> Self {
        self.weight = w;
        self
    }

    /// Sets the coverage scheme.
    pub fn coverage(mut self, c: CovScheme) -> Self {
        self.cov = c;
        self
    }

    /// Randomizes tie-breaking with the given seed (the paper's prototype
    /// "adds some randomness in randomly breaking ties", §10).
    pub fn random_ties(mut self, seed: u64) -> Self {
        self.tie_break = TieBreak::Seeded(seed);
        self
    }

    /// Uses the lazy (CELF) greedy engine.
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.lazy = lazy;
        self
    }

    /// Runs the offline grouping stage (Figure 1's Grouping Module):
    /// buckets every property and materializes the simple groups.
    pub fn fit<'r>(&self, repo: &'r UserRepository) -> FittedPodium<'r> {
        self.fit_scoped(repo, &|_| true)
    }

    /// Like [`Podium::fit`], but only properties accepted by `filter` form
    /// groups — the §7 named-configuration property scope (e.g. "only
    /// properties related to a restaurant in that name").
    pub fn fit_scoped<'r>(
        &self,
        repo: &'r UserRepository,
        filter: &dyn Fn(crate::ids::PropertyId) -> bool,
    ) -> FittedPodium<'r> {
        let buckets = self.bucketing.bucketize(repo);
        let groups = GroupSet::build_filtered(repo, &buckets, filter);
        FittedPodium {
            config: self.clone(),
            repo,
            buckets,
            groups,
        }
    }
}

/// A pipeline fitted to a repository: groups are materialized and repeated
/// selections (e.g. with different budgets or feedback) reuse them.
#[derive(Debug, Clone)]
pub struct FittedPodium<'r> {
    config: Podium,
    repo: &'r UserRepository,
    buckets: PropertyBuckets,
    groups: GroupSet,
}

impl<'r> FittedPodium<'r> {
    /// The materialized group set.
    pub fn groups(&self) -> &GroupSet {
        &self.groups
    }

    /// The per-property bucket sets.
    pub fn buckets(&self) -> &PropertyBuckets {
        &self.buckets
    }

    /// The fitted repository.
    pub fn repo(&self) -> &'r UserRepository {
        self.repo
    }

    /// Builds the diversification instance for a budget.
    pub fn instance(&self, budget: usize) -> DiversificationInstance<'_, f64> {
        DiversificationInstance::from_schemes(
            &self.groups,
            self.config.weight,
            self.config.cov,
            budget,
        )
    }

    /// Selects at most `budget` users (BASE-DIVERSITY).
    ///
    /// Infallible convenience wrapper: a zero budget yields an empty
    /// selection. Services that must distinguish "nothing to select" from
    /// "caller passed a nonsensical budget" should use
    /// [`FittedPodium::try_select`].
    pub fn select(&self, budget: usize) -> Selection<f64> {
        let inst = self.instance(budget);
        if self.config.lazy {
            lazy_greedy_select(&inst, budget)
        } else {
            greedy_select_opts(&inst, budget, None, self.config.tie_break)
        }
    }

    /// Like [`FittedPodium::select`], but surfaces invalid requests instead
    /// of clamping them: a zero budget is [`CoreError::ZeroBudget`] and a
    /// structurally broken instance (non-finite weights injected through a
    /// future weight override, corrupt group data) is
    /// [`CoreError::InvalidInstance`].
    pub fn try_select(&self, budget: usize) -> Result<Selection<f64>> {
        if budget == 0 {
            return Err(CoreError::ZeroBudget);
        }
        let inst = self.instance(budget);
        inst.validate()?;
        Ok(if self.config.lazy {
            lazy_greedy_select(&inst, budget)
        } else {
            greedy_select_opts(&inst, budget, None, self.config.tie_break)
        })
    }

    /// Selects with customization feedback (CUSTOM-DIVERSITY, §6).
    pub fn select_with_feedback(
        &self,
        budget: usize,
        feedback: &Feedback,
    ) -> Result<CustomSelection> {
        custom_select(
            self.repo,
            &self.groups,
            self.config.weight,
            self.config.cov,
            budget,
            feedback,
        )
    }

    /// Builds the explanation report for a selection (§5 / Figure 2).
    pub fn explain(
        &self,
        budget: usize,
        selection: &Selection<f64>,
        top_k: usize,
    ) -> SelectionReport {
        let inst = self.instance(budget);
        SelectionReport::build(&inst, self.repo, selection, top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;

    fn repo() -> UserRepository {
        crate::testutil::table2()
    }

    #[test]
    fn default_pipeline_reproduces_example_38() {
        let repo = repo();
        let fitted = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .fit(&repo);
        let sel = fitted.select(2);
        assert_eq!(sel.users, vec![UserId(0), UserId(4)]);
        assert_eq!(sel.score, 17.0);
    }

    #[test]
    fn fit_once_select_many() {
        let repo = repo();
        let fitted = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .fit(&repo);
        let s1 = fitted.select(1);
        let s3 = fitted.select(3);
        assert_eq!(s1.users.len(), 1);
        assert_eq!(s3.users.len(), 3);
        assert_eq!(s1.users[0], s3.users[0], "greedy prefixes agree");
    }

    #[test]
    fn lazy_engine_matches_eager_score() {
        let repo = repo();
        let eager = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .fit(&repo)
            .select(3);
        let lazy = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .lazy(true)
            .fit(&repo)
            .select(3);
        assert_eq!(eager.score, lazy.score);
    }

    #[test]
    fn random_ties_keep_score() {
        let repo = repo();
        for seed in 0..8 {
            let sel = Podium::new()
                .bucketing(BucketingConfig::paper_default())
                .random_ties(seed)
                .fit(&repo)
                .select(2);
            assert_eq!(sel.score, 17.0);
        }
    }

    #[test]
    fn try_select_surfaces_zero_budget() {
        let repo = repo();
        let fitted = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .fit(&repo);
        assert_eq!(fitted.try_select(0).unwrap_err(), CoreError::ZeroBudget);
        let ok = fitted.try_select(2).unwrap();
        assert_eq!(ok.users, fitted.select(2).users);
    }

    #[test]
    fn feedback_through_pipeline() {
        let repo = repo();
        let fitted = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .fit(&repo);
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let feedback = Feedback {
            must_have: fitted.groups().groups_of_property(mex),
            ..Feedback::default()
        };
        let sel = fitted.select_with_feedback(2, &feedback).unwrap();
        assert_eq!(sel.pool_size, 4, "Carol filtered");
    }

    #[test]
    fn explain_through_pipeline() {
        let repo = repo();
        let fitted = Podium::new()
            .bucketing(BucketingConfig::paper_default())
            .fit(&repo);
        let sel = fitted.select(2);
        let report = fitted.explain(2, &sel, 5);
        assert_eq!(report.users.len(), 2);
        assert!(report.top_weight_coverage > 0.9);
    }
}
