//! Explanations of diversification results (paper §5, Definition 5.1).
//!
//! Three complementary explanation types are provided:
//!
//! * **Group explanations** `⟨label, wei(G), cov(G)⟩` — what a group means
//!   and how important it is;
//! * **User explanations** `{G ∈ 𝒢 | u ∈ G}` — why a user was selected;
//! * **Subset-group explanations** `⟨cov(G), |U ∩ G|⟩` — required versus
//!   actual coverage of a group by the selected subset.
//!
//! [`SelectionReport`] aggregates these into the payload the Podium UI
//! renders (Figure 2): per-user top-weight covered groups (left pane), the
//! covered percentage of top-weight groups (middle pane), and per-property
//! population-vs-subset score distributions (right pane).

use serde::Serialize;

use crate::greedy::Selection;
use crate::ids::{GroupId, PropertyId, UserId};
use crate::instance::DiversificationInstance;
use crate::profile::UserRepository;
use crate::score::ScoreValue;

/// Group explanation `⟨l_G, wei(G), cov(G)⟩` (Definition 5.1).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupExplanation {
    /// The group.
    pub group: GroupId,
    /// Human-readable label combining property and bucket labels.
    pub label: String,
    /// The group's weight, rendered as `f64` for display.
    pub weight: f64,
    /// The required coverage `cov(G)`.
    pub cov: u32,
}

/// User explanation: the groups a selected user represents (Definition 5.1).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UserExplanation {
    /// The user being explained.
    pub user: UserId,
    /// The user's display name.
    pub name: String,
    /// Groups the user belongs to, sorted by descending weight.
    pub groups: Vec<GroupExplanation>,
}

/// Subset-group explanation `⟨cov(G), |U ∩ G|⟩` (Definition 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SubsetGroupExplanation {
    /// The group.
    pub group: GroupId,
    /// Required coverage `cov(G)`.
    pub required: u32,
    /// Actual coverage `|U ∩ G|`.
    pub actual: u32,
}

impl SubsetGroupExplanation {
    /// Whether the subset covers the group (`actual ≥ required`).
    #[inline]
    pub fn is_covered(&self) -> bool {
        self.actual >= self.required
    }

    /// Whether the group is over-represented (`actual > required`) — not
    /// rewarded but also not penalized by the score (§3.2).
    #[inline]
    pub fn is_over_represented(&self) -> bool {
        self.actual > self.required
    }
}

/// Builds the group explanation of `g`.
pub fn explain_group<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    repo: &UserRepository,
    g: GroupId,
) -> GroupExplanation {
    GroupExplanation {
        group: g,
        label: inst.groups().label(g, repo),
        weight: inst.weight(g).as_f64(),
        cov: inst.cov(g),
    }
}

/// Builds the user explanation of `u`: the groups `u` represents, sorted by
/// descending weight (the UI shows the top-weight ones).
pub fn explain_user<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    repo: &UserRepository,
    u: UserId,
) -> UserExplanation {
    let mut groups: Vec<GroupExplanation> = inst
        .groups()
        .groups_of(u)
        .iter()
        .map(|&g| explain_group(inst, repo, g))
        .collect();
    groups.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.group.cmp(&b.group)));
    UserExplanation {
        user: u,
        name: repo.user_name(u).unwrap_or("<unknown>").to_owned(),
        groups,
    }
}

/// Builds the subset-group explanation of `g` for a completed selection.
pub fn explain_subset_group<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    selection: &Selection<W>,
    g: GroupId,
) -> SubsetGroupExplanation {
    SubsetGroupExplanation {
        group: g,
        required: inst.cov(g),
        actual: selection.covered_counts[g.index()],
    }
}

/// Counterfactual explanation: *why was this user not selected?*
///
/// An extension of §5's explanation vocabulary in the direction of §10
/// ("proposing relevant refinements for the user"): it contrasts the
/// residual marginal contribution the user would still add with the gains
/// the greedy algorithm actually accepted, and splits the user's groups
/// into novel (still uncovered) versus redundant (already covered by the
/// selection) — the actionable signal for a client who expected the user
/// to be picked.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WhyNotExplanation {
    /// The user being explained.
    pub user: UserId,
    /// Display name.
    pub name: String,
    /// The marginal gain the user would add to the *final* selection.
    pub residual_gain: f64,
    /// The smallest gain the greedy run actually accepted (the "bar").
    pub smallest_accepted_gain: f64,
    /// The user's groups that the selection still leaves under-covered.
    pub novel_groups: Vec<GroupId>,
    /// The user's groups already covered by the selection.
    pub redundant_groups: Vec<GroupId>,
}

impl WhyNotExplanation {
    /// Whether the user was simply dominated: everything they offer is
    /// already covered.
    pub fn fully_redundant(&self) -> bool {
        self.novel_groups.is_empty()
    }
}

/// Builds the why-not explanation of an unselected user.
///
/// Returns `None` if `u` *was* selected.
pub fn explain_why_not<W: ScoreValue>(
    inst: &DiversificationInstance<'_, W>,
    repo: &UserRepository,
    selection: &Selection<W>,
    u: UserId,
) -> Option<WhyNotExplanation> {
    if selection.contains(u) {
        return None;
    }
    let mut residual = W::zero();
    let mut novel_groups = Vec::new();
    let mut redundant_groups = Vec::new();
    for &g in inst.groups().groups_of(u) {
        if selection.covered_counts[g.index()] < inst.cov(g) {
            residual.add_assign(inst.weight(g));
            novel_groups.push(g);
        } else {
            redundant_groups.push(g);
        }
    }
    let smallest = selection
        .gains
        .iter()
        .map(ScoreValue::as_f64)
        .fold(f64::INFINITY, f64::min);
    Some(WhyNotExplanation {
        user: u,
        name: repo.user_name(u).unwrap_or("<unknown>").to_owned(),
        residual_gain: residual.as_f64(),
        smallest_accepted_gain: if smallest.is_finite() { smallest } else { 0.0 },
        novel_groups,
        redundant_groups,
    })
}

/// One row of the per-property distribution comparison (Figure 2, right
/// pane): population vs. selected-subset share of each bucket.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DistributionRow {
    /// Bucket label (e.g. `"high"`).
    pub bucket_label: String,
    /// Fraction of the population's property-holders in this bucket.
    pub population_share: f64,
    /// Fraction of the subset's property-holders in this bucket.
    pub subset_share: f64,
}

/// A full explanation report for one selection — the data behind the Podium
/// explanation page (Figure 2).
#[derive(Debug, Clone, Serialize)]
pub struct SelectionReport {
    /// Per selected user: their explanation (left pane).
    pub users: Vec<UserExplanation>,
    /// Subset-group explanations for every group, ordered by descending
    /// weight (middle pane's green/red list).
    pub groups: Vec<(GroupExplanation, SubsetGroupExplanation)>,
    /// Fraction of the `top_k` heaviest groups covered by the subset (the
    /// "97%" headline of Figure 2).
    pub top_weight_coverage: f64,
    /// How many groups were considered "top weight".
    pub top_k: usize,
}

impl SelectionReport {
    /// Builds the report. `top_k` bounds the headline coverage statistic.
    pub fn build<W: ScoreValue>(
        inst: &DiversificationInstance<'_, W>,
        repo: &UserRepository,
        selection: &Selection<W>,
        top_k: usize,
    ) -> Self {
        let users = selection
            .users
            .iter()
            .map(|&u| explain_user(inst, repo, u))
            .collect();
        let mut groups: Vec<(GroupExplanation, SubsetGroupExplanation)> = inst
            .groups()
            .ids()
            .map(|g| {
                (
                    explain_group(inst, repo, g),
                    explain_subset_group(inst, selection, g),
                )
            })
            .collect();
        groups.sort_by(|a, b| {
            b.0.weight
                .total_cmp(&a.0.weight)
                .then(a.0.group.cmp(&b.0.group))
        });
        let top_k = top_k.min(groups.len());
        let top_weight_coverage = if top_k == 0 {
            1.0 // no groups to cover: vacuously complete
        } else {
            let covered = groups[..top_k]
                .iter()
                .filter(|(_, s)| s.is_covered())
                .count();
            covered as f64 / top_k as f64
        };
        Self {
            users,
            groups,
            top_weight_coverage,
            top_k,
        }
    }

    /// The distribution comparison for one property (Figure 2, right pane):
    /// per bucket, the share of property-holders in the population vs. in
    /// the selected subset. Shares are weighted by group size exactly as the
    /// group-bucket distribution similarity metric prescribes (§8.2).
    pub fn property_distribution<W: ScoreValue>(
        inst: &DiversificationInstance<'_, W>,
        repo: &UserRepository,
        selection: &Selection<W>,
        property: PropertyId,
    ) -> Vec<DistributionRow> {
        let groups = inst.groups();
        let prop_groups = groups.groups_of_property(property);
        let pop_total: usize = prop_groups
            .iter()
            .filter_map(|&g| groups.group(g).ok())
            .map(|g| g.size())
            .sum();
        let sub_total: u32 = prop_groups
            .iter()
            .map(|&g| selection.covered_counts[g.index()])
            .sum();
        prop_groups
            .iter()
            .map(|&g| {
                let size = groups.group(g).map(|gr| gr.size()).unwrap_or(0);
                let bucket_label = groups
                    .bucket_of_group(g)
                    .map(|b| {
                        if b.label.is_empty() {
                            b.range_string()
                        } else {
                            b.label.clone()
                        }
                    })
                    .unwrap_or_else(|| groups.label(g, repo));
                DistributionRow {
                    bucket_label,
                    population_share: if pop_total == 0 {
                        0.0
                    } else {
                        size as f64 / pop_total as f64
                    },
                    subset_share: if sub_total == 0 {
                        0.0
                    } else {
                        f64::from(selection.covered_counts[g.index()]) / f64::from(sub_total)
                    },
                }
            })
            .collect()
    }

    /// Renders the report as plain text (used by examples and the harness).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "covered {:.0}% of the top-{} groups by weight",
            self.top_weight_coverage * 100.0,
            self.top_k
        );
        for ue in &self.users {
            let top: Vec<&str> = ue.groups.iter().take(3).map(|g| g.label.as_str()).collect();
            let _ = writeln!(out, "  {} represents: {}", ue.name, top.join("; "));
        }
        for (ge, se) in self.groups.iter().take(self.top_k) {
            let mark = if se.is_covered() { '+' } else { '-' };
            let _ = writeln!(
                out,
                "  [{mark}] {} (weight {:.0}, required {}, actual {})",
                ge.label, ge.weight, se.required, se.actual
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketingConfig;
    use crate::greedy::greedy_select;
    use crate::group::GroupSet;
    use crate::weights::{CovScheme, WeightScheme};

    fn setup() -> (UserRepository, GroupSet) {
        let repo = crate::testutil::table2();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        (repo, groups)
    }

    #[test]
    fn example_52_group_explanations() {
        let (repo, groups) = setup();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        // ⟨"high avgRating Mexican", 3, 1⟩
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let high = groups
            .groups_of_property(mex)
            .into_iter()
            .find(|&g| groups.group(g).unwrap().size() == 3)
            .unwrap();
        let e = explain_group(&inst, &repo, high);
        assert_eq!(e.label, "high avgRating Mexican");
        assert_eq!(e.weight, 3.0);
        assert_eq!(e.cov, 1);
        // ⟨"livesIn Tokyo", 2, 1⟩ — Boolean bucket label empty.
        let tokyo = repo.property_id("livesIn Tokyo").unwrap();
        let tg = groups.groups_of_property(tokyo)[0];
        let e = explain_group(&inst, &repo, tg);
        assert_eq!(e.label, "livesIn Tokyo");
        assert_eq!(e.weight, 2.0);
    }

    #[test]
    fn example_52_user_and_subset_explanations() {
        let (repo, groups) = setup();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2);
        assert_eq!(sel.users, vec![UserId(0), UserId(4)], "{{Alice, Eve}}");

        let alice = explain_user(&inst, &repo, UserId(0));
        let labels: Vec<&str> = alice.groups.iter().map(|g| g.label.as_str()).collect();
        assert!(labels.contains(&"high avgRating Mexican"));
        assert!(labels.contains(&"livesIn Tokyo"));
        assert_eq!(alice.groups.len(), 6);
        // Sorted by weight descending: the weight-3 group first.
        assert_eq!(alice.groups[0].label, "high avgRating Mexican");

        // Subset-group explanation ⟨1, 2⟩ for "high avgRating Mexican":
        // both Alice and Eve belong, exceeding the required coverage.
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let high = groups
            .groups_of_property(mex)
            .into_iter()
            .find(|&g| groups.group(g).unwrap().size() == 3)
            .unwrap();
        let se = explain_subset_group(&inst, &sel, high);
        assert_eq!((se.required, se.actual), (1, 2));
        assert!(se.is_covered());
        assert!(se.is_over_represented());
    }

    #[test]
    fn report_top_weight_coverage() {
        let (repo, groups) = setup();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2);
        let report = SelectionReport::build(&inst, &repo, &sel, 5);
        assert_eq!(report.top_k, 5);
        assert!(report.top_weight_coverage > 0.0 && report.top_weight_coverage <= 1.0);
        assert_eq!(report.users.len(), 2);
        assert_eq!(report.groups.len(), groups.len());
        // Groups sorted by descending weight.
        assert!(report
            .groups
            .windows(2)
            .all(|w| w[0].0.weight >= w[1].0.weight));
        let text = report.render();
        assert!(text.contains("Alice"));
        assert!(text.contains("top-5"));
    }

    #[test]
    fn full_selection_covers_all_top_groups() {
        let (repo, groups) = setup();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            5,
        );
        let sel = greedy_select(&inst, 5);
        let report = SelectionReport::build(&inst, &repo, &sel, groups.len());
        assert_eq!(report.top_weight_coverage, 1.0, "everyone selected");
    }

    #[test]
    fn why_not_explanations() {
        let (repo, groups) = setup();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2); // {Alice, Eve}

        // Selected users get no why-not explanation.
        assert!(explain_why_not(&inst, &repo, &sel, UserId(0)).is_none());

        // David: Tokyo and avgMex-high are covered by Alice/Eve; his only
        // novel group is medium visitFreq Mexican — but Eve covered that
        // too. Residual = 0 means fully dominated.
        let david = explain_why_not(&inst, &repo, &sel, UserId(3)).unwrap();
        assert_eq!(david.name, "David");
        assert!(david.fully_redundant(), "{david:?}");
        assert_eq!(david.residual_gain, 0.0);
        assert_eq!(david.redundant_groups.len(), 3);

        // Bob still offers five uncovered singleton groups (weight 5 > bar 7? no:
        // residual 5 < smallest accepted gain 7 — that's *why* he lost).
        let bob = explain_why_not(&inst, &repo, &sel, UserId(1)).unwrap();
        assert_eq!(bob.residual_gain, 5.0);
        assert_eq!(bob.smallest_accepted_gain, 7.0);
        assert!(!bob.fully_redundant());
        assert_eq!(bob.novel_groups.len(), 5);
        assert!(bob.residual_gain < bob.smallest_accepted_gain);
    }

    #[test]
    fn property_distribution_rows() {
        let (repo, groups) = setup();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = greedy_select(&inst, 2);
        let mex = repo.property_id("avgRating Mexican").unwrap();
        let rows = SelectionReport::property_distribution(&inst, &repo, &sel, mex);
        assert_eq!(rows.len(), 2, "low and high buckets materialized");
        let pop_sum: f64 = rows.iter().map(|r| r.population_share).sum();
        let sub_sum: f64 = rows.iter().map(|r| r.subset_share).sum();
        assert!((pop_sum - 1.0).abs() < 1e-12);
        assert!((sub_sum - 1.0).abs() < 1e-12);
        // Alice & Eve are both "high": subset share of high = 1.0.
        let high = rows.iter().find(|r| r.bucket_label == "high").unwrap();
        assert_eq!(high.subset_share, 1.0);
        assert!((high.population_share - 0.75).abs() < 1e-12);
    }
}
