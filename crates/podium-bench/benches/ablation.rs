//! Criterion bench: design-choice ablations — eager vs. lazy (CELF) greedy,
//! and the cost of each weight scheme (f64 LBS vs. exact big-integer EBS).

use criterion::{criterion_group, criterion_main, Criterion};
use podium_core::bucket::BucketingConfig;
use podium_core::greedy::greedy_select;
use podium_core::group::GroupSet;
use podium_core::instance::DiversificationInstance;
use podium_core::lazy_greedy::lazy_greedy_select;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::tripadvisor;

fn bench_eager_vs_lazy(c: &mut Criterion) {
    let dataset = tripadvisor(0.1, 8).generate();
    let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
    let groups = GroupSet::build(&dataset.repo, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );
    let mut g = c.benchmark_group("eager_vs_lazy");
    g.bench_function("eager_b8", |b| {
        b.iter(|| greedy_select(std::hint::black_box(&inst), 8));
    });
    g.bench_function("lazy_b8", |b| {
        b.iter(|| lazy_greedy_select(std::hint::black_box(&inst), 8));
    });
    g.bench_function("eager_b64", |b| {
        b.iter(|| greedy_select(std::hint::black_box(&inst), 64));
    });
    g.bench_function("lazy_b64", |b| {
        b.iter(|| lazy_greedy_select(std::hint::black_box(&inst), 64));
    });
    g.finish();
}

fn bench_weight_schemes(c: &mut Criterion) {
    let dataset = tripadvisor(0.1, 8).generate();
    let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
    let groups = GroupSet::build(&dataset.repo, &buckets);
    let mut g = c.benchmark_group("weight_schemes");
    let lbs = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );
    g.bench_function("lbs_f64", |b| {
        b.iter(|| greedy_select(std::hint::black_box(&lbs), 8));
    });
    let ebs = DiversificationInstance::ebs(&groups, CovScheme::Single, 8);
    g.bench_function("ebs_exact", |b| {
        b.iter(|| greedy_select(std::hint::black_box(&ebs), 8));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_eager_vs_lazy, bench_weight_schemes
}
criterion_main!(benches);
