//! Criterion bench: the six 1-D interval-splitting strategies of §3.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use podium_core::bucket::{BucketStrategy, BucketingConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn values(n: usize) -> Vec<f64> {
    // Trimodal data so every strategy has work to do.
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|_| {
            let idx: usize = rng.random_range(0..3);
            let mode = [0.15f64, 0.5, 0.85][idx];
            (mode + (rng.random::<f64>() - 0.5) * 0.2).clamp(0.0, 1.0)
        })
        .collect()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucketing");
    let strategies = [
        ("equal_width", BucketStrategy::EqualWidth),
        ("quantile", BucketStrategy::Quantile),
        ("jenks", BucketStrategy::Jenks),
        ("kmeans1d", BucketStrategy::KMeans1D),
        ("kde", BucketStrategy::Kde),
        ("em", BucketStrategy::Em),
    ];
    for (name, strat) in strategies {
        let cfg = BucketingConfig {
            strategy: strat,
            buckets_per_property: 3,
            detect_boolean: false,
        };
        // Jenks is O(k n²): keep its input modest.
        let n = if name == "jenks" { 400 } else { 2000 };
        let base = values(n);
        group.bench_with_input(BenchmarkId::new(name, n), &base, |b, base| {
            b.iter_batched(
                || base.clone(),
                |mut v| cfg.bucketize_values(std::hint::black_box(&mut v)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies
}
criterion_main!(benches);
