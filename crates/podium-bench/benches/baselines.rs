//! Criterion bench: every selector of the §8.3 lineup (plus the Table 1
//! extensions) on the same repository, budget 8.

use criterion::{criterion_group, criterion_main, Criterion};
use podium_baselines::prelude::*;
use podium_baselines::stratified::Strata;
use podium_bench::selectors::PodiumSelector;
use podium_data::synth::tripadvisor;

fn bench_lineup(c: &mut Criterion) {
    let dataset = tripadvisor(0.08, 9).generate();
    let repo = &dataset.repo;
    let mut g = c.benchmark_group("selectors_b8");
    g.sample_size(10);

    let podium = PodiumSelector::paper_default();
    g.bench_function("podium", |b| {
        b.iter(|| podium.select(std::hint::black_box(repo), 8))
    });
    let random = RandomSelector::new(9);
    g.bench_function("random", |b| {
        b.iter(|| random.select(std::hint::black_box(repo), 8))
    });
    let clustering = KMeansSelector::new(9);
    g.bench_function("clustering", |b| {
        b.iter(|| clustering.select(std::hint::black_box(repo), 8))
    });
    let distance = DistanceSelector::new(9);
    g.bench_function("distance", |b| {
        b.iter(|| distance.select(std::hint::black_box(repo), 8))
    });
    let stratified = StratifiedSelector::new(9, Strata::PropertyFamily("livesIn ".into()));
    g.bench_function("stratified", |b| {
        b.iter(|| stratified.select(std::hint::black_box(repo), 8))
    });
    let mmr = MmrSelector::new(0.5);
    g.bench_function("mmr", |b| {
        b.iter(|| mmr.select(std::hint::black_box(repo), 8))
    });
    g.finish();
}

criterion_group!(benches, bench_lineup);
criterion_main!(benches);
