//! Criterion bench behind Figures 5 and 6: end-to-end selection time of
//! Podium vs. the Clustering and Distance baselines as the population and
//! the profile size grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use podium_baselines::prelude::*;
use podium_bench::selectors::PodiumSelector;
use podium_core::engine::EngineVariant;
use podium_data::synth::tripadvisor;

fn bench_users_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_users_sweep");
    group.sample_size(10);
    for &users in &[250usize, 500, 1000] {
        let dataset = tripadvisor(users as f64 / 4475.0, 5).generate();
        let repo = &dataset.repo;
        let clustering = KMeansSelector::new(5);
        let distance = DistanceSelector::new(5);
        for variant in EngineVariant::ALL {
            let podium = PodiumSelector::paper_default().with_engine(variant);
            let id = BenchmarkId::new(format!("podium_{}", variant.label()), users);
            group.bench_with_input(id, repo, |b, r| {
                b.iter(|| podium.select(std::hint::black_box(r), 8));
            });
        }
        group.bench_with_input(BenchmarkId::new("clustering", users), repo, |b, r| {
            b.iter(|| clustering.select(std::hint::black_box(r), 8));
        });
        group.bench_with_input(BenchmarkId::new("distance", users), repo, |b, r| {
            b.iter(|| distance.select(std::hint::black_box(r), 8));
        });
    }
    group.finish();
}

fn bench_profile_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_profile_sweep");
    group.sample_size(10);
    for &leaves in &[3usize, 6, 12] {
        let mut cfg = tripadvisor(0.07, 6);
        cfg.leaves_per_region = leaves;
        let dataset = cfg.generate();
        let repo = &dataset.repo;
        let podium = PodiumSelector::paper_default();
        let label = format!("{:.0}props", repo.mean_profile_size());
        group.bench_with_input(BenchmarkId::new("podium", label), repo, |b, r| {
            b.iter(|| podium.select(std::hint::black_box(r), 8));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_users_sweep, bench_profile_sweep);
criterion_main!(benches);
