//! Criterion bench: the greedy selection core (Algorithm 1) across
//! population sizes — the microbenchmark behind Figure 5's Podium series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use podium_core::bucket::BucketingConfig;
use podium_core::engine::{EngineVariant, SelectionEngine};
use podium_core::greedy::greedy_select;
use podium_core::group::GroupSet;
use podium_core::ids::UserId;
use podium_core::instance::DiversificationInstance;
use podium_core::score::ScoreValue;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::tripadvisor;

/// Deterministic synthetic group structure for engine throughput runs:
/// `n / 2` overlapping groups of 3–18 users (the scale a property bucket
/// reaches on the paper's review datasets), so every variant sees the same
/// instance without paying dataset bucketing costs.
fn synthetic_groups(n: usize) -> GroupSet {
    let mut state = 0x2545_F491_4F6C_DD1Du64 ^ n as u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let memberships: Vec<Vec<UserId>> = (0..n / 2)
        .map(|_| {
            let size = 3 + next() % 16;
            (0..size).map(|_| UserId((next() % n) as u32)).collect()
        })
        .collect();
    GroupSet::from_memberships(n, memberships)
}

/// The greedy loop exactly as it existed before the selection engine:
/// nested-Vec adjacency through `GroupSet`, full argmax scan per round,
/// decremental marginal maintenance, identical bookkeeping — and generic
/// over `W: ScoreValue`, like the original (a concrete `f64` copy optimizes
/// very differently and would not be a faithful baseline). Kept here so the
/// engine speedups are measured against the historical code path.
#[allow(clippy::needless_range_loop)] // verbatim historical loop shape
fn seed_eager<W: ScoreValue>(inst: &DiversificationInstance<W>, b: usize) -> (Vec<UserId>, W) {
    let groups = inst.groups();
    let n = groups.user_count();
    let mut available = vec![true; n];
    let mut cov_rem: Vec<u32> = groups.ids().map(|g| inst.cov(g)).collect();
    let mut marg: Vec<W> = vec![W::zero(); n];
    for u in 0..n {
        for &g in groups.groups_of(UserId(u as u32)) {
            if cov_rem[g.index()] > 0 && !inst.weight(g).is_zero() {
                marg[u].add_assign(inst.weight(g));
            }
        }
    }
    let mut users = Vec::with_capacity(b.min(n));
    let mut gains = Vec::with_capacity(b.min(n));
    let mut score = W::zero();
    let mut covered_counts = vec![0u32; groups.len()];
    for _ in 0..b {
        let mut best: Option<usize> = None;
        for u in 0..n {
            if !available[u] {
                continue;
            }
            match best {
                None => best = Some(u),
                Some(bu) => {
                    if marg[u]
                        .partial_cmp(&marg[bu])
                        .is_some_and(|o| o == std::cmp::Ordering::Greater)
                    {
                        best = Some(u);
                    }
                }
            }
        }
        let Some(u) = best else { break };
        available[u] = false;
        let uid = UserId(u as u32);
        score.add_assign(&marg[u]);
        gains.push(marg[u].clone());
        users.push(uid);
        for &g in groups.groups_of(uid) {
            let gi = g.index();
            covered_counts[gi] += 1;
            if cov_rem[gi] == 0 {
                continue;
            }
            cov_rem[gi] -= 1;
            if cov_rem[gi] == 0 && !inst.weight(g).is_zero() {
                let w = inst.weight(g).clone();
                for &m in &groups.group(g).expect("group id from iterator").members {
                    if available[m.index()] {
                        marg[m.index()].sub_assign(&w);
                    }
                }
            }
        }
    }
    (users, score)
}

fn bench_engine_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_variants");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let groups = synthetic_groups(n);
        for &budget in &[8usize, 64, 256] {
            let inst = DiversificationInstance::from_schemes(
                &groups,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                budget,
            );
            let engine = SelectionEngine::new(&inst);
            for variant in EngineVariant::ALL {
                let id = BenchmarkId::new(variant.label(), format!("n{n}/b{budget}"));
                group.bench_with_input(id, &engine, |b, engine| {
                    b.iter(|| std::hint::black_box(engine).select(variant, budget));
                });
            }
            // The public one-shot API (CSR rebuilt per call).
            let id = BenchmarkId::new("eager_one_shot", format!("n{n}/b{budget}"));
            group.bench_with_input(id, &inst, |b, inst| {
                b.iter(|| greedy_select(std::hint::black_box(inst), budget));
            });
            // The pre-engine implementation, for before/after comparison.
            let id = BenchmarkId::new("seed_eager", format!("n{n}/b{budget}"));
            group.bench_with_input(id, &inst, |b, inst| {
                b.iter(|| seed_eager(std::hint::black_box(inst), budget));
            });
        }
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_select");
    for &users in &[200usize, 400, 800] {
        let scale = users as f64 / 4475.0;
        let dataset = tripadvisor(scale, 7).generate();
        let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
        let groups = GroupSet::build(&dataset.repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            8,
        );
        group.bench_with_input(BenchmarkId::new("users", users), &inst, |b, inst| {
            b.iter(|| greedy_select(std::hint::black_box(inst), 8));
        });
    }
    group.finish();
}

fn bench_group_build(c: &mut Criterion) {
    let dataset = tripadvisor(0.1, 7).generate();
    let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
    c.bench_function("group_set_build", |b| {
        b.iter(|| GroupSet::build(std::hint::black_box(&dataset.repo), &buckets));
    });
}

fn bench_incremental_updates(c: &mut Criterion) {
    use podium_core::incremental::IncrementalGroups;
    let dataset = tripadvisor(0.05, 7).generate();
    let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
    let inc = IncrementalGroups::build(&dataset.repo, &buckets);
    let prop = podium_core::ids::PropertyId(0);
    let mut g = c.benchmark_group("incremental");
    // One point update vs a full rebuild of the same structure.
    g.bench_function("point_update", |b| {
        b.iter_batched(
            || inc.clone(),
            |mut inc| {
                inc.update_score(podium_core::ids::UserId(0), prop, Some(0.9));
                inc
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("full_rebuild", |b| {
        b.iter(|| GroupSet::build(std::hint::black_box(&dataset.repo), &buckets));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_greedy, bench_engine_variants, bench_group_build, bench_incremental_updates
}
criterion_main!(benches);
