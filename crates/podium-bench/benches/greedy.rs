//! Criterion bench: the greedy selection core (Algorithm 1) across
//! population sizes — the microbenchmark behind Figure 5's Podium series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use podium_core::bucket::BucketingConfig;
use podium_core::greedy::greedy_select;
use podium_core::group::GroupSet;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::tripadvisor;

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_select");
    for &users in &[200usize, 400, 800] {
        let scale = users as f64 / 4475.0;
        let dataset = tripadvisor(scale, 7).generate();
        let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
        let groups = GroupSet::build(&dataset.repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            8,
        );
        group.bench_with_input(BenchmarkId::new("users", users), &inst, |b, inst| {
            b.iter(|| greedy_select(std::hint::black_box(inst), 8));
        });
    }
    group.finish();
}

fn bench_group_build(c: &mut Criterion) {
    let dataset = tripadvisor(0.1, 7).generate();
    let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
    c.bench_function("group_set_build", |b| {
        b.iter(|| GroupSet::build(std::hint::black_box(&dataset.repo), &buckets));
    });
}

fn bench_incremental_updates(c: &mut Criterion) {
    use podium_core::incremental::IncrementalGroups;
    let dataset = tripadvisor(0.05, 7).generate();
    let buckets = BucketingConfig::adaptive_default().bucketize(&dataset.repo);
    let inc = IncrementalGroups::build(&dataset.repo, &buckets);
    let prop = podium_core::ids::PropertyId(0);
    let mut g = c.benchmark_group("incremental");
    // One point update vs a full rebuild of the same structure.
    g.bench_function("point_update", |b| {
        b.iter_batched(
            || inc.clone(),
            |mut inc| {
                inc.update_score(podium_core::ids::UserId(0), prop, Some(0.9));
                inc
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("full_rebuild", |b| {
        b.iter(|| GroupSet::build(std::hint::black_box(&dataset.repo), &buckets));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_greedy, bench_group_build, bench_incremental_updates
}
criterion_main!(benches);
