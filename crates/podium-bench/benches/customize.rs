//! Criterion bench: customization overhead — CUSTOM-DIVERSITY vs
//! BASE-DIVERSITY on the same repository, plus the pool-refinement step in
//! isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use podium_core::bucket::BucketingConfig;
use podium_core::customize::{custom_select, refine_pool, Feedback};
use podium_core::greedy::greedy_select;
use podium_core::group::GroupSet;
use podium_core::ids::GroupId;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::yelp;

fn bench_customization(c: &mut Criterion) {
    let dataset = yelp(0.01, 10).generate();
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );
    // 40 priority groups + a must-have on the largest group.
    let mut by_size: Vec<GroupId> = groups.ids().collect();
    by_size.sort_by_key(|&g| std::cmp::Reverse(groups.group(g).unwrap().size()));
    let feedback = Feedback {
        must_have: vec![by_size[0]],
        priority: by_size.iter().skip(1).take(40).copied().collect(),
        ..Feedback::default()
    };

    let mut g = c.benchmark_group("customization");
    g.bench_function("base_diversity_b8", |b| {
        b.iter(|| greedy_select(std::hint::black_box(&inst), 8));
    });
    g.bench_function("custom_diversity_b8", |b| {
        b.iter(|| {
            custom_select(
                std::hint::black_box(repo),
                &groups,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                8,
                &feedback,
            )
            .unwrap()
        });
    });
    g.bench_function("refine_pool", |b| {
        b.iter(|| refine_pool(std::hint::black_box(&groups), &feedback).unwrap());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_customization
}
criterion_main!(benches);
