//! Integration tests for the `experiments` driver's failure isolation:
//! a panicking or stalling experiment must not abort the run, must be
//! recorded in the JSONL status file, and must flip the exit code.

use std::path::PathBuf;
use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn temp_status(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "podium-exp-status-{name}-{}.jsonl",
        std::process::id()
    ));
    p
}

/// Parses the one-line JSON entries written by the driver (no serde in
/// this crate's dev-deps; the format is flat and fully driver-controlled).
fn entries(path: &PathBuf) -> Vec<(String, String)> {
    let text = std::fs::read_to_string(path).expect("status file written");
    text.lines()
        .map(|l| {
            let field = |key: &str| {
                let tag = format!("\"{key}\":\"");
                let start = l.find(&tag).unwrap_or_else(|| panic!("{key} in {l}")) + tag.len();
                l[start..start + l[start..].find('"').unwrap()].to_owned()
            };
            (field("name"), field("outcome"))
        })
        .collect()
}

#[test]
fn panicking_experiment_does_not_abort_the_run() {
    let status = temp_status("panic");
    let out = experiments()
        .args([
            "selftest-panic,table2",
            "--scale",
            "0.05",
            "--status-file",
            status.to_str().unwrap(),
        ])
        .output()
        .expect("run experiments binary");
    assert!(
        !out.status.success(),
        "a failed experiment must flip the exit code"
    );
    let got = entries(&status);
    assert_eq!(
        got,
        vec![
            ("selftest-panic".to_owned(), "panicked".to_owned()),
            ("table2".to_owned(), "ok".to_owned()),
        ],
        "the panic is recorded AND the following experiment still ran"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Table 2"),
        "table2 output produced after the panic:\n{stdout}"
    );
    assert!(stdout.contains("1/2 ok"), "summary line present:\n{stdout}");
    std::fs::remove_file(&status).ok();
}

#[test]
fn watchdog_times_out_stalled_experiments() {
    let status = temp_status("slow");
    let out = experiments()
        .args([
            "selftest-slow,table2",
            "--timeout-secs",
            "1",
            "--status-file",
            status.to_str().unwrap(),
        ])
        .output()
        .expect("run experiments binary");
    assert!(!out.status.success());
    let got = entries(&status);
    assert_eq!(
        got,
        vec![
            ("selftest-slow".to_owned(), "timed_out".to_owned()),
            ("table2".to_owned(), "ok".to_owned()),
        ],
        "the stall is bounded by the watchdog and the run continues"
    );
    std::fs::remove_file(&status).ok();
}

#[test]
fn clean_run_exits_zero_with_ok_entries() {
    let status = temp_status("clean");
    let out = experiments()
        .args(["table2", "--status-file", status.to_str().unwrap()])
        .output()
        .expect("run experiments binary");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        entries(&status),
        vec![("table2".to_owned(), "ok".to_owned())]
    );
    std::fs::remove_file(&status).ok();
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = experiments()
        .args(["fig9000"])
        .output()
        .expect("run experiments binary");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}
