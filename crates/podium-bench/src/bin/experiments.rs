//! The experiment driver: regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! experiments <id> [--scale X] [--budget B] [--seed S]
//! ```
//! where `<id>` is one of `table2`, `fig3a`, `fig3b`, `fig3c`, `fig3d`,
//! `fig4`, `fig5`, `fig6`, `approx`, `optscale`, `ablation`, or `all`.
//!
//! Run with `--release`; the scalability and approximation experiments are
//! meaningless in debug builds.

use podium_bench::opinion_exp::OpinionConfig;
use podium_bench::{
    approx_exp, budget_exp, custom_exp, datasets, intrinsic_exp, opinion_exp, scalability_exp,
    table2_exp,
};

use podium_bench::harness::{run_isolated, ExperimentStatus};
use std::io::Write as _;
use std::time::Duration;

/// Experiment ids runnable by this driver, in `all` order. The two
/// `selftest-*` ids exercise the isolation harness itself (a deliberate
/// panic, a deliberate stall) and are therefore excluded from `all`.
const EXPERIMENTS: &[(&str, bool)] = &[
    ("table2", true),
    ("fig3a", true),
    ("fig3b", true),
    ("fig3c", true),
    ("fig3d", true),
    ("fig4", true),
    ("fig5", true),
    ("fig6", true),
    ("approx", true),
    ("optscale", true),
    ("bsweep", true),
    ("ablation", true),
    ("serving", true),
    ("drift", true),
    ("selftest-panic", false),
    ("selftest-slow", false),
];

#[derive(Clone)]
struct Args {
    experiment: String,
    scale: f64,
    budget: usize,
    seed: u64,
    timeout_secs: u64,
    status_file: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_owned(),
        scale: 1.0,
        budget: datasets::DEFAULT_BUDGET,
        seed: 2020,
        timeout_secs: 0,
        status_file: None,
    };
    let mut it = std::env::args().skip(1);
    let mut positional = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--budget" => {
                args.budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--budget needs an integer"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--timeout-secs" => {
                args.timeout_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--timeout-secs needs an integer"));
            }
            "--status-file" => {
                args.status_file = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--status-file needs a path"))
                        .into(),
                );
            }
            "--help" | "-h" => usage(""),
            other => positional.push(other.to_owned()),
        }
    }
    if let Some(e) = positional.into_iter().next() {
        args.experiment = e;
    }
    args
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: experiments <id>[,<id>...] [--scale X] [--budget B] [--seed S] \
         [--timeout-secs T] [--status-file PATH]\n\
         ids: table2, fig3a, fig3b, fig3c, fig3d, fig4, fig5, fig6, approx, \
         optscale, bsweep, ablation, serving, drift, selftest-panic, \
         selftest-slow, all\n\
         Each experiment runs panic-isolated: a failure is recorded in the \
         status file (JSONL) and the run continues; the exit code is \
         nonzero iff any experiment failed."
    );
    std::process::exit(2);
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Prints paired-bootstrap significance of Podium vs. each competitor on
/// topic+sentiment coverage (per-destination pairing).
fn print_significance(detailed: &[(String, Vec<podium_metrics::opinion::OpinionMetrics>)]) {
    let podium = &detailed[0];
    println!("paired bootstrap (topic+sentiment coverage, Podium vs. each, 95% CI):");
    for (name, per_dest) in &detailed[1..] {
        let a: Vec<f64> = podium
            .1
            .iter()
            .map(|m| m.topic_sentiment_coverage)
            .collect();
        let b: Vec<f64> = per_dest
            .iter()
            .map(|m| m.topic_sentiment_coverage)
            .collect();
        let r = podium_metrics::significance::paired_bootstrap(&a, &b, 0.95, 2000, 2020);
        println!(
            "  vs {name:<11} Δ = {:+.4} [{:+.4}, {:+.4}]{}",
            r.mean_diff,
            r.ci_low,
            r.ci_high,
            if r.significant() {
                "  (significant)"
            } else {
                ""
            }
        );
    }
}

/// Prints the §8.4 pairwise-intersection diagnostic for a dataset.
fn print_overlap(dataset: &podium_data::synth::SynthDataset, budget: usize, seed: u64) {
    println!("mean pairwise property intersection of the selected subset (§8.4):");
    for (name, stats) in intrinsic_exp::overlap_comparison(dataset, budget, seed) {
        println!(
            "  {name:<11} {:>7.1} shared properties/pair (jaccard distance {:.3})",
            stats.mean_intersection, stats.mean_jaccard_distance
        );
    }
}

fn main() {
    let args = parse_args();

    // Expand the comma-separated id list; `all` means every non-selftest
    // experiment, in registry order.
    let mut ids: Vec<String> = Vec::new();
    for id in args.experiment.split(',').filter(|s| !s.is_empty()) {
        if id == "all" {
            ids.extend(
                EXPERIMENTS
                    .iter()
                    .filter(|(_, in_all)| *in_all)
                    .map(|(name, _)| (*name).to_owned()),
            );
        } else if EXPERIMENTS.iter().any(|(name, _)| *name == id) {
            ids.push(id.to_owned());
        } else {
            usage(&format!("unknown experiment '{id}'"));
        }
    }
    if ids.is_empty() {
        usage("no experiments requested");
    }

    let timeout = if args.timeout_secs == 0 {
        // "No watchdog". recv_timeout overflows on Duration::MAX, so cap
        // at a year.
        Duration::from_secs(365 * 24 * 3600)
    } else {
        Duration::from_secs(args.timeout_secs)
    };
    let status_path = args
        .status_file
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("target/experiments-status.jsonl"));
    if let Some(dir) = status_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut status_file = std::fs::File::create(&status_path).unwrap_or_else(|e| {
        eprintln!(
            "error: cannot open status file {}: {e}",
            status_path.display()
        );
        std::process::exit(2);
    });

    // Run every requested experiment, each isolated on its own thread:
    // a panic or watchdog timeout becomes a JSONL status entry and the
    // sweep continues with the next experiment.
    let mut statuses: Vec<ExperimentStatus> = Vec::new();
    for id in &ids {
        let run = args.clone();
        let name = id.clone();
        let status = run_isolated(id, timeout, move || run_one(&name, &run));
        match &status.outcome {
            podium_bench::harness::Outcome::Ok => {}
            podium_bench::harness::Outcome::Panicked(msg) => {
                eprintln!("experiment '{id}' PANICKED: {msg}");
            }
            podium_bench::harness::Outcome::TimedOut => {
                eprintln!(
                    "experiment '{id}' TIMED OUT after {:.0}s (watchdog: {}s)",
                    status.seconds, args.timeout_secs
                );
            }
        }
        let _ = writeln!(
            status_file,
            "{}",
            status.to_json(u64::try_from(statuses.len()).unwrap_or(u64::MAX))
        );
        let _ = status_file.flush();
        statuses.push(status);
    }

    let failed: Vec<&ExperimentStatus> = statuses.iter().filter(|s| !s.is_ok()).collect();
    println!(
        "\n==== run summary: {}/{} ok ({}) ====",
        statuses.len() - failed.len(),
        statuses.len(),
        status_path.display()
    );
    for s in &statuses {
        println!(
            "  {:<16} {:<9} {:>8.1}s",
            s.name,
            match &s.outcome {
                podium_bench::harness::Outcome::Ok => "ok",
                podium_bench::harness::Outcome::Panicked(_) => "panicked",
                podium_bench::harness::Outcome::TimedOut => "timed-out",
            },
            s.seconds
        );
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}

/// Runs one experiment body. Panics propagate to the isolation harness.
/// Returns optional JSON metrics that the harness embeds as the status
/// row's `details` field.
fn run_one(id: &str, args: &Args) -> Option<String> {
    let mut details = None;
    match id {
        "table2" => {
            header("Table 2 running example (Examples 3.5-6.4)");
            print!("{}", table2_exp::run());
        }
        "fig3a" => {
            header("Figure 3a: TripAdvisor-like intrinsic diversity (3-seed average)");
            let tables: Vec<_> = (0..3)
                .map(|i| {
                    let dataset = datasets::ta_dataset(args.scale, args.seed + i);
                    if i == 0 {
                        println!(
                            "dataset: {} users, {} properties (per seed)",
                            dataset.repo.user_count(),
                            dataset.repo.property_count()
                        );
                    }
                    intrinsic_exp::run_intrinsic(
                        &dataset,
                        args.budget,
                        datasets::TOP_K,
                        args.seed + i,
                    )
                })
                .collect();
            print!(
                "{}",
                podium_metrics::report::ComparisonTable::average(&tables).render()
            );
            print_overlap(
                &datasets::ta_dataset(args.scale, args.seed),
                args.budget,
                args.seed,
            );
        }
        "fig3b" => {
            header("Figure 3b: TripAdvisor-like opinion diversity");
            let dataset = datasets::ta_dataset(args.scale, args.seed);
            let (table, detailed) = opinion_exp::run_opinion_detailed(
                &dataset,
                OpinionConfig {
                    destinations: 50,
                    min_reviews: 8,
                    budget: args.budget,
                    with_usefulness: false,
                    seed: args.seed,
                },
            );
            print!("{}", table.render());
            print_significance(&detailed);
        }
        "fig3c" => {
            header("Figure 3c: Yelp-like intrinsic diversity (3-seed average)");
            let tables: Vec<_> = (0..3)
                .map(|i| {
                    let dataset = datasets::yelp_dataset(args.scale, args.seed + i);
                    if i == 0 {
                        println!(
                            "dataset: {} users, {} properties (per seed)",
                            dataset.repo.user_count(),
                            dataset.repo.property_count()
                        );
                    }
                    intrinsic_exp::run_intrinsic(
                        &dataset,
                        args.budget,
                        datasets::TOP_K,
                        args.seed + i,
                    )
                })
                .collect();
            print!(
                "{}",
                podium_metrics::report::ComparisonTable::average(&tables).render()
            );
            print_overlap(
                &datasets::yelp_dataset(args.scale, args.seed),
                args.budget,
                args.seed,
            );
        }
        "fig3d" => {
            header("Figure 3d: Yelp-like opinion diversity");
            let dataset = datasets::yelp_dataset(args.scale, args.seed);
            let (table, detailed) = opinion_exp::run_opinion_detailed(
                &dataset,
                OpinionConfig {
                    destinations: 130,
                    min_reviews: 10,
                    budget: args.budget,
                    with_usefulness: true,
                    seed: args.seed,
                },
            );
            print!("{}", table.render());
            print_significance(&detailed);
        }
        "fig4" => {
            header("Figure 4: Yelp-like intrinsic diversity with customization");
            let dataset = datasets::yelp_dataset(args.scale, args.seed);
            let rows = custom_exp::run_customization(
                &dataset,
                args.budget,
                datasets::TOP_K,
                &[0, 20, 40, 60, 80],
                20,
                args.seed,
            );
            print!("{}", custom_exp::render(&rows));
        }
        "fig5" => {
            header("Figure 5: execution time vs |U| (profiles capped ~200 properties)");
            let counts: Vec<usize> = [1000, 2000, 4000, 8000]
                .iter()
                .map(|&n| ((n as f64 * args.scale) as usize).max(100))
                .collect();
            let rows = scalability_exp::run_user_sweep(&counts, args.budget, args.seed);
            print!("{}", scalability_exp::render(&rows, "users"));
            let x: Vec<f64> = rows.iter().map(|r| r.users as f64).collect();
            let y: Vec<f64> = rows.iter().map(|r| r.podium_ms).collect();
            println!(
                "podium linearity R\u{b2} = {:.4}",
                scalability_exp::linear_r2(&x, &y)
            );
        }
        "fig6" => {
            header("Figure 6: execution time vs profile size (|U| fixed)");
            let users = ((8000.0 * args.scale) as usize).max(200);
            let rows =
                scalability_exp::run_profile_sweep(users, &[2, 4, 8, 16], args.budget, args.seed);
            print!("{}", scalability_exp::render(&rows, "profile"));
            let x: Vec<f64> = rows.iter().map(|r| r.mean_profile).collect();
            let y: Vec<f64> = rows.iter().map(|r| r.podium_ms).collect();
            println!(
                "podium linearity R\u{b2} = {:.4}",
                scalability_exp::linear_r2(&x, &y)
            );
        }
        "approx" => {
            header("\u{a7}8.4: approximation ratio, greedy vs optimal (5 of 40 users)");
            let dataset = datasets::ta_dataset(args.scale.max(0.1), args.seed);
            let results = approx_exp::run_approx(&dataset, 40, 5, 5, args.seed);
            print!("{}", approx_exp::render_approx(&results));
        }
        "optscale" => {
            header("\u{a7}8.5: Optimal baseline runtime blow-up (B = 5)");
            let dataset = datasets::ta_dataset(args.scale.max(0.1), args.seed);
            let rows = approx_exp::run_optscale(&dataset, &[20, 30, 40], 5, args.seed);
            print!("{}", approx_exp::render_optscale(&rows));
        }
        "bsweep" => {
            header("\u{a7}8.4 budget sweep: quality vs B (top-k coverage, Podium gap)");
            let dataset = datasets::yelp_dataset(args.scale, args.seed);
            let rows = budget_exp::run_budget_sweep(
                &dataset,
                &[2, 4, 8, 16, 32],
                datasets::TOP_K,
                args.seed,
            );
            print!("{}", budget_exp::render(&rows));
        }
        "ablation" => {
            header("Ablation: weight/coverage schemes, bucketing, eager vs lazy greedy");
            run_ablation(args.scale, args.budget, args.seed);
        }
        "serving" => {
            header("Serving: sustained select throughput under live updates (podium-service)");
            let mut report = podium_bench::serving_exp::run(args.scale, args.seed);
            print!("{}", podium_bench::serving_exp::render(&report));
            let row_path = std::path::Path::new("target/bench-serve.jsonl");
            if let Some(dir) = row_path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            report.seq = podium_service::bench::next_row_seq(
                &std::fs::read_to_string(row_path).unwrap_or_default(),
            );
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(row_path)
                .and_then(|mut f| writeln!(f, "{}", report.to_json()));
            match appended {
                Ok(()) => println!("recorded: {}", row_path.display()),
                Err(e) => println!("could not record {}: {e}", row_path.display()),
            }
            assert_eq!(report.failed, 0, "no failed responses under load");
            assert_eq!(report.inconsistent, 0, "no inconsistent responses");
            details = Some(podium_bench::serving_exp::details_json(&report));
        }
        "drift" => {
            header("Drift: publish latency and memo retention under profile drift");
            let mut reports = podium_bench::serving_exp::run_drift(args.scale, args.seed);
            print!("{}", podium_bench::serving_exp::render_drift(&reports));
            // Each cell is also one bench-serve JSONL row.
            let row_path = std::path::Path::new("target/bench-serve.jsonl");
            if let Some(dir) = row_path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let base_seq = podium_service::bench::next_row_seq(
                &std::fs::read_to_string(row_path).unwrap_or_default(),
            );
            for (offset, report) in reports.iter_mut().enumerate() {
                report.seq = base_seq.saturating_add(u64::try_from(offset).unwrap_or(u64::MAX));
            }
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(row_path)
            {
                for report in &reports {
                    let _ = writeln!(f, "{}", report.to_json());
                }
                println!("recorded: {}", row_path.display());
            }
            // The checked-in artifact: measured numbers for this PR.
            let artifact = podium_bench::serving_exp::bench6_json(&reports);
            match std::fs::write("BENCH_6.json", &artifact) {
                Ok(()) => println!("wrote BENCH_6.json"),
                Err(e) => println!("could not write BENCH_6.json: {e}"),
            }
            for report in &reports {
                assert_eq!(report.failed, 0, "no failed responses under drift");
                assert_eq!(report.inconsistent, 0, "no inconsistent responses");
            }
            details = Some(podium_bench::serving_exp::drift_details_json(&reports));
        }
        "selftest-panic" => {
            header("isolation self-test: deliberate panic");
            // podium-lint: allow(panic) — deliberate: exercises the runner's catch_unwind isolation
            panic!("selftest-panic: this experiment always panics");
        }
        "selftest-slow" => {
            header("isolation self-test: deliberate stall");
            std::thread::sleep(Duration::from_secs(3600));
        }
        // podium-lint: allow(unreachable) — experiment ids are validated against the registry before dispatch
        other => unreachable!("id '{other}' was validated against the registry"),
    }
    details
}

/// Design-choice ablations called out in DESIGN.md: how the weight scheme,
/// coverage scheme and bucketing strategy change the intrinsic metrics, and
/// eager vs. lazy greedy equivalence/runtime.
fn run_ablation(scale: f64, budget: usize, seed: u64) {
    use podium_bench::selectors::PodiumSelector;
    use podium_core::bucket::{BucketStrategy, BucketingConfig};
    use podium_core::group::GroupSet;
    use podium_core::instance::DiversificationInstance;
    use podium_core::weights::{CovScheme, WeightScheme};
    use podium_metrics::intrinsic::IntrinsicMetrics;

    let dataset = datasets::ta_dataset(scale * 0.5, seed);
    let repo = &dataset.repo;
    println!(
        "dataset: {} users, {} properties",
        repo.user_count(),
        repo.property_count()
    );

    // Weight × coverage ablation, evaluated under the LBS+Single objective.
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    let eval = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        budget,
    );
    println!("\nweight × coverage ablation (evaluated under LBS+Single):");
    for (wname, w) in [
        ("Iden", WeightScheme::Identical),
        ("LBS", WeightScheme::LinearBySize),
    ] {
        for (cname, c) in [
            ("Single", CovScheme::Single),
            ("Prop", CovScheme::Proportional),
        ] {
            let inst = DiversificationInstance::from_schemes(&groups, w, c, budget);
            let sel = podium_core::greedy::greedy_select(&inst, budget);
            let m = IntrinsicMetrics::evaluate(&eval, &sel.users, datasets::TOP_K);
            println!(
                "  {wname:>4} + {cname:<6} -> score {:>10.1}, top-k {:.3}, dist-sim {:.3}",
                m.total_score, m.top_k_coverage, m.distribution_similarity
            );
        }
    }
    // EBS (exact big-weights).
    {
        let inst = DiversificationInstance::ebs(&groups, CovScheme::Single, budget);
        let sel = podium_core::greedy::greedy_select(&inst, budget);
        let m = IntrinsicMetrics::evaluate(&eval, &sel.users, datasets::TOP_K);
        println!(
            "  {:>4} + {:<6} -> score {:>10.1}, top-k {:.3}, dist-sim {:.3}",
            "EBS", "Single", m.total_score, m.top_k_coverage, m.distribution_similarity
        );
    }

    // Bucketing strategy ablation.
    println!("\nbucketing strategy ablation (3 buckets/property):");
    for (name, strat) in [
        ("equal-width", BucketStrategy::EqualWidth),
        ("quantile", BucketStrategy::Quantile),
        ("jenks", BucketStrategy::Jenks),
        ("kmeans-1d", BucketStrategy::KMeans1D),
        ("kde", BucketStrategy::Kde),
        ("em", BucketStrategy::Em),
    ] {
        let cfg = BucketingConfig {
            strategy: strat,
            buckets_per_property: 3,
            detect_boolean: true,
        };
        let t0 = std::time::Instant::now();
        let b = cfg.bucketize(repo);
        let g = GroupSet::build(repo, &b);
        let inst = DiversificationInstance::from_schemes(
            &g,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            budget,
        );
        let sel = podium_core::greedy::greedy_select(&inst, budget);
        let m = IntrinsicMetrics::evaluate(&eval, &sel.users, datasets::TOP_K);
        println!(
            "  {name:>11}: {:>6} groups, eval score {:>10.1}, top-k {:.3} ({:.0} ms)",
            g.len(),
            m.total_score,
            m.top_k_coverage,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    // Group-definition ablation (§3.2): simple groups vs multidimensional
    // clusters as groups. Both selections are evaluated under the
    // simple-group LBS+Single objective.
    println!("\ngroup definition ablation (evaluated under simple-group LBS+Single):");
    {
        let sel = podium_core::greedy::greedy_select(&eval, budget);
        let m = IntrinsicMetrics::evaluate(&eval, &sel.users, datasets::TOP_K);
        println!(
            "  {:>22}: {:>6} groups, eval score {:>10.1}, top-k {:.3}",
            "simple groups",
            groups.len(),
            m.total_score,
            m.top_k_coverage
        );
        for k in [budget, 4 * budget] {
            let cgroups = podium_baselines::clustering::cluster_group_set(repo, k, seed);
            let cinst = DiversificationInstance::from_schemes(
                &cgroups,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                budget,
            );
            let csel = podium_core::greedy::greedy_select(&cinst, budget);
            let cm = IntrinsicMetrics::evaluate(&eval, &csel.users, datasets::TOP_K);
            println!(
                "  {:>22}: {:>6} groups, eval score {:>10.1}, top-k {:.3}",
                format!("{k} multidim clusters"),
                cgroups.len(),
                cm.total_score,
                cm.top_k_coverage
            );
        }
    }

    // Greedy engines: eager vs lazy (CELF) vs stochastic.
    println!("\ngreedy engine ablation:");
    for (name, lazy) in [("eager", false), ("lazy (CELF)", true)] {
        let selector = PodiumSelector::paper_default().with_lazy(lazy);
        let t0 = std::time::Instant::now();
        let sel = podium_baselines::selector::Selector::select(&selector, repo, budget);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let score = eval.score_of(&sel);
        println!("  {name:>16}: score {score:>10.1} in {ms:.1} ms");
    }
    for eps in [0.2, 0.05] {
        let t0 = std::time::Instant::now();
        let sel =
            podium_core::stochastic_greedy::stochastic_greedy_select(&eval, budget, eps, seed);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let score = eval.score_of(&sel.users);
        println!("  stochastic ε={eps:<4}: score {score:>10.1} in {ms:.1} ms");
    }

    // Randomized weights (§10 future work): selection diversity under noise.
    println!("\nnoisy LBS weights (§10, amplitude sweep, 5 seeds each):");
    let base = WeightScheme::LinearBySize.weights(&groups);
    let covs = CovScheme::Single.cov(&groups, budget);
    for amplitude in [0.0, 0.2, 0.5] {
        let mut scores = Vec::new();
        let mut distinct: std::collections::HashSet<Vec<podium_core::ids::UserId>> =
            std::collections::HashSet::new();
        for s in 0..5u64 {
            let noisy = podium_core::weights::noisy_weights(&base, amplitude, seed + s);
            let inst = DiversificationInstance::new(&groups, noisy, covs.clone());
            let sel = podium_core::greedy::greedy_select(&inst, budget);
            scores.push(eval.score_of(&sel.users));
            let mut users = sel.users;
            users.sort();
            distinct.insert(users);
        }
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        println!(
            "  amplitude {amplitude:>4}: mean eval score {mean:>10.1}, {} distinct selections",
            distinct.len()
        );
    }
}
