//! Scalability experiments — Figures 5 (runtime vs `|𝒰|`) and 6 (runtime
//! vs profile size).
//!
//! Each sweep point generates a synthetic repository and times the
//! end-to-end selection (including group construction for Podium and
//! clustering for k-means — each algorithm pays its own preprocessing, as
//! in the paper's system-level measurements). Expected shapes (§8.5):
//! Podium and Distance scale linearly and are roughly an order of magnitude
//! faster than Clustering; Random is immediate and omitted.

use std::time::Instant;

use podium_baselines::prelude::*;
use podium_data::derive::{DeriveOptions, PropertyKinds};
use podium_data::synth::SynthConfig;

use crate::selectors::PodiumSelector;

/// One timing row of a scalability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalRow {
    /// Number of users in the repository.
    pub users: usize,
    /// Mean profile size (number of properties per user).
    pub mean_profile: f64,
    /// Total distinct properties.
    pub properties: usize,
    /// Podium end-to-end selection time (ms).
    pub podium_ms: f64,
    /// Clustering selection time (ms).
    pub clustering_ms: f64,
    /// Distance-based selection time (ms).
    pub distance_ms: f64,
}

/// Synthetic config for scalability sweeps: profiles capped at ~200
/// properties as in §8.5's user sweep.
fn sweep_config(users: usize, leaves_per_region: usize, seed: u64) -> SynthConfig {
    SynthConfig {
        name: format!("scal-{users}u-{leaves_per_region}l"),
        seed,
        users,
        destinations: (users / 2).max(50),
        cities: 10,
        age_groups: 4,
        archetypes: 6,
        regions: 6,
        leaves_per_region,
        topics: 12,
        mean_reviews_per_user: 12.0,
        review_dispersion: 0.6,
        rating_noise: 0.7,
        preference_gain: 0.8,
        zipf_exponent: 1.0,
        include_demographics: true,
        useful_votes: false,
        derive: DeriveOptions {
            kinds: PropertyKinds::all(),
            min_visits: 1,
            generalize: true,
            city_properties: false, // keep profiles near the §8.5 200-property cap
        },
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn measure(
    repo: &podium_core::profile::UserRepository,
    budget: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let podium = PodiumSelector::paper_default();
    let clustering = KMeansSelector::new(seed);
    let distance = DistanceSelector::new(seed);
    let p = time_ms(|| {
        let _ = podium.select(repo, budget);
    });
    let c = time_ms(|| {
        let _ = clustering.select(repo, budget);
    });
    let d = time_ms(|| {
        let _ = distance.select(repo, budget);
    });
    (p, c, d)
}

/// Figure 5 sweep: runtime as a function of the number of users.
pub fn run_user_sweep(user_counts: &[usize], budget: usize, seed: u64) -> Vec<ScalRow> {
    user_counts
        .iter()
        .map(|&n| {
            let dataset = sweep_config(n, 6, seed).generate();
            let (p, c, d) = measure(&dataset.repo, budget, seed);
            ScalRow {
                users: n,
                mean_profile: dataset.repo.mean_profile_size(),
                properties: dataset.repo.property_count(),
                podium_ms: p,
                clustering_ms: c,
                distance_ms: d,
            }
        })
        .collect()
}

/// Figure 6 sweep: runtime as a function of the profile size (the paper
/// fixes `|𝒰| = 8K` and varies the properties assembling the profiles).
pub fn run_profile_sweep(
    users: usize,
    leaves_per_region: &[usize],
    budget: usize,
    seed: u64,
) -> Vec<ScalRow> {
    leaves_per_region
        .iter()
        .map(|&l| {
            let dataset = sweep_config(users, l, seed).generate();
            let (p, c, d) = measure(&dataset.repo, budget, seed);
            ScalRow {
                users,
                mean_profile: dataset.repo.mean_profile_size(),
                properties: dataset.repo.property_count(),
                podium_ms: p,
                clustering_ms: c,
                distance_ms: d,
            }
        })
        .collect()
}

/// Renders sweep rows as an aligned text table. `x_label` names the swept
/// variable ("users" or "profile").
pub fn render(rows: &[ScalRow], x_label: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>9} | {:>12} | {:>10} | {:>11} | {:>13} | {:>11}",
        x_label, "mean profile", "properties", "podium (ms)", "cluster (ms)", "dist (ms)"
    );
    let _ = writeln!(out, "{:-<80}", "");
    for r in rows {
        let x = if x_label == "users" {
            r.users as f64
        } else {
            r.mean_profile
        };
        let _ = writeln!(
            out,
            "{:>9.1} | {:>12.1} | {:>10} | {:>11.1} | {:>13.1} | {:>11.1}",
            x, r.mean_profile, r.properties, r.podium_ms, r.clustering_ms, r.distance_ms
        );
    }
    out
}

/// Least-squares linearity check: returns R² of `y` regressed on `x`.
/// Used by tests to confirm the linear-scaling claim of §8.5.
pub fn linear_r2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if x.len() < 2 {
        return 1.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let syy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_sweep_produces_rows() {
        let rows = run_user_sweep(&[100, 200], 8, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.podium_ms >= 0.0));
        assert!(rows[1].users > rows[0].users);
    }

    #[test]
    fn profile_sweep_grows_profiles() {
        let rows = run_profile_sweep(150, &[2, 8], 8, 2);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].mean_profile > rows[0].mean_profile,
            "more leaves -> bigger profiles: {rows:?}"
        );
    }

    #[test]
    fn linear_r2_sanity() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.1, 5.9, 8.0];
        assert!(linear_r2(&x, &y) > 0.99);
        let quad = [1.0, 4.0, 9.0, 16.0];
        assert!(linear_r2(&x, &quad) < linear_r2(&x, &y));
    }

    #[test]
    fn render_contains_headers() {
        let rows = run_user_sweep(&[80], 4, 3);
        let text = render(&rows, "users");
        assert!(text.contains("podium (ms)"));
    }
}
