//! Panic-isolated experiment execution.
//!
//! A multi-hour `experiments all` sweep must not lose every completed
//! result because one experiment hits a corner-case panic or wedges on a
//! pathological input. [`run_isolated`] runs each experiment on its own
//! thread behind [`std::panic::catch_unwind`] and a wall-clock watchdog,
//! turning "the process died at 3am" into a structured
//! [`ExperimentStatus`] that the driver records as a JSONL entry and
//! reports in its exit code.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How an isolated experiment ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion.
    Ok,
    /// Panicked; carries the panic payload when it was a string.
    Panicked(String),
    /// Exceeded the watchdog timeout. The runaway thread is detached — it
    /// keeps burning its CPU until the process exits, but the driver moves
    /// on to the next experiment.
    TimedOut,
}

/// Schema tag on every status row (see `podium-sim`'s stream reader).
pub const STATUS_SCHEMA: &str = "podium.experiment-status/1";

/// The recorded result of one isolated experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentStatus {
    /// Experiment id (e.g. `"fig3a"`).
    pub name: String,
    /// How it ended.
    pub outcome: Outcome,
    /// Wall-clock duration in seconds (time until the watchdog fired, for
    /// timeouts).
    pub seconds: f64,
    /// Optional experiment-supplied metrics, already rendered as a JSON
    /// value (object or scalar). Embedded verbatim in the status row as
    /// the `details` field so the JSONL carries e.g. cache and queue
    /// statistics without the harness knowing their shape.
    pub details: Option<String>,
}

impl ExperimentStatus {
    /// Whether the experiment completed normally.
    pub fn is_ok(&self) -> bool {
        self.outcome == Outcome::Ok
    }

    /// One-line JSON rendering for the status file (JSONL, one experiment
    /// per line). `seq` is the row's position in the stream — the status
    /// file is rewritten per sweep, so the driver passes the loop index.
    pub fn to_json(&self, seq: u64) -> String {
        let mut out = format!(
            "{{\"schema\":\"{STATUS_SCHEMA}\",\"seq\":{seq},\"name\":\"{}\",\"outcome\":\"{}\",\"seconds\":{:.3}",
            json_escape(&self.name),
            match self.outcome {
                Outcome::Ok => "ok",
                Outcome::Panicked(_) => "panicked",
                Outcome::TimedOut => "timed_out",
            },
            self.seconds
        );
        if let Outcome::Panicked(msg) = &self.outcome {
            out.push_str(&format!(",\"message\":\"{}\"", json_escape(msg)));
        }
        if let Some(details) = &self.details {
            // Already-JSON by contract; embedded raw, not re-escaped.
            out.push_str(&format!(",\"details\":{details}"));
        }
        out.push('}');
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a caught panic payload (the `Box<dyn Any>` from
/// [`catch_unwind`]) as a message string.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f` on a dedicated thread, catching panics and enforcing
/// `timeout` (pass [`Duration::MAX`] for no watchdog). Returns a status
/// instead of propagating failure: a panic or timeout in one experiment
/// must not abort the driver.
///
/// `f` may return a JSON-rendered metrics value (`Some("{...}")`) that is
/// carried into [`ExperimentStatus::details`]; experiments without
/// metrics return `None`.
///
/// On timeout the worker thread is detached, not killed — Rust has no
/// safe thread cancellation — so a truly wedged experiment still occupies
/// a core until the process exits. The driver's job is to finish the
/// remaining experiments and report, which this guarantees.
pub fn run_isolated<F>(name: &str, timeout: Duration, f: F) -> ExperimentStatus
where
    F: FnOnce() -> Option<String> + Send + 'static,
{
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name(format!("exp-{name}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            // The receiver disappears after a timeout; a failed send just
            // means nobody is listening anymore.
            let _ = tx.send(result.map_err(payload_message));
        })
        .expect("spawn experiment thread");
    let (outcome, details) = match rx.recv_timeout(timeout) {
        Ok(Ok(details)) => (Outcome::Ok, details),
        Ok(Err(msg)) => (Outcome::Panicked(msg), None),
        Err(mpsc::RecvTimeoutError::Timeout) => (Outcome::TimedOut, None),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker died without sending — only possible if the send
            // itself panicked; treat as a panic with no message.
            (Outcome::Panicked("worker thread died".to_owned()), None)
        }
    };
    ExperimentStatus {
        name: name.to_owned(),
        outcome,
        seconds: start.elapsed().as_secs_f64(),
        details,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_run_is_ok() {
        let s = run_isolated("fine", Duration::from_secs(10), || None);
        assert!(s.is_ok());
        assert_eq!(
            s.to_json(4),
            format!(
                "{{\"schema\":\"{STATUS_SCHEMA}\",\"seq\":4,\"name\":\"fine\",\"outcome\":\"ok\",\"seconds\":{:.3}}}",
                s.seconds
            )
        );
    }

    #[test]
    fn details_are_embedded_raw_in_the_status_row() {
        let s = run_isolated("detailed", Duration::from_secs(10), || {
            Some("{\"cache_hits\":3,\"queue_depth_max\":1}".to_owned())
        });
        assert!(s.is_ok());
        assert_eq!(
            s.details.as_deref(),
            Some("{\"cache_hits\":3,\"queue_depth_max\":1}")
        );
        let row = s.to_json(0);
        assert!(
            row.contains(",\"details\":{\"cache_hits\":3,\"queue_depth_max\":1}}"),
            "{row}"
        );
    }

    #[test]
    fn panic_is_caught_with_message() {
        let s = run_isolated("boom", Duration::from_secs(10), || -> Option<String> {
            panic!("deliberate \"failure\"");
        });
        match &s.outcome {
            Outcome::Panicked(msg) => assert!(msg.contains("deliberate")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(s.to_json(0).contains("\\\"failure\\\""), "{}", s.to_json(0));
    }

    #[test]
    fn watchdog_fires_on_slow_experiments() {
        let s = run_isolated("slow", Duration::from_millis(50), || {
            std::thread::sleep(Duration::from_secs(60));
            None
        });
        assert_eq!(s.outcome, Outcome::TimedOut);
        assert!(
            s.seconds < 30.0,
            "watchdog, not the sleep, bounded the wait"
        );
    }

    #[test]
    fn formatted_panics_are_rendered() {
        let s = run_isolated("fmt", Duration::from_secs(10), || {
            let x = 41;
            assert_eq!(x, 42, "off by {}", 42 - x);
            None
        });
        match &s.outcome {
            Outcome::Panicked(msg) => assert!(msg.contains("off by 1"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
}
