//! Approximation-quality and Optimal-blow-up experiments (§8.4–8.5 text).
//!
//! * **approx** — the paper reports that "for selecting 5 out of 40 users
//!   Podium provided a .998 approximation ratio of the optimal", far above
//!   the `(1 − 1/e) ≈ 0.632` guarantee. We reproduce the setup: restrict
//!   the population to a random 40-user sample, run greedy vs. exhaustive
//!   optimal, and report the ratio over several samples.
//! * **optscale** — the Optimal baseline's exponential runtime ("443
//!   seconds for `|𝒰| = 40`, terminated after an hour for `|𝒰| = 100`" in
//!   the authors' Python prototype): we time exhaustive search over growing
//!   `|𝒰|` and contrast it with greedy.

use std::time::Instant;

use podium_core::bucket::BucketingConfig;
use podium_core::exact::{binomial, exact_select};
use podium_core::greedy::greedy_select;
use podium_core::group::GroupSet;
use podium_core::ids::UserId;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::SynthDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one approximation-ratio measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxResult {
    /// Sample size `|𝒰|`.
    pub users: usize,
    /// Budget `B`.
    pub budget: usize,
    /// Greedy total score.
    pub greedy_score: f64,
    /// Optimal total score.
    pub optimal_score: f64,
    /// `greedy / optimal`.
    pub ratio: f64,
}

/// Runs greedy vs. optimal on `trials` random samples of `users` users.
pub fn run_approx(
    dataset: &SynthDataset,
    users: usize,
    budget: usize,
    trials: usize,
    seed: u64,
) -> Vec<ApproxResult> {
    let mut out = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        let sample =
            podium_data::synth::stats::sample_distinct(&mut rng, dataset.repo.user_count(), users);
        let ids: Vec<UserId> = sample.into_iter().map(UserId::from_index).collect();
        let repo = dataset.repo.restrict(&ids);
        let buckets = BucketingConfig::adaptive_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            budget,
        );
        let greedy = greedy_select(&inst, budget);
        let optimal =
            exact_select(&inst, budget, 1 << 40).expect("sample small enough to enumerate");
        let ratio = if optimal.score > 0.0 {
            greedy.score / optimal.score
        } else {
            1.0
        };
        out.push(ApproxResult {
            users,
            budget,
            greedy_score: greedy.score,
            optimal_score: optimal.score,
            ratio,
        });
    }
    out
}

/// One row of the Optimal-blow-up sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptScaleRow {
    /// Sample size `|𝒰|`.
    pub users: usize,
    /// Number of subsets enumerated, `C(|𝒰|, B)`.
    pub subsets: u128,
    /// Exhaustive optimal runtime (ms).
    pub optimal_ms: f64,
    /// Greedy runtime on the same instance (ms).
    pub greedy_ms: f64,
}

/// Times exhaustive optimal vs. greedy over growing sample sizes.
pub fn run_optscale(
    dataset: &SynthDataset,
    user_counts: &[usize],
    budget: usize,
    seed: u64,
) -> Vec<OptScaleRow> {
    user_counts
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample =
                podium_data::synth::stats::sample_distinct(&mut rng, dataset.repo.user_count(), n);
            let ids: Vec<UserId> = sample.into_iter().map(UserId::from_index).collect();
            let repo = dataset.repo.restrict(&ids);
            let buckets = BucketingConfig::adaptive_default().bucketize(&repo);
            let groups = GroupSet::build(&repo, &buckets);
            let inst = DiversificationInstance::from_schemes(
                &groups,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                budget,
            );
            let t0 = Instant::now();
            let _ = exact_select(&inst, budget, 1 << 60).expect("within limit");
            let optimal_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let _ = greedy_select(&inst, budget);
            let greedy_ms = t1.elapsed().as_secs_f64() * 1e3;
            OptScaleRow {
                users: n,
                subsets: binomial(n, budget),
                optimal_ms,
                greedy_ms,
            }
        })
        .collect()
}

/// Renders approximation results.
pub fn render_approx(results: &[ApproxResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} | {:>3} | {:>12} | {:>13} | {:>7}",
        "users", "B", "greedy score", "optimal score", "ratio"
    );
    let _ = writeln!(out, "{:-<55}", "");
    for r in results {
        let _ = writeln!(
            out,
            "{:>6} | {:>3} | {:>12.2} | {:>13.2} | {:>7.4}",
            r.users, r.budget, r.greedy_score, r.optimal_score, r.ratio
        );
    }
    let mean: f64 = results.iter().map(|r| r.ratio).sum::<f64>() / results.len().max(1) as f64;
    let min: f64 = results
        .iter()
        .map(|r| r.ratio)
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(
        out,
        "mean ratio {mean:.4}, min ratio {min:.4} (guarantee: ≥ {:.4})",
        1.0 - 1.0 / std::f64::consts::E
    );
    out
}

/// Renders Optimal-blow-up rows.
pub fn render_optscale(rows: &[OptScaleRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} | {:>14} | {:>12} | {:>11}",
        "users", "C(n,B)", "optimal (ms)", "greedy (ms)"
    );
    let _ = writeln!(out, "{:-<55}", "");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} | {:>14} | {:>12.1} | {:>11.2}",
            r.users, r.subsets, r.optimal_ms, r.greedy_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn greedy_is_near_optimal_on_40_of_paper_setup() {
        let dataset = datasets::ta_dataset(0.1, 11);
        let results = run_approx(&dataset, 40, 5, 2, 11);
        for r in &results {
            assert!(
                r.ratio >= 1.0 - 1.0 / std::f64::consts::E - 1e-9,
                "below the theoretical bound: {r:?}"
            );
            assert!(r.ratio <= 1.0 + 1e-9);
            assert!(
                r.ratio > 0.95,
                "paper reports near-optimal (0.998) ratios: {r:?}"
            );
        }
    }

    #[test]
    fn optscale_times_grow_with_users() {
        let dataset = datasets::ta_dataset(0.08, 12);
        let rows = run_optscale(&dataset, &[12, 20], 4, 12);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].subsets > rows[0].subsets * 5, "{rows:?}");
        // Greedy must be drastically cheaper than exhaustive at n=20.
        assert!(rows[1].greedy_ms <= rows[1].optimal_ms);
    }

    #[test]
    fn render_outputs() {
        let dataset = datasets::ta_dataset(0.06, 13);
        let results = run_approx(&dataset, 15, 3, 1, 13);
        assert!(render_approx(&results).contains("ratio"));
        let rows = run_optscale(&dataset, &[10], 3, 13);
        assert!(render_optscale(&rows).contains("C(n,B)"));
    }
}
