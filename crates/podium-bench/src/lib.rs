//! # podium-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§8). Each module implements one experiment; the
//! `experiments` binary dispatches on a subcommand and prints the same
//! rows/series the paper reports. See `EXPERIMENTS.md` at the workspace
//! root for the experiment index and recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx_exp;
pub mod budget_exp;
pub mod custom_exp;
pub mod datasets;
pub mod harness;
pub mod intrinsic_exp;
pub mod opinion_exp;
pub mod scalability_exp;
pub mod selectors;
pub mod serving_exp;
pub mod table2_exp;
