//! Standard experiment datasets with laptop-friendly default scales.
//!
//! The paper's repositories (TripAdvisor 4 475 users, Yelp 60K users) are
//! simulated by the `podium-data` presets. Defaults here are scaled down so
//! the whole experiment suite finishes in minutes; pass `--scale` to the
//! `experiments` binary to grow them toward paper scale.

use podium_data::synth::{tripadvisor, yelp, SynthDataset};

/// Default TripAdvisor-like scale (fraction of the paper's 4 475 users).
pub const TA_DEFAULT_SCALE: f64 = 0.25;
/// Default Yelp-like scale (fraction of the paper's 60K users).
pub const YELP_DEFAULT_SCALE: f64 = 0.05;
/// The paper's selection budget in the qualitative experiments (§8.3).
pub const DEFAULT_BUDGET: usize = 8;
/// Top-k for the coverage metrics (§8.2 sets k = 200).
pub const TOP_K: usize = 200;

/// The TripAdvisor-like experiment dataset at a relative scale multiplier
/// (1.0 = default harness scale, not paper scale).
pub fn ta_dataset(scale_mult: f64, seed: u64) -> SynthDataset {
    tripadvisor(TA_DEFAULT_SCALE * scale_mult, seed).generate()
}

/// The Yelp-like experiment dataset at a relative scale multiplier.
pub fn yelp_dataset(scale_mult: f64, seed: u64) -> SynthDataset {
    yelp(YELP_DEFAULT_SCALE * scale_mult, seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales_are_manageable() {
        let ta = ta_dataset(0.1, 1);
        assert!(ta.repo.user_count() >= 100);
        assert!(ta.repo.property_count() > 50);
        let ye = yelp_dataset(0.1, 1);
        assert!(ye.repo.user_count() >= 250);
    }
}
