//! Customization experiment — Figure 4 ("Yelp intrinsic diversity with
//! customization").
//!
//! Random priority-group subsets `𝒢_20 ⊆ 𝒢_40 ⊆ 𝒢_60 ⊆ 𝒢_80` are fed to
//! CUSTOM-DIVERSITY as `𝒢_d`; a subset of size `B` is selected per setting
//! and the intrinsic metrics are recorded, together with the *Feedback
//! Group Coverage* (fraction of priority groups covered). The process is
//! repeated and averaged. The paper observes that all quality metrics
//! decrease only slightly as priority groups are added, while feedback
//! coverage drops markedly with more (random, typically small) priority
//! groups.

use podium_core::bucket::BucketingConfig;
use podium_core::customize::{custom_select, Feedback};
use podium_core::group::GroupSet;
use podium_core::ids::GroupId;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::SynthDataset;
use podium_metrics::intrinsic::IntrinsicMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One averaged row of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CustomRow {
    /// `|𝒢_d|` — number of priority groups.
    pub gd_size: usize,
    /// Averaged intrinsic metrics of the selected subsets.
    pub metrics: IntrinsicMetrics,
    /// Averaged feedback group coverage.
    pub feedback_coverage: f64,
}

/// Runs the Figure 4 experiment.
///
/// `sizes` are the nested `𝒢_d` sizes (0 = no customization baseline);
/// `reps` repetitions are averaged with fresh random group draws each time.
pub fn run_customization(
    dataset: &SynthDataset,
    budget: usize,
    top_k: usize,
    sizes: &[usize],
    reps: usize,
    seed: u64,
) -> Vec<CustomRow> {
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    let eval_inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        budget,
    );

    let max_size = sizes.iter().copied().max().unwrap_or(0).min(groups.len());
    let mut rows: Vec<(usize, Vec<IntrinsicMetrics>, Vec<f64>)> =
        sizes.iter().map(|&s| (s, Vec::new(), Vec::new())).collect();

    for rep in 0..reps.max(1) {
        // One nested random permutation per repetition: 𝒢_20 ⊆ 𝒢_40 ⊆ … .
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(rep as u64));
        let perm = podium_data::synth::stats::sample_distinct(&mut rng, groups.len(), max_size);
        for (s, metrics_acc, cov_acc) in rows.iter_mut() {
            let gd: Vec<GroupId> = perm
                .iter()
                .take((*s).min(perm.len()))
                .map(|&i| GroupId::from_index(i))
                .collect();
            let feedback = Feedback {
                priority: gd,
                ..Feedback::default()
            };
            let sel = custom_select(
                repo,
                &groups,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                budget,
                &feedback,
            )
            .expect("valid feedback");
            metrics_acc.push(IntrinsicMetrics::evaluate(&eval_inst, sel.users(), top_k));
            cov_acc.push(sel.feedback_group_coverage);
        }
    }

    rows.into_iter()
        .map(|(s, ms, cs)| {
            let n = ms.len().max(1) as f64;
            CustomRow {
                gd_size: s,
                metrics: IntrinsicMetrics {
                    total_score: ms.iter().map(|m| m.total_score).sum::<f64>() / n,
                    top_k_coverage: ms.iter().map(|m| m.top_k_coverage).sum::<f64>() / n,
                    intersected_coverage: ms.iter().map(|m| m.intersected_coverage).sum::<f64>()
                        / n,
                    distribution_similarity: ms
                        .iter()
                        .map(|m| m.distribution_similarity)
                        .sum::<f64>()
                        / n,
                },
                feedback_coverage: cs.iter().sum::<f64>() / cs.len().max(1) as f64,
            }
        })
        .collect()
}

/// Renders Figure 4 rows as an aligned text table.
pub fn render(rows: &[CustomRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} | {:>12} | {:>10} | {:>12} | {:>10} | {:>12}",
        "|Gd|", "total score", "top-k cov", "intersected", "dist. sim", "feedback cov"
    );
    let _ = writeln!(out, "{:-<80}", "");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>7} | {:>12.2} | {:>10.3} | {:>12.3} | {:>10.3} | {:>12.3}",
            r.gd_size,
            r.metrics.total_score,
            r.metrics.top_k_coverage,
            r.metrics.intersected_coverage,
            r.metrics.distribution_similarity,
            r.feedback_coverage
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn feedback_coverage_decreases_with_gd_size() {
        // Budget 2 with 120 priority groups: two users can belong to at most
        // 2 · max_groups_per_user < 120 groups on this dataset, so full
        // feedback coverage is impossible — mirroring Figure 4's drop.
        let dataset = datasets::yelp_dataset(0.02, 5);
        let rows = run_customization(&dataset, 2, 50, &[0, 20, 120], 3, 5);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].feedback_coverage, 1.0, "no priority groups");
        assert!(
            rows[1].feedback_coverage >= rows[2].feedback_coverage,
            "more priority groups -> lower coverage: {rows:?}"
        );
        assert!(rows[2].feedback_coverage < 1.0, "{rows:?}");
    }

    #[test]
    fn quality_metrics_only_degrade_mildly() {
        let dataset = datasets::yelp_dataset(0.02, 9);
        let rows = run_customization(&dataset, 8, 50, &[0, 40], 3, 9);
        let base = rows[0].metrics.total_score;
        let custom = rows[1].metrics.total_score;
        assert!(custom <= base + 1e-9, "customization restricts the optimum");
        assert!(
            custom > base * 0.5,
            "but not catastrophically: base {base} custom {custom}"
        );
    }

    #[test]
    fn render_has_all_rows() {
        let dataset = datasets::yelp_dataset(0.015, 2);
        let rows = run_customization(&dataset, 4, 20, &[0, 10], 2, 2);
        let text = render(&rows);
        assert!(text.contains("feedback cov"));
        assert_eq!(text.lines().count(), 4);
    }
}
