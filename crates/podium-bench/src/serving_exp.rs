//! Serving-throughput experiment: sustained `select` load against the
//! `podium-service` worker pool while a background writer streams profile
//! updates (the paper's "executed multiple times, e.g., to incorporate
//! data updates" setting, §9, run as an online service).
//!
//! This wraps [`podium_service::bench`]'s closed-loop generator in the
//! experiment-driver conventions: a scale knob, a rendered table, and a
//! JSONL row appended next to the other benchmark artifacts.

use std::time::Duration;

use podium_service::bench::{run_bench, BenchConfig, BenchReport};

/// The driver's scaled configuration: `scale = 1` is the acceptance
/// setting (10^4 users, budget 64, updates at 10 Hz).
pub fn config_for(scale: f64, seed: u64) -> BenchConfig {
    let base = BenchConfig::default();
    BenchConfig {
        users: ((base.users as f64 * scale) as usize).max(200),
        duration: Duration::from_secs_f64((2.0 * scale).clamp(0.5, 10.0)),
        seed,
        ..base
    }
}

/// Runs the closed loop under `config_for(scale, seed)`.
pub fn run(scale: f64, seed: u64) -> BenchReport {
    run_bench(&config_for(scale, seed))
}

/// Renders the report in the driver's table style.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "repository: {} users, budget {}; {} clients over {} workers, updates {} Hz",
        report.users, report.budget, report.clients, report.workers, report.update_hz
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "served", "req/s", "p50 us", "p99 us", "max us"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10.1} {:>10} {:>10} {:>10}",
        report.served, report.throughput_rps, report.p50_us, report.p99_us, report.max_us
    );
    let _ = writeln!(
        out,
        "failed {} (deadline {}, transport {}, other {}), overloaded {}, inconsistent {}",
        report.failed,
        report.failed_deadline,
        report.failed_transport,
        report.failed_other,
        report.overloaded,
        report.inconsistent,
    );
    let _ = writeln!(
        out,
        "{} updates applied (final epoch {}); cache {} hits / {} misses; max queue depth {}",
        report.updates_applied,
        report.final_epoch,
        report.cache_hits,
        report.cache_misses,
        report.queue_depth_max
    );
    out
}

/// Renders the metrics the status-file row carries as its `details`
/// field: serving health plus the cache and queue-depth counters the
/// `stats` op exposes, so a sweep's JSONL is greppable for cache
/// regressions without rerunning anything.
pub fn details_json(report: &BenchReport) -> String {
    format!(
        "{{\"transport\":\"{}\",\"served\":{},\"throughput_rps\":{:.1},\
         \"failed\":{},\"failed_deadline\":{},\"failed_transport\":{},\
         \"failed_other\":{},\"overloaded\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"queue_depth_max\":{}}}",
        report.transport,
        report.served,
        report.throughput_rps,
        report.failed,
        report.failed_deadline,
        report.failed_transport,
        report.failed_other,
        report.overloaded,
        report.cache_hits,
        report.cache_misses,
        report.queue_depth_max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_stays_sane() {
        let tiny = config_for(0.01, 7);
        assert_eq!(tiny.users, 200, "floor applies");
        assert_eq!(tiny.duration, Duration::from_secs_f64(0.5));
        assert_eq!(tiny.seed, 7);
        let full = config_for(1.0, 2020);
        assert_eq!(full.users, 10_000);
        assert_eq!(full.budget, 64);
        assert_eq!(full.update_hz, 10);
    }

    #[test]
    fn tiny_run_renders_clean() {
        let report = run(0.01, 11);
        let text = render(&report);
        assert!(text.contains("repository: 200 users"), "{text}");
        assert!(text.contains("failed 0 (deadline 0"), "{text}");
        assert!(text.contains("cache"), "{text}");
        assert_eq!(report.failed, 0);
        assert_eq!(report.inconsistent, 0);
        assert!(report.served > 0);
        // The details row is valid JSON carrying the stats-op metrics.
        let details = details_json(&report);
        for field in [
            "\"served\":",
            "\"cache_hits\":",
            "\"cache_misses\":",
            "\"queue_depth_max\":",
            "\"failed_deadline\":",
        ] {
            assert!(details.contains(field), "missing {field}: {details}");
        }
    }
}
