//! Serving-throughput experiment: sustained `select` load against the
//! `podium-service` worker pool while a background writer streams profile
//! updates (the paper's "executed multiple times, e.g., to incorporate
//! data updates" setting, §9, run as an online service).
//!
//! This wraps [`podium_service::bench`]'s closed-loop generator in the
//! experiment-driver conventions: a scale knob, a rendered table, and a
//! JSONL row appended next to the other benchmark artifacts.

use std::time::Duration;

use podium_service::bench::{run_bench, BenchConfig, BenchReport};
use podium_service::snapshot::PublishMode;
use serde_json::Value;

/// The driver's scaled configuration: `scale = 1` is the acceptance
/// setting (10^4 users, budget 64, updates at 10 Hz).
pub fn config_for(scale: f64, seed: u64) -> BenchConfig {
    let base = BenchConfig::default();
    BenchConfig {
        // podium-lint: allow(as-cast) — base.users is 10⁴ (exact in f64) and a
        // positive scale truncates to the intended smoke-sized count
        users: ((base.users as f64 * scale) as usize).max(200),
        duration: Duration::from_secs_f64((2.0 * scale).clamp(0.5, 10.0)),
        seed,
        ..base
    }
}

/// Runs the closed loop under `config_for(scale, seed)`.
pub fn run(scale: f64, seed: u64) -> BenchReport {
    run_bench(&config_for(scale, seed))
}

/// Renders the report in the driver's table style.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "repository: {} users, budget {}; {} clients over {} workers, updates {} Hz",
        report.users, report.budget, report.clients, report.workers, report.update_hz
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "served", "req/s", "p50 us", "p99 us", "max us"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10.1} {:>10} {:>10} {:>10}",
        report.served, report.throughput_rps, report.p50_us, report.p99_us, report.max_us
    );
    let _ = writeln!(
        out,
        "failed {} (deadline {}, transport {}, other {}), overloaded {}, inconsistent {}",
        report.failed,
        report.failed_deadline,
        report.failed_transport,
        report.failed_other,
        report.overloaded,
        report.inconsistent,
    );
    let _ = writeln!(
        out,
        "{} updates applied (final epoch {}); cache {} hits / {} misses; max queue depth {}",
        report.updates_applied,
        report.final_epoch,
        report.cache_hits,
        report.cache_misses,
        report.queue_depth_max
    );
    out
}

/// Renders the metrics the status-file row carries as its `details`
/// field: serving health plus the cache and queue-depth counters the
/// `stats` op exposes, so a sweep's JSONL is greppable for cache
/// regressions without rerunning anything.
pub fn details_json(report: &BenchReport) -> String {
    format!(
        "{{\"transport\":\"{}\",\"served\":{},\"throughput_rps\":{:.1},\
         \"failed\":{},\"failed_deadline\":{},\"failed_transport\":{},\
         \"failed_other\":{},\"overloaded\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"queue_depth_max\":{}}}",
        report.transport,
        report.served,
        report.throughput_rps,
        report.failed,
        report.failed_deadline,
        report.failed_transport,
        report.failed_other,
        report.overloaded,
        report.cache_hits,
        report.cache_misses,
        report.queue_depth_max
    )
}

/// Profile-drift rates (updates/second) the drift matrix sweeps. Under
/// the immediate publish policy each update is one epoch, so the rate is
/// also the publish rate.
pub const DRIFT_RATES: [u64; 3] = [10, 100, 500];

/// One cell of the drift matrix: the serving config at `drift_hz`
/// updates/second under `mode`.
pub fn drift_config_for(scale: f64, seed: u64, drift_hz: u64, mode: PublishMode) -> BenchConfig {
    BenchConfig {
        update_hz: drift_hz,
        publish_mode: mode,
        duration: Duration::from_secs_f64((1.5 * scale).clamp(0.4, 6.0)),
        ..config_for(scale, seed)
    }
}

/// Runs the full drift matrix: every rate in [`DRIFT_RATES`] under both
/// publish modes (full rebuild first, its incremental counterpart next,
/// so adjacent rows compare directly).
pub fn run_drift(scale: f64, seed: u64) -> Vec<BenchReport> {
    let mut reports = Vec::new();
    for &hz in &DRIFT_RATES {
        for mode in [PublishMode::FullRebuild, PublishMode::Incremental] {
            reports.push(run_bench(&drift_config_for(scale, seed, hz, mode)));
        }
    }
    reports
}

/// Renders the drift matrix in the driver's table style.
pub fn render_drift(reports: &[BenchReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(first) = reports.first() {
        let _ = writeln!(
            out,
            "repository: {} users, budget {}; {} clients over {} workers",
            first.users, first.budget, first.clients, first.workers
        );
    }
    let _ = writeln!(
        out,
        "{:>13} {:>9} {:>10} {:>12} {:>13} {:>13} {:>10}",
        "mode", "drift Hz", "req/s", "select p99", "publish p50", "publish p99", "memo hit"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:>13} {:>9} {:>10.1} {:>9} us {:>10} us {:>10} us {:>9.1}%",
            r.publish_mode,
            r.update_hz,
            r.throughput_rps,
            r.p99_us,
            r.publish_p50_us,
            r.publish_p99_us,
            100.0 * r.memo_hit_rate
        );
    }
    for &hz in &DRIFT_RATES {
        if let Some(speedup) = publish_speedup(reports, hz) {
            let _ = writeln!(
                out,
                "publish p50 speedup at {hz} Hz: {speedup:.1}x (incremental over full rebuild)"
            );
        }
    }
    out
}

/// Median-publish-latency speedup of incremental over full rebuild at
/// drift rate `hz`; `None` unless the matrix holds both modes at that
/// rate with nonzero incremental latency.
pub fn publish_speedup(reports: &[BenchReport], hz: u64) -> Option<f64> {
    let p50 = |mode: &str| {
        reports
            .iter()
            .find(|r| r.update_hz == hz && r.publish_mode == mode)
            .map(|r| r.publish_p50_us)
    };
    match (p50("full_rebuild"), p50("incremental")) {
        // podium-lint: allow(as-cast) — publish p50s are microsecond counts far
        // below 2⁵³, exact in f64
        (Some(full), Some(inc)) if inc > 0 && full > 0 => Some(full as f64 / inc as f64),
        _ => None,
    }
}

/// Serializes the drift matrix as the `BENCH_6.json` artifact: one row
/// per cell plus the per-rate publish-latency speedups.
pub fn bench6_json(reports: &[BenchReport]) -> String {
    use podium_service::protocol::{num_f64, num_u64};
    let points: Vec<Value> = reports
        .iter()
        .map(|r| serde_json::from_str(&r.to_json()).expect("report rows are valid JSON"))
        .collect();
    let speedups: Vec<Value> = DRIFT_RATES
        .iter()
        .filter_map(|&hz| {
            publish_speedup(reports, hz).map(|s| {
                Value::Object(vec![
                    ("drift_hz".to_owned(), num_u64(hz)),
                    ("publish_p50_speedup".to_owned(), num_f64(s)),
                ])
            })
        })
        .collect();
    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::String("drift".to_owned())),
        (
            "drift_rates_hz".to_owned(),
            Value::Array(DRIFT_RATES.iter().map(|&hz| num_u64(hz)).collect()),
        ),
        ("points".to_owned(), Value::Array(points)),
        ("publish_speedups".to_owned(), Value::Array(speedups)),
    ]);
    serde_json::to_string_pretty(&doc).expect("artifact serialization is infallible")
}

/// The status-row `details` for the drift matrix: per-cell serving and
/// publish health, compact enough to grep.
pub fn drift_details_json(reports: &[BenchReport]) -> String {
    use podium_service::protocol::{num_f64, num_u64};
    let cells: Vec<Value> = reports
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("mode".to_owned(), Value::String(r.publish_mode.to_owned())),
                ("drift_hz".to_owned(), num_u64(r.update_hz)),
                ("throughput_rps".to_owned(), num_f64(r.throughput_rps)),
                ("p99_us".to_owned(), num_u64(r.p99_us)),
                ("publish_p50_us".to_owned(), num_u64(r.publish_p50_us)),
                ("publish_p99_us".to_owned(), num_u64(r.publish_p99_us)),
                ("memo_hit_rate".to_owned(), num_f64(r.memo_hit_rate)),
                ("failed".to_owned(), num_u64(r.failed)),
                ("inconsistent".to_owned(), num_u64(r.inconsistent)),
            ])
        })
        .collect();
    serde_json::to_string(&Value::Object(vec![(
        "cells".to_owned(),
        Value::Array(cells),
    )]))
    .expect("details serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_stays_sane() {
        let tiny = config_for(0.01, 7);
        assert_eq!(tiny.users, 200, "floor applies");
        assert_eq!(tiny.duration, Duration::from_secs_f64(0.5));
        assert_eq!(tiny.seed, 7);
        let full = config_for(1.0, 2020);
        assert_eq!(full.users, 10_000);
        assert_eq!(full.budget, 64);
        assert_eq!(full.update_hz, 10);
    }

    #[test]
    fn tiny_run_renders_clean() {
        let report = run(0.01, 11);
        let text = render(&report);
        assert!(text.contains("repository: 200 users"), "{text}");
        assert!(text.contains("failed 0 (deadline 0"), "{text}");
        assert!(text.contains("cache"), "{text}");
        assert_eq!(report.failed, 0);
        assert_eq!(report.inconsistent, 0);
        assert!(report.served > 0);
        // The details row is valid JSON carrying the stats-op metrics.
        let details = details_json(&report);
        for field in [
            "\"served\":",
            "\"cache_hits\":",
            "\"cache_misses\":",
            "\"queue_depth_max\":",
            "\"failed_deadline\":",
        ] {
            assert!(details.contains(field), "missing {field}: {details}");
        }
    }

    #[test]
    fn drift_config_sweeps_mode_and_rate() {
        let cell = drift_config_for(0.01, 7, 500, PublishMode::FullRebuild);
        assert_eq!(cell.update_hz, 500);
        assert_eq!(cell.publish_mode, PublishMode::FullRebuild);
        assert_eq!(cell.users, 200, "scale floor applies to drift cells too");
    }

    #[test]
    fn tiny_drift_matrix_renders_and_serializes() {
        // One rate, both modes, very short cells: the full matrix shape
        // without the full runtime.
        let mut reports = Vec::new();
        for mode in [PublishMode::FullRebuild, PublishMode::Incremental] {
            let mut cfg = drift_config_for(0.01, 11, DRIFT_RATES[0], mode);
            cfg.duration = Duration::from_millis(250);
            reports.push(run_bench(&cfg));
        }
        for r in &reports {
            assert_eq!(r.failed, 0, "{r:?}");
            assert_eq!(r.inconsistent, 0, "{r:?}");
        }
        let table = render_drift(&reports);
        assert!(table.contains("full_rebuild"), "{table}");
        assert!(table.contains("incremental"), "{table}");
        let artifact = bench6_json(&reports);
        let doc: Value = serde_json::from_str(&artifact).unwrap();
        assert_eq!(doc.get("bench").and_then(Value::as_str), Some("drift"));
        assert_eq!(
            doc.get("points").and_then(Value::as_array).map(Vec::len),
            Some(2)
        );
        let details = drift_details_json(&reports);
        let doc: Value = serde_json::from_str(&details).unwrap();
        assert_eq!(
            doc.get("cells").and_then(Value::as_array).map(Vec::len),
            Some(2)
        );
    }
}
