//! Serving-throughput experiment: sustained `select` load against the
//! `podium-service` worker pool while a background writer streams profile
//! updates (the paper's "executed multiple times, e.g., to incorporate
//! data updates" setting, §9, run as an online service).
//!
//! This wraps [`podium_service::bench`]'s closed-loop generator in the
//! experiment-driver conventions: a scale knob, a rendered table, and a
//! JSONL row appended next to the other benchmark artifacts.

use std::time::Duration;

use podium_service::bench::{run_bench, BenchConfig, BenchReport};

/// The driver's scaled configuration: `scale = 1` is the acceptance
/// setting (10^4 users, budget 64, updates at 10 Hz).
pub fn config_for(scale: f64, seed: u64) -> BenchConfig {
    let base = BenchConfig::default();
    BenchConfig {
        users: ((base.users as f64 * scale) as usize).max(200),
        duration: Duration::from_secs_f64((2.0 * scale).clamp(0.5, 10.0)),
        seed,
        ..base
    }
}

/// Runs the closed loop under `config_for(scale, seed)`.
pub fn run(scale: f64, seed: u64) -> BenchReport {
    run_bench(&config_for(scale, seed))
}

/// Renders the report in the driver's table style.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "repository: {} users, budget {}; {} clients over {} workers, updates {} Hz",
        report.users, report.budget, report.clients, report.workers, report.update_hz
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "served", "req/s", "p50 us", "p99 us", "max us"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10.1} {:>10} {:>10} {:>10}",
        report.served, report.throughput_rps, report.p50_us, report.p99_us, report.max_us
    );
    let _ = writeln!(
        out,
        "failed {}, overloaded {}, inconsistent {}; {} updates applied (final epoch {})",
        report.failed,
        report.overloaded,
        report.inconsistent,
        report.updates_applied,
        report.final_epoch
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_stays_sane() {
        let tiny = config_for(0.01, 7);
        assert_eq!(tiny.users, 200, "floor applies");
        assert_eq!(tiny.duration, Duration::from_secs_f64(0.5));
        assert_eq!(tiny.seed, 7);
        let full = config_for(1.0, 2020);
        assert_eq!(full.users, 10_000);
        assert_eq!(full.budget, 64);
        assert_eq!(full.update_hz, 10);
    }

    #[test]
    fn tiny_run_renders_clean() {
        let report = run(0.01, 11);
        let text = render(&report);
        assert!(text.contains("repository: 200 users"), "{text}");
        assert!(text.contains("failed 0,"), "{text}");
        assert_eq!(report.failed, 0);
        assert_eq!(report.inconsistent, 0);
        assert!(report.served > 0);
    }
}
