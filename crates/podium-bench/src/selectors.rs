//! Podium itself as a [`Selector`], plus the standard comparator lineup.

use podium_baselines::prelude::*;
use podium_core::bucket::BucketingConfig;
use podium_core::engine::{EngineVariant, SelectionEngine};
use podium_core::group::GroupSet;
use podium_core::ids::UserId;
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};

/// Podium's greedy coverage-based selection wrapped as a [`Selector`]. By
/// default this matches the paper's experimental configuration: no
/// customization feedback, LBS weights, Single coverage (§8.3).
#[derive(Debug, Clone)]
pub struct PodiumSelector {
    /// Bucketing configuration for group construction.
    pub bucketing: BucketingConfig,
    /// Weight scheme.
    pub weight: WeightScheme,
    /// Coverage scheme.
    pub cov: CovScheme,
    /// Which selection-engine variant runs the greedy loop. All variants
    /// produce identical selections; they differ only in throughput.
    pub engine: EngineVariant,
}

impl PodiumSelector {
    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        Self {
            bucketing: BucketingConfig::adaptive_default(),
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
            engine: EngineVariant::Eager,
        }
    }

    /// Overrides the bucketing configuration.
    pub fn with_bucketing(mut self, b: BucketingConfig) -> Self {
        self.bucketing = b;
        self
    }

    /// Switches between the eager and lazy-heap (CELF) implementations.
    /// Kept for compatibility; prefer [`Self::with_engine`].
    pub fn with_lazy(self, lazy: bool) -> Self {
        self.with_engine(if lazy {
            EngineVariant::LazyHeap
        } else {
            EngineVariant::Eager
        })
    }

    /// Selects the engine variant that runs the greedy loop.
    pub fn with_engine(mut self, engine: EngineVariant) -> Self {
        self.engine = engine;
        self
    }
}

impl Selector for PodiumSelector {
    fn name(&self) -> &str {
        "Podium"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        if b == 0 || repo.user_count() == 0 {
            return Vec::new();
        }
        let buckets = self.bucketing.bucketize(repo);
        let groups = GroupSet::build(repo, &buckets);
        let inst = DiversificationInstance::from_schemes(&groups, self.weight, self.cov, b);
        let sel = SelectionEngine::new(&inst).select(self.engine, b);
        sel.users
    }
}

/// The standard §8.3 comparator lineup: Podium, Random, Clustering,
/// Distance.
pub fn standard_lineup(seed: u64) -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(PodiumSelector::paper_default()),
        Box::new(RandomSelector::new(seed)),
        Box::new(KMeansSelector::new(seed)),
        Box::new(DistanceSelector::new(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn podium_selector_on_table2() {
        let repo = podium_data::table2::table2();
        let sel = PodiumSelector::paper_default()
            .with_bucketing(BucketingConfig::paper_default())
            .select(&repo, 2);
        let names: Vec<&str> = sel.iter().map(|&u| repo.user_name(u).unwrap()).collect();
        assert_eq!(names, vec!["Alice", "Eve"]);
    }

    #[test]
    fn every_engine_variant_picks_the_same_users() {
        let repo = podium_data::table2::table2();
        let eager = PodiumSelector::paper_default()
            .with_bucketing(BucketingConfig::paper_default())
            .select(&repo, 3);
        for variant in EngineVariant::ALL {
            let picked = PodiumSelector::paper_default()
                .with_bucketing(BucketingConfig::paper_default())
                .with_engine(variant)
                .select(&repo, 3);
            assert_eq!(picked, eager, "variant {}", variant.label());
        }
    }

    #[test]
    fn with_lazy_maps_onto_engine_variants() {
        let base = PodiumSelector::paper_default();
        assert_eq!(base.clone().with_lazy(true).engine, EngineVariant::LazyHeap);
        assert_eq!(base.with_lazy(false).engine, EngineVariant::Eager);
    }

    #[test]
    fn lazy_matches_eager_score() {
        let repo = podium_data::table2::table2();
        let eager = PodiumSelector::paper_default()
            .with_bucketing(BucketingConfig::paper_default())
            .select(&repo, 3);
        let lazy = PodiumSelector::paper_default()
            .with_bucketing(BucketingConfig::paper_default())
            .with_lazy(true)
            .select(&repo, 3);
        // Same objective value even if tie-broken differently.
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            3,
        );
        assert_eq!(inst.score_of(&eager), inst.score_of(&lazy));
    }

    #[test]
    fn lineup_has_four_distinct_names() {
        let lineup = standard_lineup(1);
        let names: Vec<&str> = lineup.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Podium", "Random", "Clustering", "Distance"]);
    }
}
