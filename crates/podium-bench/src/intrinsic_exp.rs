//! Intrinsic diversity experiment — Figures 3a (TripAdvisor) and 3c (Yelp).
//!
//! Runs the §8.3 selector lineup with budget `B` on a dataset and evaluates
//! the four intrinsic metrics of §8.2 (total selection score under
//! LBS+Single, top-200 group coverage, intersected-property coverage,
//! group-bucket distribution similarity), reporting values normalized to
//! the leading algorithm exactly as Figure 3 does.

use podium_core::bucket::BucketingConfig;
use podium_core::group::GroupSet;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::SynthDataset;
use podium_metrics::intrinsic::IntrinsicMetrics;
use podium_metrics::report::ComparisonTable;

use crate::selectors::standard_lineup;

/// Runs the intrinsic-diversity comparison on a dataset.
pub fn run_intrinsic(
    dataset: &SynthDataset,
    budget: usize,
    top_k: usize,
    seed: u64,
) -> ComparisonTable {
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    let eval_inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        budget,
    );

    let lineup = standard_lineup(seed);
    let mut per_algo: Vec<IntrinsicMetrics> = Vec::with_capacity(lineup.len());
    let mut names: Vec<String> = Vec::with_capacity(lineup.len());
    for selector in &lineup {
        let selection = selector.select(repo, budget);
        per_algo.push(IntrinsicMetrics::evaluate(&eval_inst, &selection, top_k));
        names.push(selector.name().to_owned());
    }

    let mut table = ComparisonTable::new(names);
    table.add_metric(
        "total score",
        per_algo.iter().map(|m| m.total_score).collect(),
    );
    table.add_metric(
        "top-k coverage",
        per_algo.iter().map(|m| m.top_k_coverage).collect(),
    );
    table.add_metric(
        "intersected coverage",
        per_algo.iter().map(|m| m.intersected_coverage).collect(),
    );
    table.add_metric(
        "distribution similarity",
        per_algo.iter().map(|m| m.distribution_similarity).collect(),
    );
    table
}

/// Mean pairwise property-intersection of each algorithm's selected subset
/// — the §8.4 "2 versus tens on average" diagnostic explaining why the
/// distance-based baseline under-covers.
pub fn overlap_comparison(
    dataset: &SynthDataset,
    budget: usize,
    seed: u64,
) -> Vec<(String, podium_metrics::overlap::OverlapStats)> {
    let repo = &dataset.repo;
    standard_lineup(seed)
        .iter()
        .map(|s| {
            let sel = s.select(repo, budget);
            (
                s.name().to_owned(),
                podium_metrics::overlap::overlap_stats(repo, &sel),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn podium_wins_total_score_on_small_ta() {
        let dataset = datasets::ta_dataset(0.12, 42);
        let table = run_intrinsic(&dataset, 8, 50, 42);
        assert_eq!(table.algorithms().len(), 4);
        assert_eq!(table.metrics().len(), 4);
        // Podium approximates this exact objective; it must lead it.
        assert_eq!(table.leader(0), 0, "{}", table.render());
    }

    #[test]
    fn distance_subset_has_smallest_overlap() {
        // §8.4: distance-based selection explicitly avoids property
        // intersections; Podium's coverage-based subset overlaps far more.
        let dataset = datasets::yelp_dataset(0.05, 11);
        let rows = overlap_comparison(&dataset, 8, 11);
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.mean_intersection)
                .unwrap()
        };
        assert!(
            get("Distance") < get("Podium"),
            "distance {} vs podium {}",
            get("Distance"),
            get("Podium")
        );
    }

    #[test]
    fn all_metric_rows_are_finite_and_nonnegative() {
        let dataset = datasets::yelp_dataset(0.05, 7);
        let table = run_intrinsic(&dataset, 8, 50, 7);
        for m in 0..table.metrics().len() {
            for a in 0..table.algorithms().len() {
                let v = table.raw(m, a);
                assert!(v.is_finite() && v >= 0.0, "metric {m} algo {a}: {v}");
            }
        }
    }
}
