//! Budget sweep — the §8.4 observation that "as B increases, all the
//! quality metrics improve and the gaps between the baselines slightly
//! decrease, but the general trends are preserved".

use podium_core::bucket::BucketingConfig;
use podium_core::group::GroupSet;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_data::synth::SynthDataset;
use podium_metrics::intrinsic::IntrinsicMetrics;

use crate::selectors::standard_lineup;

/// One row of the budget sweep: metrics per algorithm at one budget.
#[derive(Debug, Clone)]
pub struct BudgetRow {
    /// The selection budget `B`.
    pub budget: usize,
    /// `(algorithm name, metrics)` pairs in lineup order.
    pub per_algo: Vec<(String, IntrinsicMetrics)>,
}

impl BudgetRow {
    /// Podium's top-k coverage minus the best baseline's — the "gap" whose
    /// shrinkage §8.4 reports.
    pub fn coverage_gap(&self) -> f64 {
        let podium = self.per_algo[0].1.top_k_coverage;
        let best_baseline = self.per_algo[1..]
            .iter()
            .map(|(_, m)| m.top_k_coverage)
            .fold(f64::NEG_INFINITY, f64::max);
        podium - best_baseline
    }
}

/// Runs the budget sweep. Group construction happens once; each budget gets
/// its own evaluation instance (Prop's coverage depends on `B`).
pub fn run_budget_sweep(
    dataset: &SynthDataset,
    budgets: &[usize],
    top_k: usize,
    seed: u64,
) -> Vec<BudgetRow> {
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    budgets
        .iter()
        .map(|&b| {
            let eval = DiversificationInstance::from_schemes(
                &groups,
                WeightScheme::LinearBySize,
                CovScheme::Single,
                b,
            );
            let per_algo = standard_lineup(seed)
                .iter()
                .map(|s| {
                    let sel = s.select(repo, b);
                    (
                        s.name().to_owned(),
                        IntrinsicMetrics::evaluate(&eval, &sel, top_k),
                    )
                })
                .collect();
            BudgetRow {
                budget: b,
                per_algo,
            }
        })
        .collect()
}

/// Renders the sweep as a text table of top-k coverage per algorithm with
/// the Podium-vs-best-baseline gap.
pub fn render(rows: &[BudgetRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let _ = write!(out, "{:>5}", "B");
    for (name, _) in &rows[0].per_algo {
        let _ = write!(out, " | {name:>10}");
    }
    let _ = writeln!(out, " | {:>8}", "gap");
    let _ = writeln!(out, "{:-<70}", "");
    for row in rows {
        let _ = write!(out, "{:>5}", row.budget);
        for (_, m) in &row.per_algo {
            let _ = write!(out, " | {:>10.3}", m.top_k_coverage);
        }
        let _ = writeln!(out, " | {:>8.3}", row.coverage_gap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn metrics_improve_and_gaps_shrink_with_budget() {
        let dataset = datasets::yelp_dataset(0.04, 17);
        let rows = run_budget_sweep(&dataset, &[2, 8, 32], 100, 17);
        assert_eq!(rows.len(), 3);
        // §8.4: quality improves with B for every algorithm…
        for algo in 0..rows[0].per_algo.len() {
            let cov: Vec<f64> = rows
                .iter()
                .map(|r| r.per_algo[algo].1.top_k_coverage)
                .collect();
            assert!(
                cov.windows(2).all(|w| w[1] >= w[0] - 0.02),
                "{}: coverage not improving: {cov:?}",
                rows[0].per_algo[algo].0
            );
        }
        // …and the Podium-vs-best gap shrinks from small B to large B.
        assert!(
            rows[2].coverage_gap() <= rows[0].coverage_gap() + 1e-9,
            "gap at B=32 ({:.3}) vs B=2 ({:.3})",
            rows[2].coverage_gap(),
            rows[0].coverage_gap()
        );
        // Trends preserved: Podium still leads at every budget.
        for row in &rows {
            assert!(row.coverage_gap() >= -1e-9, "B={}", row.budget);
        }
    }

    #[test]
    fn render_shape() {
        let dataset = datasets::yelp_dataset(0.02, 18);
        let rows = run_budget_sweep(&dataset, &[2, 4], 50, 18);
        let text = render(&rows);
        assert!(text.contains("Podium"));
        assert_eq!(text.lines().count(), 4);
    }
}
