//! The running example of the paper (Table 2, Examples 3.5–6.4) as a
//! self-verifying experiment: every printed value is asserted against the
//! numbers stated in the paper.

use podium_core::bucket::BucketingConfig;
use podium_core::customize::{custom_select, Feedback};
use podium_core::explain::SelectionReport;
use podium_core::greedy::greedy_select;
use podium_core::group::GroupSet;
use podium_core::ids::PropertyId;
use podium_core::instance::DiversificationInstance;
use podium_core::weights::{CovScheme, WeightScheme};

/// Runs the running example and returns a textual transcript. Panics if any
/// paper-stated value is not reproduced, so this doubles as a smoke test.
pub fn run() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    let repo = podium_data::table2::table2();
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let groups = GroupSet::build(&repo, &buckets);
    let _ = writeln!(
        out,
        "Table 2 repository: {} users, {} properties, {} simple groups",
        repo.user_count(),
        repo.property_count(),
        groups.len()
    );

    // Example 3.8 / 4.3: LBS + Single, B = 2 -> {Alice, Eve}, score 17.
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        2,
    );
    let sel = greedy_select(&inst, 2);
    let names: Vec<&str> = sel
        .users
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    assert_eq!(names, vec!["Alice", "Eve"], "Example 3.8 selection");
    assert_eq!(sel.score, 17.0, "Example 3.8 total score");
    let _ = writeln!(
        out,
        "LBS + Single, B=2  -> {{{}}} with total score {}",
        names.join(", "),
        sel.score
    );

    // Example 3.8 (Iden): {Alice, Bob}, score 11.
    let iden = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::Identical,
        CovScheme::Single,
        2,
    );
    let isel = greedy_select(&iden, 2);
    let inames: Vec<&str> = isel
        .users
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    assert_eq!(inames, vec!["Alice", "Bob"], "Example 3.8 Iden selection");
    assert_eq!(isel.score, 11.0, "Example 3.8 Iden score");
    let _ = writeln!(
        out,
        "Iden + Single, B=2 -> {{{}}} with total score {} (eccentric users)",
        inames.join(", "),
        isel.score
    );

    // Example 5.2: explanations.
    let report = SelectionReport::build(&inst, &repo, &sel, 5);
    let _ = writeln!(out, "\nExplanations (Example 5.2):");
    let _ = write!(out, "{}", report.render());

    // Example 6.2 / 6.4: customization.
    let mex_groups: Vec<_> = (0..repo.property_count())
        .map(PropertyId::from_index)
        .filter(|&p| repo.property_label(p).unwrap() == "avgRating Mexican")
        .flat_map(|p| groups.groups_of_property(p))
        .collect();
    let lives_groups: Vec<_> = (0..repo.property_count())
        .map(PropertyId::from_index)
        .filter(|&p| repo.property_label(p).unwrap().starts_with("livesIn"))
        .flat_map(|p| groups.groups_of_property(p))
        .collect();
    let feedback = Feedback {
        must_have: mex_groups,
        priority: lives_groups,
        ..Feedback::default()
    };
    let custom = custom_select(
        &repo,
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        2,
        &feedback,
    )
    .expect("valid feedback");
    let cnames: Vec<&str> = custom
        .users()
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    assert_eq!(cnames, vec!["Alice", "Eve"], "Example 6.4 selection");
    assert_eq!(custom.pool_size, 4, "Carol filtered out (Example 6.4)");
    assert_eq!(custom.priority_score(), 3.0, "livesIn weight sum (Ex. 6.4)");
    assert_eq!(
        custom.standard_score(),
        14.0,
        "other-properties sum (Ex. 6.4)"
    );
    let _ = writeln!(
        out,
        "\nCustomization (Example 6.4): must-have avgRating Mexican, priority livesIn"
    );
    let _ = writeln!(
        out,
        "  refined pool {} users -> {{{}}}, priority score {}, standard score {}",
        custom.pool_size,
        cnames.join(", "),
        custom.priority_score(),
        custom.standard_score()
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn running_example_reproduces_all_paper_values() {
        let transcript = super::run();
        assert!(transcript.contains("score 17"));
        assert!(transcript.contains("Alice, Eve"));
        assert!(transcript.contains("Alice, Bob"));
        assert!(transcript.contains("priority score 3"));
    }
}
