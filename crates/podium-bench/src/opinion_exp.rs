//! Opinion diversity experiment — Figures 3b (TripAdvisor) and 3d (Yelp).
//!
//! Simulates opinion procurement (§8.2): the busiest destinations are held
//! out; profiles are rebuilt *without* their reviews; for each held-out
//! destination, each algorithm selects `B` users from the destination's
//! reviewer population (so every procured opinion has ground truth), and
//! the selected users' recorded reviews are scored with the opinion
//! metrics. Results are averaged over destinations.
//!
//! Destinations are evaluated in parallel (`std::thread::scope`); all
//! selectors are deterministic so the parallel schedule cannot change the
//! outcome.

use std::sync::Mutex;

use podium_baselines::selector::Selector;
use podium_core::ids::UserId;
use podium_data::reviews::DestinationId;
use podium_data::split::holdout_split;
use podium_data::synth::SynthDataset;
use podium_metrics::opinion::{evaluate_destination, OpinionMetrics};
use podium_metrics::report::ComparisonTable;

use crate::selectors::standard_lineup;

/// Configuration of the opinion-procurement simulation.
#[derive(Debug, Clone, Copy)]
pub struct OpinionConfig {
    /// Number of destinations to hold out (paper: 50 for TripAdvisor, 130
    /// for Yelp).
    pub destinations: usize,
    /// Minimum reviews for a destination to qualify.
    pub min_reviews: usize,
    /// Selection budget per destination.
    pub budget: usize,
    /// Whether the dataset carries usefulness votes (adds the metric row).
    pub with_usefulness: bool,
    /// Seed for the seeded selectors.
    pub seed: u64,
}

/// Runs the opinion-diversity comparison on a dataset.
pub fn run_opinion(dataset: &SynthDataset, config: OpinionConfig) -> ComparisonTable {
    run_opinion_detailed(dataset, config).0
}

/// Like [`run_opinion`], additionally returning the raw per-destination
/// metric bundles per algorithm (same order as the table's algorithms) —
/// the paired samples needed for bootstrap significance testing.
pub fn run_opinion_detailed(
    dataset: &SynthDataset,
    config: OpinionConfig,
) -> (ComparisonTable, Vec<(String, Vec<OpinionMetrics>)>) {
    let split = holdout_split(dataset, config.destinations, config.min_reviews);
    let lineup = standard_lineup(config.seed);

    // Reviewer population per held-out destination (sorted, distinct).
    let reviewers_of: Vec<(DestinationId, Vec<UserId>)> = split
        .eval_destinations
        .iter()
        .map(|&d| {
            let mut users: Vec<UserId> = dataset.corpus.reviews_of(d).map(|r| r.user).collect();
            users.sort();
            users.dedup();
            (d, users)
        })
        .collect();

    let mut names = Vec::new();
    let mut per_algo: Vec<OpinionMetrics> = Vec::new();
    let mut detailed: Vec<(String, Vec<OpinionMetrics>)> = Vec::new();
    for selector in &lineup {
        names.push(selector.name().to_owned());
        let per_destination = evaluate_selector(
            dataset,
            &split.selection_repo,
            &reviewers_of,
            selector.as_ref(),
            config.budget,
        );
        per_algo.push(OpinionMetrics::mean(&per_destination));
        detailed.push((selector.name().to_owned(), per_destination));
    }

    let mut table = ComparisonTable::new(names);
    table.add_metric(
        "topic+sentiment coverage",
        per_algo
            .iter()
            .map(|m| m.topic_sentiment_coverage)
            .collect(),
    );
    if config.with_usefulness {
        table.add_metric(
            "usefulness",
            per_algo.iter().map(|m| m.usefulness).collect(),
        );
    }
    table.add_metric(
        "rating dist. similarity",
        per_algo
            .iter()
            .map(|m| m.rating_distribution_similarity)
            .collect(),
    );
    table.add_metric(
        "rating variance",
        per_algo.iter().map(|m| m.rating_variance).collect(),
    );
    (table, detailed)
}

/// Evaluates one selector over all held-out destinations, in parallel.
/// Results are returned in destination order (stable regardless of worker
/// scheduling), so per-destination bundles pair up across algorithms.
fn evaluate_selector(
    dataset: &SynthDataset,
    selection_repo: &podium_core::profile::UserRepository,
    reviewers_of: &[(DestinationId, Vec<UserId>)],
    selector: &dyn Selector,
    budget: usize,
) -> Vec<OpinionMetrics> {
    let results: Mutex<Vec<Option<OpinionMetrics>>> = Mutex::new(vec![None; reviewers_of.len()]);
    let n_workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(reviewers_of.len().max(1));
    let chunk = reviewers_of.len().div_ceil(n_workers).max(1);

    std::thread::scope(|scope| {
        for (chunk_idx, part) in reviewers_of.chunks(chunk).enumerate() {
            let results = &results;
            scope.spawn(move || {
                let base = chunk_idx * chunk;
                let mut local = Vec::with_capacity(part.len());
                for (d, reviewers) in part {
                    // Select from the reviewer population only, using
                    // held-out-free profiles; map local ids back to global.
                    let restricted = selection_repo.restrict(reviewers);
                    let local_sel = selector.select(&restricted, budget);
                    let global: Vec<UserId> =
                        local_sel.iter().map(|u| reviewers[u.index()]).collect();
                    local.push(evaluate_destination(&dataset.corpus, *d, &global));
                }
                let mut guard = results.lock().expect("results lock poisoned");
                for (offset, m) in local.into_iter().enumerate() {
                    guard[base + offset] = Some(m);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("results lock poisoned")
        .into_iter()
        .map(|m| m.expect("every destination evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn runs_on_small_yelp_and_reports_usefulness() {
        let dataset = datasets::yelp_dataset(0.04, 3);
        let table = run_opinion(
            &dataset,
            OpinionConfig {
                destinations: 10,
                min_reviews: 6,
                budget: 8,
                with_usefulness: true,
                seed: 3,
            },
        );
        assert_eq!(table.metrics().len(), 4);
        assert!(table.metrics().iter().any(|m| m == "usefulness"));
        for m in 0..table.metrics().len() {
            for a in 0..table.algorithms().len() {
                assert!(table.raw(m, a).is_finite());
            }
        }
    }

    #[test]
    fn detailed_results_align_across_algorithms() {
        let dataset = datasets::yelp_dataset(0.03, 6);
        let (table, detailed) = run_opinion_detailed(
            &dataset,
            OpinionConfig {
                destinations: 6,
                min_reviews: 5,
                budget: 6,
                with_usefulness: true,
                seed: 6,
            },
        );
        assert_eq!(detailed.len(), table.algorithms().len());
        let n = detailed[0].1.len();
        assert!(n > 0);
        for (name, per_dest) in &detailed {
            assert_eq!(per_dest.len(), n, "{name} misaligned");
        }
        // The table's mean equals the mean of the detailed bundles.
        let mean = podium_metrics::opinion::OpinionMetrics::mean(&detailed[0].1);
        assert!((table.raw(0, 0) - mean.topic_sentiment_coverage).abs() < 1e-12);
    }

    #[test]
    fn tripadvisor_variant_omits_usefulness() {
        let dataset = datasets::ta_dataset(0.08, 4);
        let table = run_opinion(
            &dataset,
            OpinionConfig {
                destinations: 8,
                min_reviews: 5,
                budget: 8,
                with_usefulness: false,
                seed: 4,
            },
        );
        assert_eq!(table.metrics().len(), 3);
        // Some opinions must actually be procured.
        let any_positive = (0..table.metrics().len())
            .any(|m| (0..table.algorithms().len()).any(|a| table.raw(m, a) > 0.0));
        assert!(any_positive, "{}", table.render());
    }
}
