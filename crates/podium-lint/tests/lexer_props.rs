//! Property tests for the lexer, enforcing the invariants its module
//! docs promise:
//!
//! 1. `lex` never panics on arbitrary bytes and yields in-order,
//!    non-overlapping, non-empty, in-bounds tokens with total coverage
//!    (every uncovered byte is ASCII whitespace);
//! 2. generated token streams round-trip: rendering tokens to source
//!    and lexing recovers exactly the same (kind, text) sequence —
//!    comment and string state machines are exact;
//! 3. comments are inert: interleaving comments into a stream does not
//!    change the significant (non-comment) tokens.

use podium_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_lex_without_panic_and_with_total_coverage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let tokens = lex(&bytes);
        let mut covered = vec![false; bytes.len()];
        let mut prev_end = 0usize;
        let mut prev_line = 1u32;
        for t in &tokens {
            prop_assert!(t.start < t.end, "empty token {t:?}");
            prop_assert!(t.end <= bytes.len(), "out of bounds {t:?}");
            prop_assert!(t.start >= prev_end, "overlap/regression {t:?}");
            prop_assert!(t.line >= prev_line, "line went backwards {t:?}");
            for flag in covered.get_mut(t.start..t.end).unwrap_or(&mut []) {
                *flag = true;
            }
            prev_end = t.end;
            prev_line = t.line;
        }
        for (i, was_covered) in covered.iter().enumerate() {
            if !was_covered {
                prop_assert!(
                    bytes[i].is_ascii_whitespace(),
                    "byte {i} ({:#x}) dropped without being whitespace",
                    bytes[i]
                );
            }
        }
    }

    #[test]
    fn generated_token_streams_round_trip(
        specs in prop::collection::vec((0u8..8, prop::collection::vec(any::<u8>(), 0..8)), 0..40),
    ) {
        let expected: Vec<(TokenKind, String)> =
            specs.iter().map(|(sel, payload)| render(*sel, payload)).collect();
        let src = join(&expected);
        let lexed: Vec<(TokenKind, String)> = lex(src.as_bytes())
            .iter()
            .map(|t| (t.kind, String::from_utf8_lossy(t.text(src.as_bytes())).into_owned()))
            .collect();
        prop_assert_eq!(lexed, expected, "source was: {:?}", src);
    }

    #[test]
    fn comments_are_inert(
        specs in prop::collection::vec((0u8..8, prop::collection::vec(any::<u8>(), 0..8)), 0..30),
        gaps in prop::collection::vec(any::<bool>(), 30),
    ) {
        let stream: Vec<(TokenKind, String)> =
            specs.iter().map(|(sel, payload)| render(*sel, payload)).collect();
        let bare = join(&stream);
        // Interleave a comment before every gap-selected token.
        let mut noisy_stream = Vec::new();
        for (i, tok) in stream.iter().enumerate() {
            if gaps.get(i).copied().unwrap_or(false) {
                noisy_stream.push((TokenKind::BlockComment, "/* noise */".to_owned()));
            }
            noisy_stream.push(tok.clone());
        }
        let noisy = join(&noisy_stream);
        prop_assert_eq!(significant(&bare), significant(&noisy));
    }
}

/// Renders one generated token: selector picks the kind, payload bytes
/// deterministically pick the content from kind-safe alphabets.
fn render(sel: u8, payload: &[u8]) -> (TokenKind, String) {
    let letters = |alphabet: &[u8]| -> String {
        payload
            .iter()
            .map(|&b| alphabet[b as usize % alphabet.len()] as char)
            .collect()
    };
    match sel {
        0 => (TokenKind::Ident, format!("w{}", letters(b"abz_09"))),
        1 => (TokenKind::Number, format!("1{}", letters(b"0123456789"))),
        2 => {
            let puncts = b".!?;,[](){}=+-<>&|";
            let b = puncts[payload.first().copied().unwrap_or(0) as usize % puncts.len()];
            (TokenKind::Punct, (b as char).to_string())
        }
        3 => (TokenKind::LineComment, format!("// {}", letters(b"abc ._"))),
        4 => (
            TokenKind::BlockComment,
            format!("/* {} */", letters(b"abc ._")),
        ),
        5 => {
            // Escapes included: \" and \\ must not terminate the string.
            let units = ["a", "b", " ", ".", "\\\"", "\\\\", "\\n"];
            let content: String = payload
                .iter()
                .map(|&b| units[b as usize % units.len()])
                .collect();
            (TokenKind::Str, format!("\"{content}\""))
        }
        6 => {
            let hashes = "#".repeat(payload.first().copied().unwrap_or(0) as usize % 3);
            // `"` excluded from the alphabet, so the body can never
            // close the literal early regardless of hash count.
            let content = letters(b"abc #._");
            (TokenKind::RawStr, format!("r{hashes}\"{content}\"{hashes}"))
        }
        _ => {
            let c = b"abcxyz"[payload.first().copied().unwrap_or(0) as usize % 6] as char;
            (TokenKind::Char, format!("'{c}'"))
        }
    }
}

/// Joins rendered tokens into source text: newline after line comments
/// (anything else would be swallowed by them), spaces elsewhere.
fn join(tokens: &[(TokenKind, String)]) -> String {
    let mut out = String::new();
    for (kind, text) in tokens {
        out.push_str(text);
        out.push(if *kind == TokenKind::LineComment {
            '\n'
        } else {
            ' '
        });
    }
    out
}

/// The non-comment (kind, text) sequence of a source string.
fn significant(src: &str) -> Vec<(TokenKind, String)> {
    lex(src.as_bytes())
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| {
            (
                t.kind,
                String::from_utf8_lossy(t.text(src.as_bytes())).into_owned(),
            )
        })
        .collect()
}
