//! Integration tests over the checked-in fixture corpus: the runner
//! must report exactly the violations the fixtures plant — same file,
//! same line, same rule — nothing more, nothing less.

use std::path::PathBuf;
use std::process::Command;

use podium_lint::{runner, Rule};

fn fixture_run(paths: &[&str]) -> runner::Outcome {
    let opts = runner::Options {
        workspace: false,
        paths: paths.iter().map(PathBuf::from).collect(),
        allowlist: None,
        deny_all: true,
        cwd: Some(PathBuf::from(env!("CARGO_MANIFEST_DIR"))),
    };
    runner::run(&opts).expect("fixture run succeeds")
}

/// `(line, rule)` of every unsuppressed violation, sorted.
fn denied(outcome: &runner::Outcome) -> Vec<(u32, Rule)> {
    let mut v: Vec<(u32, Rule)> = outcome
        .violations
        .iter()
        .filter(|v| v.allowed.is_none())
        .map(|v| (v.line, v.rule))
        .collect();
    v.sort();
    v
}

#[test]
fn panics_fixture_reports_the_exact_violation_set() {
    let outcome = fixture_run(&["tests/fixtures/panics.rs"]);
    assert_eq!(
        denied(&outcome),
        vec![
            (6, Rule::Unwrap),
            (7, Rule::Expect),
            (9, Rule::Panic),
            (12, Rule::Todo),
            (15, Rule::Unimplemented),
            (17, Rule::Index),
            (19, Rule::Unreachable),
            (26, Rule::BadAllow),
        ],
    );
    // The justified suppression on line 22 is recorded, not denied.
    let suppressed: Vec<_> = outcome
        .violations
        .iter()
        .filter(|v| v.allowed.is_some())
        .collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 22);
    assert_eq!(suppressed[0].rule, Rule::Unwrap);
    assert!(suppressed[0]
        .allowed
        .as_deref()
        .unwrap()
        .contains("justified suppression"));
    // Test-module code (`v[0]`, `.unwrap()` inside `#[cfg(test)]`) is
    // exempt: no violation points past the module opening.
    assert!(outcome.violations.iter().all(|v| v.line < 28));
}

#[test]
fn locks_fixture_reports_poison_sites_and_the_cycle() {
    let outcome = fixture_run(&["tests/fixtures/locks.rs"]);
    let poison: Vec<u32> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == Rule::LockPoison)
        .map(|v| v.line)
        .collect();
    assert_eq!(poison, vec![13, 14, 19, 20]);
    // The panic pass independently flags the same bare unwraps.
    let unwraps = outcome
        .violations
        .iter()
        .filter(|v| v.rule == Rule::Unwrap)
        .count();
    assert_eq!(unwraps, 4);
    let cycles: Vec<_> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == Rule::LockOrder)
        .collect();
    assert_eq!(cycles.len(), 1, "one canonical cycle, reported once");
    assert!(cycles[0].message.contains("a -> b"));
    assert!(cycles[0].message.contains("b -> a"));
}

#[test]
fn cfg_fixture_flags_only_the_undeclared_feature() {
    let outcome = fixture_run(&["tests/fixtures/cfgcrate/src/lib.rs"]);
    let cfg: Vec<_> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == Rule::CfgFeature)
        .collect();
    assert_eq!(cfg.len(), 1);
    assert_eq!(cfg[0].line, 7);
    assert!(cfg[0].message.contains("\"undeclared\""));
    assert!(cfg[0].message.contains("declared"));
}

#[test]
fn clean_fixture_is_violation_free() {
    let outcome = fixture_run(&["tests/fixtures/clean.rs"]);
    assert!(
        outcome.violations.is_empty(),
        "clean fixture must stay clean: {:?}",
        outcome.violations
    );
}

#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_podium-lint");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));

    // Violations → exit 1.
    let dirty = Command::new(bin)
        .current_dir(&root)
        .args(["tests/fixtures/panics.rs", "--deny-all"])
        .output()
        .expect("spawn podium-lint");
    assert_eq!(dirty.status.code(), Some(1));

    // Clean input → exit 0.
    let clean = Command::new(bin)
        .current_dir(&root)
        .args(["tests/fixtures/clean.rs", "--deny-all"])
        .output()
        .expect("spawn podium-lint");
    assert_eq!(clean.status.code(), Some(0), "{:?}", clean);

    // Usage error → exit 2.
    let usage = Command::new(bin)
        .current_dir(&root)
        .output()
        .expect("spawn podium-lint");
    assert_eq!(usage.status.code(), Some(2));
}
