//! Fixture: cfg/feature hygiene — one declared feature use (clean) and
//! one undeclared (violation).

#[cfg(feature = "declared")]
pub fn on() {}

#[cfg(feature = "undeclared")]
pub fn off() {}

pub fn probe() -> bool {
    cfg!(feature = "declared")
}
