//! Fixture: every panic-freedom rule fires here at a known line.
//! `fixtures_test.rs` asserts the exact (line, rule) set — renumbering
//! this file means renumbering those assertions.

pub fn boom(v: Vec<u32>, o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = v.first().expect("non-empty");
    if a > 3 {
        panic!("a too big");
    }
    if *b > 3 {
        todo!();
    }
    if a == *b {
        unimplemented!();
    }
    let c = v[0];
    if c > 9 {
        unreachable!();
    }
    // podium-lint: allow(unwrap) — fixture: a justified suppression stays visible in JSONL
    let d = o.unwrap();
    a + c + d
}

// podium-lint: allow(unwrap)

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1];
        assert_eq!(v[0], 1);
        let _ = Some(1).unwrap();
    }
}
