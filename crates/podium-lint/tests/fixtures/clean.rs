//! Fixture: lint-clean code — every pass must report zero violations.

/// Sums the values without indexing.
pub fn sum(values: &[u32]) -> u32 {
    values.iter().copied().sum()
}

/// First element, defensively.
pub fn first(values: &[u32]) -> Option<u32> {
    values.first().copied()
}

/// Fallible instead of panicking.
pub fn ratio(num: f64, den: f64) -> Result<f64, String> {
    if den == 0.0 {
        return Err("zero denominator".to_owned());
    }
    Ok(num / den)
}
