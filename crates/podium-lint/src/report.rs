//! Output rendering: human-readable text and machine-readable JSONL.
//! JSON is emitted by hand (the linter has no dependencies, by design);
//! only string escaping and integer formatting are needed.

use crate::Violation;

/// Schema tag on every JSONL row; bump the version when the row shape
/// changes so stream readers can reject mixed files.
pub const LINT_SCHEMA: &str = "podium.lint/1";

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSONL line per violation:
/// `{"schema":…,"seq":…,"file":…,"line":…,"col":…,"rule":…,"message":…,"allowed":bool,"justification":…}`.
/// Suppressed findings are included (with `allowed: true`) so the
/// dashboard can track suppression debt over time.
pub fn to_jsonl(violations: &[Violation]) -> String {
    let mut out = String::new();
    for (seq, v) in violations.iter().enumerate() {
        let justification = match &v.allowed {
            Some(j) => format!(",\"justification\":\"{}\"", json_escape(j)),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"schema\":\"{LINT_SCHEMA}\",\"seq\":{seq},\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\",\"allowed\":{}{}}}\n",
            json_escape(&v.file),
            v.line,
            v.col,
            v.rule.name(),
            json_escape(&v.message),
            v.allowed.is_some(),
            justification,
        ));
    }
    out
}

/// Human-readable report: one line per unsuppressed violation, then a
/// summary including the suppression count.
pub fn to_text(violations: &[Violation], verbose_allowed: bool) -> String {
    let mut out = String::new();
    let mut denied = 0usize;
    let mut allowed = 0usize;
    for v in violations {
        match &v.allowed {
            None => {
                denied += 1;
                out.push_str(&format!(
                    "{}:{}:{}: [{}] {}\n",
                    v.file,
                    v.line,
                    v.col,
                    v.rule.name(),
                    v.message
                ));
            }
            Some(reason) => {
                allowed += 1;
                if verbose_allowed {
                    out.push_str(&format!(
                        "{}:{}:{}: [{}] allowed — {}\n",
                        v.file,
                        v.line,
                        v.col,
                        v.rule.name(),
                        reason
                    ));
                }
            }
        }
    }
    out.push_str(&format!(
        "podium-lint: {denied} violation(s), {allowed} suppressed with justification\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    #[test]
    fn jsonl_escapes_and_flags() {
        let mut v = Violation::new("a\"b.rs", 3, 7, Rule::Unwrap, "line1\nline2");
        let plain = to_jsonl(std::slice::from_ref(&v));
        assert!(plain.contains("\"schema\":\"podium.lint/1\",\"seq\":0,"));
        assert!(plain.contains("\"file\":\"a\\\"b.rs\""));
        assert!(plain.contains("\"message\":\"line1\\nline2\""));
        assert!(plain.contains("\"allowed\":false"));
        v.allowed = Some("why".into());
        let suppressed = to_jsonl(std::slice::from_ref(&v));
        assert!(suppressed.contains("\"allowed\":true,\"justification\":\"why\""));
    }

    #[test]
    fn text_counts_denied_and_allowed() {
        let mut ok = Violation::new("f.rs", 1, 1, Rule::Index, "idx");
        ok.allowed = Some("checked".into());
        let bad = Violation::new("f.rs", 2, 1, Rule::Panic, "boom");
        let text = to_text(&[ok, bad], false);
        assert!(text.contains("f.rs:2:1: [panic] boom"));
        assert!(!text.contains("checked"));
        assert!(text.contains("1 violation(s), 1 suppressed"));
    }
}
