//! Suppression machinery: inline allow comments and the checked-in
//! allowlist. Every suppression must carry a written justification —
//! an allow without one is itself a violation ([`crate::Rule::BadAllow`]).
//!
//! Inline grammar (line or block comment, anywhere in the comment
//! text): the marker, then `allow(` + a comma-separated rule list +
//! `)`, a separator, and a non-empty justification, e.g.
//!
//! ```text
//! // podium-lint: allow(unwrap, index) — bounds established by the loop guard
//! ```
//!
//! The separator before the justification may be an em dash `—`, `--`,
//! or `:`. The comment suppresses matching violations on its own line
//! (trailing form) and on the following line (standalone form).
//!
//! Allowlist file (default `podium-lint.allow` at the workspace root):
//! one entry per line, `#` comments and blank lines ignored:
//!
//! ```text
//! <path-prefix> <rule[,rule]*|*> <justification…>
//! ```
//!
//! A violation matches an entry when its workspace-relative path starts
//! with `path-prefix` and its rule is listed (or the entry says `*`).

use crate::lexer::TokenKind;
use crate::scan::FileScan;
use crate::{Rule, Violation};

/// A parsed inline allow comment.
#[derive(Debug, Clone)]
pub struct AllowComment {
    /// Line the comment starts on.
    pub line: u32,
    /// Rules it suppresses.
    pub rules: Vec<Rule>,
    /// The written justification.
    pub justification: String,
}

/// The marker every allow comment must contain.
const MARKER: &str = "podium-lint:";

/// Extracts allow comments from a file's token stream. Malformed allows
/// (unknown rule, missing justification) are returned as `bad-allow`
/// violations instead.
pub fn collect_allows(scan: &FileScan<'_>, file: &str) -> (Vec<AllowComment>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for tok in &scan.tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = String::from_utf8_lossy(tok.text(scan.src));
        let Some(at) = text.find(MARKER) else {
            continue;
        };
        let rest = text.get(at + MARKER.len()..).unwrap_or("").trim_start();
        match parse_allow(rest) {
            Ok((rules, justification)) => allows.push(AllowComment {
                line: tok.line,
                rules,
                justification,
            }),
            Err(msg) => bad.push(Violation::new(file, tok.line, tok.col, Rule::BadAllow, msg)),
        }
    }
    (allows, bad)
}

/// Parses `allow(rule, …) — justification` after the marker.
fn parse_allow(rest: &str) -> Result<(Vec<Rule>, String), String> {
    let body = rest.strip_prefix("allow(").ok_or_else(|| {
        "allow comment must read `podium-lint: allow(<rules>) — <why>`".to_owned()
    })?;
    let close = body
        .find(')')
        .ok_or_else(|| "unclosed rule list in allow comment".to_owned())?;
    let rule_list = body.get(..close).unwrap_or("");
    let mut rules = Vec::new();
    for name in rule_list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match Rule::from_name(name) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule '{name}' in allow comment")),
        }
    }
    if rules.is_empty() {
        return Err("allow comment names no rules".to_owned());
    }
    let mut tail = body.get(close + 1..).unwrap_or("").trim_start();
    for sep in ["—", "--", ":", "-"] {
        if let Some(stripped) = tail.strip_prefix(sep) {
            tail = stripped;
            break;
        }
    }
    let justification = tail.trim().trim_end_matches("*/").trim();
    if justification.is_empty() {
        return Err(
            "allow comment has no justification — write why the suppression is sound".to_owned(),
        );
    }
    Ok((rules, justification.to_owned()))
}

/// One allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowlistEntry {
    /// Workspace-relative path prefix.
    pub prefix: String,
    /// Rules covered; empty means `*` (all rules).
    pub rules: Vec<Rule>,
    /// Written justification.
    pub reason: String,
    /// Source line in the allowlist file (for diagnostics).
    pub line: u32,
}

/// The parsed allowlist file.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order; first match wins.
    pub entries: Vec<AllowlistEntry>,
}

impl Allowlist {
    /// Parses the allowlist text. Malformed lines become `bad-allow`
    /// violations attributed to `file`.
    pub fn parse(text: &str, file: &str) -> (Allowlist, Vec<Violation>) {
        let mut entries = Vec::new();
        let mut bad = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let prefix = parts.next().unwrap_or("").to_owned();
            let rule_field = parts.next().unwrap_or("");
            let reason = parts.next().unwrap_or("").trim().to_owned();
            if prefix.is_empty() || rule_field.is_empty() || reason.is_empty() {
                bad.push(Violation::new(
                    file,
                    line_no,
                    1,
                    Rule::BadAllow,
                    "allowlist entries are `<path-prefix> <rules|*> <justification>`",
                ));
                continue;
            }
            let mut rules = Vec::new();
            if rule_field != "*" {
                let mut ok = true;
                for name in rule_field.split(',') {
                    match Rule::from_name(name.trim()) {
                        Some(r) => rules.push(r),
                        None => {
                            bad.push(Violation::new(
                                file,
                                line_no,
                                1,
                                Rule::BadAllow,
                                format!("unknown rule '{}' in allowlist", name.trim()),
                            ));
                            ok = false;
                        }
                    }
                }
                if !ok {
                    continue;
                }
            }
            entries.push(AllowlistEntry {
                prefix,
                rules,
                reason,
                line: line_no,
            });
        }
        (Allowlist { entries }, bad)
    }

    /// The justification suppressing `(file, rule)`, if any entry matches.
    pub fn lookup(&self, file: &str, rule: Rule) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| {
                file.starts_with(&e.prefix) && (e.rules.is_empty() || e.rules.contains(&rule))
            })
            .map(|e| e.reason.as_str())
    }
}

/// Applies inline allows and the allowlist to raw pass findings:
/// fills `allowed` with the justification where a suppression matches.
pub fn apply_suppressions(
    violations: &mut [Violation],
    allows: &[AllowComment],
    allowlist: &Allowlist,
) {
    for v in violations.iter_mut() {
        if v.allowed.is_some() || v.rule == Rule::BadAllow {
            continue;
        }
        let inline = allows
            .iter()
            .find(|a| a.rules.contains(&v.rule) && (a.line == v.line || a.line + 1 == v.line));
        if let Some(a) = inline {
            v.allowed = Some(a.justification.clone());
        } else if let Some(reason) = allowlist.lookup(&v.file, v.rule) {
            v.allowed = Some(reason.to_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allows_of(src: &str) -> (Vec<AllowComment>, Vec<Violation>) {
        let scan = FileScan::new(src.as_bytes());
        collect_allows(&scan, "f.rs")
    }

    #[test]
    fn parses_trailing_allow_with_em_dash() {
        let (allows, bad) =
            allows_of("x.unwrap(); // podium-lint: allow(unwrap) — invariant: set in ctor");
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        let a = &allows[0];
        assert_eq!(a.rules, vec![Rule::Unwrap]);
        assert_eq!(a.justification, "invariant: set in ctor");
    }

    #[test]
    fn multiple_rules_and_colon_separator() {
        let (allows, bad) = allows_of("// podium-lint: allow(unwrap, index): bounds checked above");
        assert!(bad.is_empty());
        assert_eq!(allows[0].rules, vec![Rule::Unwrap, Rule::Index]);
    }

    #[test]
    fn missing_justification_is_bad_allow() {
        let (allows, bad) = allows_of("// podium-lint: allow(unwrap)");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::BadAllow);
    }

    #[test]
    fn unknown_rule_is_bad_allow() {
        let (allows, bad) = allows_of("// podium-lint: allow(unwrappp) — whatever");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn allowlist_prefix_and_rule_matching() {
        let (list, bad) = Allowlist::parse(
            "# comment\ncrates/podium-core/src/engine/ index CSR invariants checked at build\n\
             src/bin/ * operator-facing CLI, exits on error\n",
            "podium-lint.allow",
        );
        assert!(bad.is_empty());
        assert!(list
            .lookup("crates/podium-core/src/engine/csr.rs", Rule::Index)
            .is_some());
        assert!(list
            .lookup("crates/podium-core/src/engine/csr.rs", Rule::Unwrap)
            .is_none());
        assert!(list.lookup("src/bin/podium-cli.rs", Rule::Panic).is_some());
        assert!(list.lookup("src/cli.rs", Rule::Panic).is_none());
    }

    #[test]
    fn suppression_applies_to_same_and_next_line() {
        let src = "\n// podium-lint: allow(unwrap) — reason here\nfoo.unwrap();\n";
        let scan = FileScan::new(src.as_bytes());
        let (allows, _) = collect_allows(&scan, "f.rs");
        let mut vs = vec![
            Violation::new("f.rs", 3, 5, Rule::Unwrap, "x"),
            Violation::new("f.rs", 9, 1, Rule::Unwrap, "x"),
        ];
        apply_suppressions(&mut vs, &allows, &Allowlist::default());
        assert!(vs[0].allowed.is_some());
        assert!(vs[1].allowed.is_none());
    }
}
