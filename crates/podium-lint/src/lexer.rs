//! A hand-written lexer for the subset of Rust surface syntax the lint
//! passes need: it must never confuse code with comment or string
//! contents, and it must carry byte positions and line numbers so
//! violations are reportable and allow-comments attributable.
//!
//! It is deliberately *not* a full Rust lexer. Numeric literals are
//! tokenized loosely (`1e-3` lexes as `1e`, `-`, `3`), shebangs and
//! `cfg_attr` expansion are out of scope, and every byte it does not
//! recognize becomes an [`TokenKind::Unknown`] token rather than an
//! error. The invariants it *does* guarantee, and which the property
//! tests in `tests/lexer_props.rs` enforce:
//!
//! 1. `lex` never panics, for arbitrary input bytes (valid UTF-8 or not);
//! 2. tokens are in order, non-overlapping, non-empty, and within bounds;
//! 3. every byte of the input is covered by exactly one token or is
//!    ASCII whitespace (total coverage — nothing is silently dropped);
//! 4. the comment/string/raw-string state machines are exact: a token of
//!    kind `Str`/`RawStr`/`Char`/`LineComment`/`BlockComment` spans
//!    precisely the literal, including its delimiters.

/// What a token is. The passes mostly care about `Ident`, `Punct`, and
/// the comment kinds; string-ish kinds exist so their *contents* can
/// never be mistaken for code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// Numeric literal (loose: digits plus trailing alphanumerics).
    Number,
    /// A single punctuation byte (`.`, `!`, `[`, `{`, …).
    Punct,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting handled; unterminated comments run to EOF.
    BlockComment,
    /// `"…"`, `b"…"`, or `c"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` with any number of hashes.
    RawStr,
    /// `'x'`, `b'x'`, including escapes.
    Char,
    /// `'ident` (no closing quote).
    Lifetime,
    /// Any byte the lexer does not recognize (kept for total coverage).
    Unknown,
}

/// One lexed token: kind plus byte span and 1-based line/column of its
/// first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's bytes within `src` (empty if the span is out of
    /// bounds, which the invariants rule out).
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        src.get(self.start..self.end).unwrap_or(b"")
    }
}

/// True for bytes that may start an identifier. Non-ASCII bytes are
/// treated as identifier characters so UTF-8 identifiers (and stray
/// high bytes in garbage input) lex as single tokens instead of byte
/// soup.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that may continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line = self.line.saturating_add(1);
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes bytes while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed), honoring
    /// `\` escapes. Unterminated strings run to EOF.
    fn eat_quoted(&mut self, quote: u8) {
        while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'\\' {
                // Skip the escaped byte (may be the quote or another \).
                if self.peek(0).is_some() {
                    self.bump();
                }
            } else if b == quote {
                return;
            }
        }
    }

    /// Consumes a raw-string body starting at the `#`* `"` part (after
    /// the `r`/`br` prefix): `n` hashes, a quote, anything, a quote, `n`
    /// hashes. Returns false if this is not actually a raw string here
    /// (e.g. `r#foo` raw identifier), consuming nothing in that case.
    fn eat_raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(hashes + 1);
        // Scan for `"` followed by `hashes` hashes.
        while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'"' {
                let mut k = 0usize;
                while k < hashes && self.peek(k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.bump_n(hashes);
                    return true;
                }
            }
        }
        true // unterminated: ran to EOF
    }
}

/// Lexes `src` into a complete token stream. Never panics; see the
/// module docs for the guaranteed invariants.
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.pos;
        let line = cur.line;
        let col = u32::try_from(cur.pos - cur.line_start)
            .unwrap_or(u32::MAX)
            .saturating_add(1);
        let kind = scan_token(&mut cur, b);
        // Defensive: guarantee forward progress even if a scanner
        // consumed nothing (should be unreachable by construction).
        if cur.pos == start {
            cur.bump();
        }
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    tokens
}

fn scan_token(cur: &mut Cursor<'_>, b: u8) -> TokenKind {
    match b {
        b'/' if cur.peek(1) == Some(b'/') => {
            cur.eat_while(|c| c != b'\n');
            TokenKind::LineComment
        }
        b'/' if cur.peek(1) == Some(b'*') => {
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some(b'*'), Some(b'/')) => {
                        cur.bump_n(2);
                        depth -= 1;
                    }
                    (Some(b'/'), Some(b'*')) => {
                        cur.bump_n(2);
                        depth += 1;
                    }
                    (Some(_), _) => cur.bump(),
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        }
        b'"' => {
            cur.bump();
            cur.eat_quoted(b'"');
            TokenKind::Str
        }
        b'\'' => scan_quote(cur),
        _ if b.is_ascii_digit() => {
            cur.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
            // A fractional part only when a digit follows the dot, so
            // ranges (`0..n`) and method calls stay separate tokens.
            if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                cur.bump();
                cur.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
            }
            TokenKind::Number
        }
        _ if is_ident_start(b) => scan_ident_or_prefixed(cur),
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// At a `'`: decide lifetime vs char literal.
fn scan_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the opening '
    match cur.peek(0) {
        Some(b'\\') => {
            // Escape: consume `\x`, then everything up to the closing
            // quote (covers \u{…} and malformed tails alike).
            cur.bump();
            if cur.peek(0).is_some() {
                cur.bump();
            }
            cur.eat_while(|c| c != b'\'' && c != b'\n');
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // 'a could be a lifetime or the char 'a'.
            cur.eat_while(is_ident_continue);
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some(b'\'') => {
            // '' — not valid Rust; consume both quotes as one token.
            cur.bump();
            TokenKind::Unknown
        }
        Some(_) => {
            // A punctuation char literal like '+' — char iff a quote
            // follows.
            if cur.peek(1) == Some(b'\'') {
                cur.bump_n(2);
                TokenKind::Char
            } else {
                TokenKind::Unknown
            }
        }
        None => TokenKind::Unknown,
    }
}

/// At an identifier-start byte: plain identifier, or one of the literal
/// prefixes `r` / `b` / `br` / `c` / `cr` / `b'`.
fn scan_ident_or_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    let start = cur.pos;
    cur.eat_while(is_ident_continue);
    let ident = cur.src.get(start..cur.pos).unwrap_or(b"");
    match (ident, cur.peek(0)) {
        // Raw strings: r"…", r#"…"#, br#"…"#, cr"…".
        (b"r" | b"br" | b"cr", Some(b'"' | b'#')) => {
            if cur.eat_raw_string() {
                TokenKind::RawStr
            } else if cur.peek(0) == Some(b'#') && cur.peek(1).is_some_and(is_ident_start) {
                // Raw identifier r#match.
                cur.bump();
                cur.eat_while(is_ident_continue);
                TokenKind::Ident
            } else {
                TokenKind::Ident
            }
        }
        // Byte / C strings: b"…", c"…".
        (b"b" | b"c", Some(b'"')) => {
            cur.bump();
            cur.eat_quoted(b'"');
            TokenKind::Str
        }
        // Byte char: b'x'.
        (b"b", Some(b'\'')) => scan_quote(cur),
        _ => TokenKind::Ident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| {
                (
                    t.kind,
                    String::from_utf8_lossy(t.text(src.as_bytes())).into_owned(),
                )
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds(r#"let x = "a.unwrap()"; // .unwrap() here too"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x.unwrap()"###);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks.first().map(|(k, _)| *k), Some(TokenKind::BlockComment));
        assert_eq!(toks.get(1).map(|(k, _)| *k), Some(TokenKind::Ident));
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let toks = lex(b"a\nbb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
        assert_eq!(
            toks.iter().map(|t| t.col).collect::<Vec<_>>(),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..n; x.0.abs(); 1.5e3;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1.5e3"));
    }
}
